"""Partitioner unit tests: coverage, balance, structure, loud failures."""

import pytest

from repro.fabric.spec import TopologySpec
from repro.shard import (
    PARTITIONERS,
    ShardSpec,
    boundary_links,
    partition_routers,
    partition_summary,
)


def assert_valid_partition(spec, parts, workers):
    n = spec.build().num_routers
    assert len(parts) == workers
    seen = [rid for part in parts for rid in part]
    assert sorted(seen) == list(range(n))
    assert len(seen) == len(set(seen))
    for part in parts:
        assert part == tuple(sorted(part))
        assert part


@pytest.mark.parametrize("workers", [1, 2, 3, 4, 9])
def test_contiguous_covers_and_balances(workers):
    spec = TopologySpec.torus(3, 3)
    parts = partition_routers(spec, workers, "contiguous")
    assert_valid_partition(spec, parts, workers)
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1


def test_rows_assigns_whole_grid_rows():
    spec = TopologySpec.torus(4, 3)
    parts = partition_routers(spec, 2, "rows")
    assert_valid_partition(spec, parts, 2)
    for part in parts:
        rows = {rid // 3 for rid in part}
        expect = {r * 3 + c for r in rows for c in range(3)}
        assert set(part) == expect


def test_rows_cut_is_vertical_links_only():
    spec = TopologySpec.mesh(4, 4)
    parts = partition_routers(spec, 2, "rows")
    cut = boundary_links(spec.build(), parts)
    # A 4x4 mesh split into two row pairs cuts one horizontal seam:
    # 4 links, both directions.
    assert len(cut) == 8
    for u, v in cut:
        assert abs(u - v) == 4  # vertical neighbours in row-major ids


def test_pods_keeps_pods_whole():
    spec = TopologySpec.fat_tree(4)
    parts = partition_routers(spec, 5, "pods")
    assert_valid_partition(spec, parts, 5)
    # k=4: 4 cores then 4 pods of 4 routers; with 5 workers each block
    # is its own worker.
    assert parts[0] == (0, 1, 2, 3)
    for pod in range(4):
        base = 4 + pod * 4
        assert parts[pod + 1] == tuple(range(base, base + 4))


def test_auto_prefers_structure_then_falls_back():
    grid = TopologySpec.torus(3, 3)
    assert partition_routers(grid, 2, "auto") == partition_routers(
        grid, 2, "rows"
    )
    # More workers than rows: auto falls back to contiguous.
    assert partition_routers(grid, 5, "auto") == partition_routers(
        grid, 5, "contiguous"
    )
    tree = TopologySpec.fat_tree(4)
    assert partition_routers(tree, 3, "auto") == partition_routers(
        tree, 3, "pods"
    )


def test_ring_boundary_links():
    spec = TopologySpec.ring(4)
    parts = partition_routers(spec, 2, "contiguous")
    assert parts == ((0, 1), (2, 3))
    cut = boundary_links(spec.build(), parts)
    assert cut == [(0, 3), (1, 2), (2, 1), (3, 0)]


def test_partition_summary_shape():
    spec = TopologySpec.torus(3, 3)
    parts = partition_routers(spec, 3, "rows")
    summary = partition_summary(spec, parts)
    assert summary["workers"] == 3
    assert summary["group_sizes"] == [3, 3, 3]
    assert 0 < summary["boundary_links"] <= summary["total_links"]


@pytest.mark.parametrize("workers,partitioner", [
    (10, "contiguous"),   # more workers than routers (3x3 = 9)
    (4, "rows"),          # more workers than rows (3 rows)
    (2, "pods"),          # pods on a torus
])
def test_misfit_partitions_fail_loudly(workers, partitioner):
    with pytest.raises(ValueError):
        partition_routers(TopologySpec.torus(3, 3), workers, partitioner)


def test_unknown_partitioner_rejected():
    with pytest.raises(ValueError):
        partition_routers(TopologySpec.ring(4), 2, "zigzag")
    with pytest.raises(ValueError):
        ShardSpec(workers=2, partitioner="zigzag")


def test_shard_spec_roundtrip_and_describe():
    spec = ShardSpec(workers=4, partitioner="rows", max_window=16)
    assert ShardSpec.from_dict(spec.to_dict()) == spec
    assert spec.describe() == "4w/rows/K=16"
    assert "auto" in PARTITIONERS
    with pytest.raises(ValueError):
        ShardSpec(workers=0)
    with pytest.raises(ValueError):
        ShardSpec(workers=2, max_window=-1)
