"""Tests for repro.traffic.base and repro.traffic.cbr."""

import numpy as np
import pytest

from repro.router.config import RouterConfig
from repro.traffic.base import InjectionSchedule
from repro.traffic.cbr import CBR_CLASSES, CBRSource


CFG = RouterConfig()


class TestInjectionSchedule:
    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            InjectionSchedule(
                np.array([1, 2]), np.array([0]), np.array([False, False])
            )

    def test_validates_monotonicity(self):
        with pytest.raises(ValueError):
            InjectionSchedule(
                np.array([2, 1]), np.array([0, 0]), np.array([False, False])
            )

    def test_empty(self):
        s = InjectionSchedule.empty()
        assert len(s) == 0
        assert s.offered_flits_until(100) == 0

    def test_offered_and_mean_load(self):
        s = InjectionSchedule(
            np.array([0, 10, 20, 30]),
            np.full(4, -1),
            np.zeros(4, dtype=bool),
        )
        assert s.offered_flits_until(21) == 3
        assert s.mean_load(40) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            s.mean_load(0)


class TestCBRSource:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            CBRSource(CFG, 0)
        with pytest.raises(ValueError):
            CBRSource(CFG, CFG.link_rate_bps * 2)
        with pytest.raises(ValueError):
            CBRSource(CFG, 1e6, phase=-1)

    def test_mean_load_is_rate_fraction(self):
        src = CBRSource(CFG, 55e6)
        assert src.mean_load() == pytest.approx(55e6 / 1.24e9)

    def test_long_run_rate_exact(self):
        src = CBRSource(CFG, 55e6)
        horizon = 100_000
        sched = src.schedule(horizon, np.random.default_rng(0))
        achieved = len(sched) / horizon
        assert achieved == pytest.approx(src.mean_load(), rel=1e-3)

    def test_cadence_is_regular(self):
        src = CBRSource(CFG, 55e6)
        sched = src.schedule(10_000, np.random.default_rng(0))
        gaps = np.diff(sched.cycles)
        iat = src.iat_cycles
        assert gaps.min() >= np.floor(iat)
        assert gaps.max() <= np.ceil(iat)

    def test_phase_shifts_train(self):
        base = CBRSource(CFG, 55e6, phase=0.0)
        shifted = CBRSource(CFG, 55e6, phase=10.0)
        a = base.schedule(5_000, np.random.default_rng(0))
        b = shifted.schedule(5_000, np.random.default_rng(0))
        assert b.cycles[0] == a.cycles[0] + 10

    def test_no_frames(self):
        sched = CBRSource(CFG, 1.54e6).schedule(50_000, np.random.default_rng(0))
        assert (sched.frame_ids == -1).all()
        assert not sched.frame_last.any()

    def test_horizon_respected(self):
        sched = CBRSource(CFG, 55e6).schedule(1_000, np.random.default_rng(0))
        assert sched.cycles.max() < 1_000

    def test_zero_horizon(self):
        assert len(CBRSource(CFG, 55e6).schedule(0, np.random.default_rng(0))) == 0

    def test_from_class_randomizes_phase(self):
        rng = np.random.default_rng(1)
        phases = {CBRSource.from_class(CFG, "high", rng).phase for _ in range(8)}
        assert len(phases) > 1
        for phase in phases:
            assert 0 <= phase < CBRSource(CFG, 55e6).iat_cycles

    def test_paper_classes_present(self):
        assert CBR_CLASSES["low"].rate_bps == 64e3
        assert CBR_CLASSES["medium"].rate_bps == 1.54e6
        assert CBR_CLASSES["high"].rate_bps == 55e6

    def test_low_class_has_long_iat(self):
        src = CBRSource(CFG, 64e3)
        # ~19k cycles between 64 Kbps flits at paper parameters.
        assert 15_000 < src.iat_cycles < 25_000
