"""End-to-end single-router simulation (the paper's Fig. 4 testbed).

One :class:`SingleRouterSim` owns an :class:`~repro.router.MMRouter` (with
its NICs), builds a workload onto it, and runs the cycle loop:

    per flit cycle t:
        1. deposit the flits each source generates at t into its NIC;
        2. step the router (credits -> scheduling -> crossbar -> NIC link
           transfer);
        3. account each departure in the metrics collector.

Results come back as a :class:`SimResult` holding the per-group metric
summaries the figures plot.

With ``skip_idle=True`` the loops run an idle-cycle fast-forward engine:
whenever the router is completely idle (no NIC backlog, no VC occupancy —
see :meth:`repro.router.MMRouter.is_idle`) the next interesting cycle is
computed analytically from the sorted injection feeds plus every enabled
consumer's ``next_event_cycle`` (telemetry strides, session signaling),
and ``now`` jumps there directly.  Skipped cycles consult no RNG stream
and move no state except the analytic bookkeeping in
:meth:`SingleRouterSim._fast_forward`, so skip-enabled runs are
bit-identical (``SimResult.to_dict()`` and
``RngStreams.state_fingerprint()``) to the reference loop — the
differential tests in ``tests/test_event_skip.py`` pin it.  See
``docs/architecture.md`` ("Event-skipping engine") for the invariants.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any

from ..core.matching import Arbiter
from ..core.priorities import PriorityScheme
from ..router.config import RouterConfig
from ..router.router import MMRouter
from ..traffic.mixes import PortFeed, Workload
from .engine import RngStreams, RunControl
from .metrics import MetricsCollector

__all__ = [
    "SimResult",
    "SingleRouterSim",
    "inject_due_flits",
    "native_feeds",
    "next_injection_cycle",
]

#: Shared empty departure list for quiet cycles (never mutated; consumers
#: only iterate it).
_NO_DEPARTURES: list = []


def native_feeds(feeds) -> list[PortFeed]:
    """Feed clones with Python-list columns instead of numpy arrays.

    The cycle loops read feed elements one at a time (the injection walk
    and the next-event scan), where list indexing returns cached small
    ints instead of allocating numpy scalars — an order-of-magnitude
    difference per element.  Values are unchanged (``tolist`` converts
    exactly), so runs are bit-identical either way.
    """
    return [
        PortFeed(
            cycles=f.cycles.tolist(),
            vcs=f.vcs.tolist(),
            frame_ids=f.frame_ids.tolist(),
            frame_last=f.frame_last.tolist(),
        )
        for f in feeds
    ]


def inject_due_flits(feeds, pointers, nics, now: int) -> None:
    """Deposit every feed flit due at or before ``now`` into its NIC.

    The per-port injection-pointer walk shared by every cycle loop (the
    three healthy twins here and the perf harness's inlined loops — the
    faults harness keeps its own redirect-aware variant).  ``pointers``
    is the per-port cursor list and is advanced in place.  Feeds are
    sorted by cycle (``Workload.build_feeds`` guarantees it), so the walk
    preserves generation order per port.
    """
    for port, feed in enumerate(feeds):
        ptr = pointers[port]
        cycles = feed.cycles
        end = len(cycles)
        if ptr >= end or cycles[ptr] > now:
            continue
        nic = nics[port]
        while ptr < end and cycles[ptr] <= now:
            nic.inject(
                int(feed.vcs[ptr]),
                int(cycles[ptr]),
                int(feed.frame_ids[ptr]),
                bool(feed.frame_last[ptr]),
            )
            ptr += 1
        pointers[port] = ptr


def next_injection_cycle(feeds, pointers, default: int) -> int:
    """Earliest pending feed cycle across all ports, else ``default``.

    The feed half of the event-skipping engine's next-event computation:
    each port's cursor points at its next undelivered flit, so the
    minimum over the cursor heads is the next cycle any static source
    will touch a NIC.
    """
    nxt = default
    for port, feed in enumerate(feeds):
        ptr = pointers[port]
        cycles = feed.cycles
        if ptr < len(cycles):
            c = cycles[ptr]
            if c < nxt:
                nxt = int(c)
    return nxt


@dataclass
class SimResult:
    """Summary of one run, in the figures' units."""

    config: RouterConfig
    arbiter: str
    scheme: str
    seed: int
    cycles: int
    warmup_cycles: int
    #: Offered load averaged over input ports (flits/cycle = link fraction).
    offered_load: float
    #: Average crossbar utilization after warmup (Fig. 8 y-axis).
    utilization: float
    #: Accepted throughput after warmup, flits/cycle averaged over ports.
    throughput: float
    #: Mean flit delay since generation, microseconds, per group + overall.
    flit_delay_us: dict[str, float]
    #: 99th-percentile flit delay (reservoir estimate), microseconds.
    flit_delay_p99_us: dict[str, float]
    #: Mean frame delay since generation, microseconds (VBR groups).
    frame_delay_us: dict[str, float]
    #: Mean adjacent-frame jitter, microseconds.
    jitter_us: dict[str, float]
    #: Flits / frames measured per group.
    flits: dict[str, int]
    frames: dict[str, int]
    #: Flits still queued in NICs + router when the run ended.
    backlog: int
    #: Number of established connections.
    connections: int
    #: Fault/recovery counters (empty for healthy runs; see
    #: :class:`repro.sim.metrics.FaultCounters`).
    fault: dict[str, int] = field(default_factory=dict)
    #: Peak QoS-degradation level reached (0 = none, 1 = best-effort
    #: shed, 2 = VBR clamped to its average reservation).
    degradation_level: int = 0

    def delay_of(self, label: str) -> float:
        return self.flit_delay_us[label]

    # ------------------------------------------------------------------
    # Serialization (campaign store artifacts, JSON exports)
    # ------------------------------------------------------------------

    #: Float fields that may legitimately be NaN (e.g. a class that saw
    #: no traffic) and are normalized to ``null`` in serialized form so
    #: artifacts stay strict JSON (``json.dumps(..., allow_nan=False)``).
    _NULLABLE_SCALARS = ("offered_load", "utilization", "throughput")
    _NULLABLE_MAPS = (
        "flit_delay_us",
        "flit_delay_p99_us",
        "frame_delay_us",
        "jitter_us",
    )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: strict JSON, ``from_dict`` inverts it.

        The router config flattens to its dataclass fields; everything
        else is scalars and ``str -> number`` maps.  Non-finite floats
        (NaN means, ±inf from empty streaming stats) become ``null`` —
        ``Infinity``/``NaN`` are not JSON and choke strict parsers —
        and ``from_dict`` maps ``null`` back to NaN.
        """

        def safe(value: Any) -> Any:
            if isinstance(value, float) and not math.isfinite(value):
                return None
            return value

        out = asdict(self)
        out["config"] = asdict(self.config)
        for key in self._NULLABLE_SCALARS:
            out[key] = safe(out[key])
        for key in self._NULLABLE_MAPS:
            out[key] = {k: safe(v) for k, v in out[key].items()}
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimResult":
        """Rebuild a :class:`SimResult` from :meth:`to_dict` output."""
        fields = dict(data)
        fields["config"] = RouterConfig(**fields["config"])
        for key in ("flits", "frames", "fault"):
            fields[key] = {k: int(v) for k, v in fields.get(key, {}).items()}
        nan = float("nan")
        for key in cls._NULLABLE_SCALARS:
            if fields.get(key) is None:
                fields[key] = nan
        for key in cls._NULLABLE_MAPS:
            fields[key] = {
                k: (nan if v is None else v) for k, v in fields[key].items()
            }
        return cls(**fields)

    @property
    def overall_flit_delay_us(self) -> float:
        return self.flit_delay_us["overall"]

    @property
    def overall_frame_delay_us(self) -> float:
        return self.frame_delay_us["overall"]

    @property
    def overall_jitter_us(self) -> float:
        return self.jitter_us["overall"]

    @property
    def normalized_throughput(self) -> float:
        """Throughput / offered load (1.0 = keeping up; <1 = saturated)."""
        if self.offered_load == 0:
            return float("nan")
        return self.throughput / self.offered_load


class SingleRouterSim:
    """Builds and runs one router + NICs + workload instance."""

    def __init__(
        self,
        config: RouterConfig,
        arbiter: Arbiter | str = "coa",
        scheme: PriorityScheme | str = "siabp",
        seed: int = 0,
        fast_path: bool = True,
        skip_idle: bool = False,
    ) -> None:
        self.config = config
        self.router = MMRouter(config, arbiter, scheme, fast_path=fast_path)
        self.rng = RngStreams(seed)
        self.seed = seed
        #: True enables the idle-cycle fast-forward engine (see module
        #: docstring).  Results are bit-identical either way; the flag
        #: only trades the skip-predicate check on busy cycles against
        #: skipping all work on idle ones, so it defaults off for the
        #: saturated-regime experiments the paper's figures run.
        self.skip_idle = bool(skip_idle)

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        control: RunControl,
        telemetry=None,
        sessions=None,
    ) -> SimResult:
        """Run the cycle loop and summarize.

        The workload's connections must already be established on this
        sim's router (the ``build_*_workload`` helpers do that).

        ``telemetry`` optionally takes a
        :class:`~repro.obs.export.TelemetrySession` (duck-typed: anything
        with ``begin``/``on_cycle``/``finish``).  With ``None`` the loop
        below runs untouched — the dispatch happens once, outside the
        loop, so the disabled path stays grant- and RNG-state-identical
        to an uninstrumented build (asserted by the differential tests).

        ``sessions`` optionally takes a
        :class:`~repro.sessions.signaling.SessionEngine`; the run then
        processes dynamic session lifecycles (arrivals, admission,
        injection, drain, teardown, renegotiation) around the same
        pipeline, in the same twin-loop style — ``sessions=None`` costs
        nothing.  Session statistics live on the engine, not in the
        :class:`SimResult`, so a zero-churn engine leaves the result
        bit-identical to a plain run.
        """
        if sessions is not None:
            return self._run_sessions(workload, control, sessions, telemetry)
        if telemetry is not None:
            return self._run_instrumented(workload, control, telemetry)
        router = self.router
        config = self.config
        feeds = native_feeds(
            workload.build_feeds(control.cycles, self.rng.sources)
        )
        labels = workload.labels_by_conn()
        conn_of_vc = {
            (item.conn.in_port, item.conn.vc): item.conn.conn_id
            for item in workload.loads
        }
        metrics = MetricsCollector(
            config, labels, conn_of_vc, measure_from=control.warmup_cycles
        )
        arb_rng = self.rng.arbiter
        nics = router.nics
        pointers = [0] * config.num_ports
        counters_reset = control.warmup_cycles == 0
        if counters_reset:
            router.crossbar.reset_counters()
        skipping = self.skip_idle
        end = control.cycles
        next_due = next_injection_cycle(feeds, pointers, end)

        now = 0
        while now < end:
            if not counters_reset and now >= control.warmup_cycles:
                router.crossbar.reset_counters()
                counters_reset = True
            # 1. Source injection into the NICs.  ``next_due`` caches the
            #    earliest pending feed cycle so quiet cycles pay a single
            #    integer compare instead of a per-port feed scan.
            if now >= next_due:
                inject_due_flits(feeds, pointers, nics, now)
                next_due = next_injection_cycle(feeds, pointers, end)
            # 2. Router pipeline.  3. Metrics.  Flits-only-in-NICs cycles
            #    (every VC empty) cannot grant, so the quiet step drops
            #    the scheduling work the full pipeline would waste.
            if skipping and not router.vc_memory._occ_mask:
                router.step_quiet(now)
            else:
                for dep in router.step(now, arb_rng):
                    metrics.record(dep, now)
            now += 1
            # 4. Idle fast-forward to the next injection, if enabled.
            if skipping and next_due > now and router.is_idle():
                counters_reset = self._fast_forward(
                    now, next_due, control, counters_reset
                )
                now = next_due

        if not counters_reset:
            router.crossbar.reset_counters()
        return self._summarize(workload, control, metrics)

    def _run_instrumented(
        self, workload: Workload, control: RunControl, telemetry
    ) -> SimResult:
        """The telemetry twin of :meth:`run`.

        Deliberately a duplicate of the plain loop plus one
        ``telemetry.on_cycle`` call per cycle: folding a per-cycle
        ``if telemetry`` branch into the shared loop would tax every
        uninstrumented run, and the telemetry budget (<5% enabled, ~0%
        disabled) is enforced by ``python -m repro obs --bench``.
        """
        router = self.router
        config = self.config
        feeds = native_feeds(
            workload.build_feeds(control.cycles, self.rng.sources)
        )
        labels = workload.labels_by_conn()
        conn_of_vc = {
            (item.conn.in_port, item.conn.vc): item.conn.conn_id
            for item in workload.loads
        }
        metrics = MetricsCollector(
            config, labels, conn_of_vc, measure_from=control.warmup_cycles
        )
        telemetry.begin(router, workload, metrics, control)
        arb_rng = self.rng.arbiter
        nics = router.nics
        pointers = [0] * config.num_ports
        counters_reset = control.warmup_cycles == 0
        if counters_reset:
            router.crossbar.reset_counters()
        # Skipping must not silence a strided telemetry sample, so it
        # stays off unless the observer can report its next event cycle
        # (duck-typed like the rest of the telemetry protocol).
        tel_next = getattr(telemetry, "next_event_cycle", None)
        skipping = self.skip_idle and tel_next is not None
        end = control.cycles
        next_due = next_injection_cycle(feeds, pointers, end)

        now = 0
        while now < end:
            if not counters_reset and now >= control.warmup_cycles:
                router.crossbar.reset_counters()
                counters_reset = True
            # 1. Source injection into the NICs (``next_due``-gated).
            if now >= next_due:
                inject_due_flits(feeds, pointers, nics, now)
                next_due = next_injection_cycle(feeds, pointers, end)
            # 2. Router pipeline.  3. Metrics.  4. Telemetry.
            if skipping and not router.vc_memory._occ_mask:
                router.step_quiet(now)
                departures = _NO_DEPARTURES
            else:
                departures = router.step(now, arb_rng)
                for dep in departures:
                    metrics.record(dep, now)
            telemetry.on_cycle(now, departures)
            now += 1
            # 5. Idle fast-forward to the next injection or sample.
            if skipping and next_due > now and router.is_idle():
                target = next_due
                tel_cycle = tel_next(now)
                if tel_cycle < target:
                    target = tel_cycle
                if target > now:
                    counters_reset = self._fast_forward(
                        now, target, control, counters_reset
                    )
                    now = target

        if not counters_reset:
            router.crossbar.reset_counters()
        result = self._summarize(workload, control, metrics)
        telemetry.finish(result)
        return result

    def _run_sessions(
        self, workload: Workload, control: RunControl, engine, telemetry
    ) -> SimResult:
        """The session twin of :meth:`run` (plus optional telemetry).

        Same loop body with three engine hooks around it: signaling and
        arrivals before injection, dynamic-session injection after the
        static feeds, and departure feedback after metrics.  Kept as a
        separate twin for the same reason as the telemetry loop — the
        plain path must not pay a single branch for a feature it does
        not use (``python -m repro sessions --bench`` gates it).
        """
        router = self.router
        config = self.config
        feeds = native_feeds(
            workload.build_feeds(control.cycles, self.rng.sources)
        )
        labels = workload.labels_by_conn()
        conn_of_vc = {
            (item.conn.in_port, item.conn.vc): item.conn.conn_id
            for item in workload.loads
        }
        metrics = MetricsCollector(
            config, labels, conn_of_vc, measure_from=control.warmup_cycles
        )
        if telemetry is not None:
            telemetry.begin(router, workload, metrics, control)
        engine.begin(router, workload, metrics, control, telemetry)
        arb_rng = self.rng.arbiter
        nics = router.nics
        pointers = [0] * config.num_ports
        counters_reset = control.warmup_cycles == 0
        if counters_reset:
            router.crossbar.reset_counters()
        # Both the engine and any telemetry must expose next-event times
        # for skipping to stay bit-identical; otherwise it disables itself.
        eng_next = getattr(engine, "next_event_cycle", None)
        tel_next = (
            getattr(telemetry, "next_event_cycle", None)
            if telemetry is not None
            else None
        )
        skipping = (
            self.skip_idle
            and eng_next is not None
            and (telemetry is None or tel_next is not None)
        )
        end = control.cycles
        next_due = next_injection_cycle(feeds, pointers, end)

        now = 0
        while now < end:
            if not counters_reset and now >= control.warmup_cycles:
                router.crossbar.reset_counters()
                counters_reset = True
            # 0. Session signaling: setups, teardowns, renegotiations.
            engine.on_cycle(now)
            # 1. Source injection into the NICs (static, then dynamic).
            if now >= next_due:
                inject_due_flits(feeds, pointers, nics, now)
                next_due = next_injection_cycle(feeds, pointers, end)
            engine.inject(now)
            # 2. Router pipeline.  3. Metrics.  4. Feedback / telemetry.
            if skipping and not router.vc_memory._occ_mask:
                router.step_quiet(now)
                departures = _NO_DEPARTURES
            else:
                departures = router.step(now, arb_rng)
                for dep in departures:
                    metrics.record(dep, now)
            engine.on_departures(now, departures)
            if telemetry is not None:
                telemetry.on_cycle(now, departures)
            now += 1
            # 5. Idle fast-forward to the next injection / signaling /
            #    sampling event.
            if skipping and next_due > now and router.is_idle():
                target = next_due
                eng_cycle = eng_next(now)
                if eng_cycle < target:
                    target = eng_cycle
                if tel_next is not None:
                    tel_cycle = tel_next(now)
                    if tel_cycle < target:
                        target = tel_cycle
                if target > now:
                    counters_reset = self._fast_forward(
                        now, target, control, counters_reset
                    )
                    now = target

        if not counters_reset:
            router.crossbar.reset_counters()
        result = self._summarize(workload, control, metrics)
        engine.finish()
        if telemetry is not None:
            telemetry.finish(result)
        return result

    # ------------------------------------------------------------------

    def _fast_forward(
        self, now: int, target: int, control: RunControl, counters_reset: bool
    ) -> bool:
        """Advance bookkeeping across the idle span ``[now, target)``.

        Every skipped cycle would have: injected nothing, matched nothing
        (so every arbiter's RNG and grant-driven state stay untouched),
        transferred nothing, and accepted nothing.  The only per-cycle
        state the reference loop would still move is the crossbar's
        cycle counter (the utilization denominator) — including its
        warmup reset if the cut falls inside the span — and the wrapped
        WFA's rotating start diagonal, both advanced analytically here.
        Returns the updated ``counters_reset`` flag.
        """
        crossbar = self.router.crossbar
        if not counters_reset and control.warmup_cycles < target:
            # The warmup cut lands on a skipped cycle: the reference loop
            # would reset there and then count the remainder of the span.
            crossbar.reset_counters()
            crossbar.cycles += target - control.warmup_cycles
            counters_reset = True
        else:
            crossbar.cycles += target - now
        self.router.arbiter.skip_idle_cycles(target - now)
        return counters_reset

    def _summarize(
        self, workload: Workload, control: RunControl, metrics: MetricsCollector
    ) -> SimResult:
        config = self.config
        router = self.router

        def per_group(pick) -> dict[str, float]:
            out = {
                label: pick(group) for label, group in sorted(metrics.groups.items())
            }
            out["overall"] = pick(metrics.overall)
            return out

        def us(stat_mean_cycles: float) -> float:
            return config.cycles_to_us(stat_mean_cycles)

        measured = control.measured_cycles
        throughput = (
            metrics.measured_departures / (measured * config.num_ports)
            if measured
            else float("nan")
        )

        return SimResult(
            config=config,
            arbiter=router.arbiter.name,
            scheme=router.scheme.name,
            seed=self.seed,
            cycles=control.cycles,
            warmup_cycles=control.warmup_cycles,
            offered_load=workload.mean_offered_load(),
            utilization=router.crossbar.utilization,
            throughput=throughput,
            flit_delay_us=per_group(lambda g: us(g.flit_delay.mean)),
            flit_delay_p99_us=per_group(lambda g: us(g.flit_delay.percentile(99))),
            frame_delay_us=per_group(lambda g: us(g.frame_delay.mean)),
            jitter_us=per_group(lambda g: us(g.jitter.mean)),
            flits=per_group(lambda g: g.flits),
            frames=per_group(lambda g: g.frames),
            backlog=router.nic_backlog() + router.buffered_flits(),
            connections=len(workload),
        )
