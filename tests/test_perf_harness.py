"""Smoke tests for the perf harness (repro.perf.harness)."""

import json

import pytest

from repro.perf.harness import (
    STAGES,
    check_regression,
    profile_fast_path,
    run_perf,
    write_report,
)


@pytest.fixture(scope="module")
def tiny_report():
    # Small enough to run in CI; big enough to exercise every stage.
    return run_perf(ports=4, vcs=8, levels=4, cycles=300, repeats=1, seed=3)


class TestRunPerf:
    def test_report_shape(self, tiny_report):
        r = tiny_report
        assert r.cycles == 300 and r.repeats == 1
        assert r.fast.cycles_per_sec > 0
        assert r.reference.cycles_per_sec > 0
        assert r.speedup == pytest.approx(
            r.fast.cycles_per_sec / r.reference.cycles_per_sec
        )
        assert r.fast.wall_s == min(r.fast.wall_s_all)
        assert len(r.fast.wall_s_all) == 1

    def test_paths_depart_identically(self, tiny_report):
        assert tiny_report.grants_identical
        assert tiny_report.fast.departures == tiny_report.reference.departures

    def test_stage_breakdown_covers_all_stages(self, tiny_report):
        for path in (tiny_report.fast, tiny_report.reference):
            assert set(path.stages_ns) == set(STAGES)
            assert all(ns >= 0 for ns in path.stages_ns.values())
            assert sum(path.stages_ns.values()) > 0


class TestReportIO:
    def test_write_and_regression_roundtrip(self, tiny_report, tmp_path):
        path = write_report(tiny_report, tmp_path / "BENCH_perf.json")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["speedup"] == pytest.approx(tiny_report.speedup)
        ok, msg = check_regression(tiny_report, path, max_regression=0.3)
        assert ok, msg

    def test_regression_detected_against_inflated_baseline(
        self, tiny_report, tmp_path
    ):
        path = write_report(tiny_report, tmp_path / "base.json")
        data = json.loads(path.read_text(encoding="utf-8"))
        data["fast"]["cycles_per_sec"] *= 100.0
        path.write_text(json.dumps(data), encoding="utf-8")
        ok, msg = check_regression(tiny_report, path, max_regression=0.3)
        assert not ok
        assert "regression" in msg


class TestProfile:
    def test_profile_fast_path_returns_stats_text(self):
        text = profile_fast_path(ports=4, vcs=8, cycles=100)
        assert "cumulative" in text
        assert "function calls" in text
