"""Campaign execution: worker pool, per-point retry, result caching.

One function defines how a point runs (:func:`execute_point`); the sweep
and replication APIs in ``repro.sim`` route through it, and the worker
processes rebuild the same call from a :class:`~repro.campaign.plan.PointSpec`.
Because every point carries its own seed and RNG streams are per-simulation
(:class:`repro.sim.engine.RngStreams`), execution order cannot influence
results: a parallel campaign must produce artifacts byte-identical to a
serial one, and tests assert exactly that.

Failure policy (same ethos as ``repro.faults``): a point that raises is
retried up to ``max_attempts`` times; a *crashed* worker (killed process,
broken pool) is detected, logged to stderr, the pool rebuilt, and the
affected points retried.  Only after a point exhausts its attempts does
the campaign fail loudly with :class:`CampaignError` — partial results
already computed are still in the store, so a re-run resumes from cache.
"""

from __future__ import annotations

import logging
import multiprocessing
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..router.config import RouterConfig
from ..sim.engine import RunControl
from ..sim.simulation import SimResult, SingleRouterSim
from .plan import CampaignPlan, PointSpec
from .progress import ProgressReporter
from .store import ResultStore, RunManifest

__all__ = [
    "CampaignError",
    "PointOutcome",
    "CampaignResult",
    "execute_point",
    "run_campaign",
]

log = logging.getLogger(__name__)


class CampaignError(RuntimeError):
    """A point exhausted its retry budget; the campaign fails loudly."""


def execute_point(
    builder: Callable,
    config: RouterConfig,
    arbiter: str,
    control: RunControl,
    target_load: float,
    seed: int,
    scheme: str = "siabp",
    telemetry=None,
    sessions=None,
    faults=None,
) -> SimResult:
    """Run one simulation point.  THE definition of point semantics.

    ``builder`` is any ``(router, rng, load) -> Workload`` callable —
    including a :class:`~repro.campaign.plan.WorkloadSpec`, which is how
    worker processes and the legacy sweep/replication APIs share this
    single code path.

    ``telemetry`` optionally takes a
    :class:`~repro.obs.export.TelemetryConfig`; the point then runs
    instrumented and the return value becomes the tuple
    ``(result, session)`` so callers can export or persist the
    session's payload.

    ``sessions`` optionally takes a
    :class:`~repro.sessions.signaling.SessionsSpec`; the point then runs
    with dynamic session churn and the return value grows a trailing
    :class:`~repro.sessions.signaling.SessionEngine` —
    ``(result, engine)`` or ``(result, session, engine)``.

    ``faults`` optionally takes a
    :class:`~repro.faults.models.FaultConfig`; the point then runs on
    the fault-injecting harness instead of the healthy simulator.
    """
    if faults is not None:
        from ..faults.harness import FaultySingleRouterSim

        sim = FaultySingleRouterSim(
            config, arbiter=arbiter, scheme=scheme, seed=seed, faults=faults
        )
    else:
        sim = SingleRouterSim(config, arbiter=arbiter, scheme=scheme, seed=seed)
    workload = builder(sim.router, sim.rng.workload, target_load)
    if sessions is not None:
        from ..sessions.signaling import SessionEngine

        engine = SessionEngine.from_spec(
            config, sessions, control.cycles, sim.rng.sessions
        )
        if telemetry is None:
            result = sim.run(workload, control, sessions=engine)
            return result, engine  # type: ignore[return-value]
        from ..obs.export import TelemetrySession

        session = TelemetrySession(telemetry)
        result = sim.run(workload, control, telemetry=session, sessions=engine)
        return result, session, engine  # type: ignore[return-value]
    if telemetry is None:
        return sim.run(workload, control)
    from ..obs.export import TelemetrySession

    session = TelemetrySession(telemetry)
    result = sim.run(workload, control, telemetry=session)
    return result, session  # type: ignore[return-value]


def _worker(payload: dict[str, Any]) -> dict[str, Any]:
    """Pool entry point: rebuild the spec, run it, return plain data."""
    t0 = time.monotonic()
    spec = PointSpec.from_dict(payload)
    telemetry_cfg = payload.get("telemetry")
    telemetry = None
    if telemetry_cfg is not None:
        from ..obs.export import TelemetryConfig

        telemetry = TelemetryConfig.from_dict(telemetry_cfg)
    if spec.fabric is not None:
        # Fabric points run the multi-router simulator; the fabric
        # payload rides the same store channel session payloads use.
        if telemetry is not None:
            raise ValueError("telemetry is not supported for fabric points")
        if spec.shard is not None:
            # Sharded execution is byte-identical to serial, so the
            # returned artifacts (and the cache key) are the same —
            # only the wall clock differs.
            from ..shard import execute_shard_point

            result, sessions_payload = execute_shard_point(spec)
            return {
                "wall_s": time.monotonic() - t0,
                "sessions": sessions_payload,
                "result": result.to_dict(),
            }
        from ..fabric.engine import execute_fabric_point

        result, engine = execute_fabric_point(spec)
        return {
            "wall_s": time.monotonic() - t0,
            "sessions": engine.to_payload(),
            "result": result.to_dict(),
        }
    out = execute_point(
        spec.workload,
        spec.config,
        spec.arbiter,
        spec.control,
        spec.target_load,
        spec.seed,
        spec.scheme,
        telemetry=telemetry,
        sessions=spec.sessions,
        faults=spec.faults,
    )
    payload_out: dict[str, Any] = {"wall_s": time.monotonic() - t0}
    if spec.sessions is not None:
        engine = out[-1]
        out = out[:-1]
        payload_out["sessions"] = engine.to_payload()
        if engine.control_plane is not None:
            payload_out["control"] = engine.control_payload()
    if telemetry is not None:
        result, session = out if isinstance(out, tuple) else (out, None)
        payload_out["telemetry"] = session.to_payload()
    else:
        result = out[0] if isinstance(out, tuple) else out
    payload_out["result"] = result.to_dict()
    return payload_out


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PointOutcome:
    """One executed (or cache-served) point of a campaign."""

    spec: PointSpec
    key: str
    result: SimResult
    cached: bool
    attempts: int
    wall_s: float
    #: Telemetry payload (``repro.obs`` schema) when the campaign ran
    #: with telemetry; ``None`` otherwise.
    telemetry: dict[str, Any] | None = None
    #: Session-stats payload (``repro.sessions`` schema) when the point
    #: spec carried a :class:`~repro.sessions.signaling.SessionsSpec`, or
    #: the fabric payload (``repro.fabric`` schema) when it carried a
    #: :class:`~repro.fabric.spec.FabricSpec` — same store channel.
    sessions: dict[str, Any] | None = None
    #: Control-plane payload (``repro.control`` schema) when the point's
    #: sessions spec carried a :class:`~repro.control.config.ControlConfig`.
    control: dict[str, Any] | None = None


@dataclass
class CampaignResult:
    """All outcomes of one campaign invocation, in plan order."""

    plan: CampaignPlan
    outcomes: list[PointOutcome]
    wall_s: float
    manifest_path: Path | None = None

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def misses(self) -> int:
        return len(self.outcomes) - self.hits

    @property
    def points_per_sec(self) -> float:
        return len(self.outcomes) / self.wall_s if self.wall_s > 0 else float("inf")

    def results(self) -> list[SimResult]:
        return [o.result for o in self.outcomes]


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------


def _pool_context():
    """fork where available (fast, shares registered workload kinds);
    spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_campaign(
    plan: CampaignPlan,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    max_attempts: int = 3,
    progress: ProgressReporter | None | bool = None,
    write_manifest: bool = True,
    worker: Callable[[dict[str, Any]], dict[str, Any]] | None = None,
    telemetry=None,
) -> CampaignResult:
    """Execute a plan, serving cached points from ``store``.

    ``jobs=1`` runs serially in-process (the debugging path: tracebacks
    point straight at the failing point).  ``jobs>1`` fans misses out on
    a process pool.  ``progress=True`` reports to stderr; a
    :class:`ProgressReporter` instance redirects the telemetry;
    ``None``/``False`` stays quiet.  ``worker`` overrides the point
    worker (tests use it to inject failures).

    ``telemetry`` optionally takes a
    :class:`~repro.obs.export.TelemetryConfig`: every point then runs
    instrumented, each outcome carries its telemetry payload, and — with
    a ``store`` — payloads persist under ``telemetry/<kk>/<key>.json``
    next to the result objects.  A cached result without a cached
    telemetry payload counts as a miss (telemetry needs a live run).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    worker_fn = worker if worker is not None else _worker
    telemetry_dict = telemetry.to_dict() if telemetry is not None else None

    def payload_for(i: int) -> dict[str, Any]:
        payload = plan.points[i].to_dict()
        if telemetry_dict is not None:
            # Extra key; PointSpec.from_dict ignores it, _worker reads it.
            payload["telemetry"] = telemetry_dict
        return payload

    t_start = time.monotonic()
    keys = [spec.key() for spec in plan.points]
    reporter: ProgressReporter | None
    if progress is True:
        reporter = ProgressReporter(len(plan.points))
    elif isinstance(progress, ProgressReporter):
        reporter = progress
    else:
        reporter = None

    # Phase 1: consult the cache (in the parent; cheap, deterministic).
    outcomes: list[PointOutcome | None] = [None] * len(plan.points)
    todo: list[int] = []
    for i, (spec, key) in enumerate(zip(plan.points, keys)):
        cached = store.get(key) if store is not None else None
        cached_telemetry = None
        cached_sessions = None
        cached_control = None
        if cached is not None and telemetry is not None:
            cached_telemetry = store.get_telemetry(key)
            if cached_telemetry is None:
                cached = None  # result alone cannot serve a telemetry run
        if cached is not None and (
            spec.sessions is not None or spec.fabric is not None
        ):
            cached_sessions = store.get_sessions(key)
            if cached_sessions is None:
                cached = None  # session stats also require a live run
            elif spec.sessions is not None and spec.sessions.control is not None:
                cached_control = store.get_payload("control", key)
                if cached_control is None:
                    cached = None  # control payloads need a live run too
        if cached is not None:
            outcomes[i] = PointOutcome(
                spec=spec,
                key=key,
                result=SimResult.from_dict(cached),
                cached=True,
                attempts=0,
                wall_s=0.0,
                telemetry=cached_telemetry,
                sessions=cached_sessions,
                control=cached_control,
            )
            if reporter:
                reporter.point_done(cached=True, attempts=0)
        else:
            todo.append(i)

    # Phase 2: compute the misses.
    attempts = {i: 0 for i in todo}

    def finalize(
        i: int,
        wall_s: float,
        result_dict: dict[str, Any],
        telemetry_payload: dict[str, Any] | None = None,
        sessions_payload: dict[str, Any] | None = None,
        control_payload: dict[str, Any] | None = None,
    ) -> None:
        spec, key = plan.points[i], keys[i]
        if store is not None:
            store.put(spec, key, result_dict)
            if telemetry_payload is not None:
                store.put_telemetry(key, telemetry_payload)
            if sessions_payload is not None:
                store.put_sessions(key, sessions_payload)
            if control_payload is not None:
                store.put_payload("control", key, control_payload)
        outcomes[i] = PointOutcome(
            spec=spec,
            key=key,
            result=SimResult.from_dict(result_dict),
            cached=False,
            attempts=attempts[i],
            wall_s=wall_s,
            telemetry=telemetry_payload,
            sessions=sessions_payload,
            control=control_payload,
        )
        if reporter:
            reporter.point_done(cached=False, attempts=attempts[i])

    def retry_or_fail(i: int, exc: BaseException) -> None:
        spec = plan.points[i]
        if attempts[i] >= max_attempts:
            raise CampaignError(
                f"point {spec.describe()} failed after "
                f"{attempts[i]} attempts: {exc!r}"
            ) from exc
        log.warning(
            "campaign point %s failed (attempt %d/%d): %r — retrying",
            spec.describe(),
            attempts[i],
            max_attempts,
            exc,
        )

    if jobs == 1 or len(todo) <= 1:
        for i in todo:
            while outcomes[i] is None:
                attempts[i] += 1
                t0 = time.monotonic()
                try:
                    out = worker_fn(payload_for(i))
                except CampaignError:
                    raise
                except Exception as exc:
                    retry_or_fail(i, exc)
                else:
                    finalize(
                        i,
                        out.get("wall_s", time.monotonic() - t0),
                        out["result"],
                        out.get("telemetry"),
                        out.get("sessions"),
                        out.get("control"),
                    )
    else:
        _run_pool(
            plan, todo, attempts, finalize, retry_or_fail, jobs, worker_fn,
            payload_for,
        )

    wall_s = time.monotonic() - t_start
    if reporter:
        reporter.finish()

    done = [o for o in outcomes if o is not None]
    assert len(done) == len(plan.points)

    manifest_path = None
    if store is not None and write_manifest:
        manifest = RunManifest(campaign=plan.name, jobs=jobs)
        manifest.started_unix = time.time() - wall_s
        for o in done:
            manifest.record_point(o.spec, o.key, o.cached, o.attempts, o.wall_s)
        manifest.finish()
        manifest_path = store.write_manifest(manifest)

    return CampaignResult(
        plan=plan, outcomes=done, wall_s=wall_s, manifest_path=manifest_path
    )


def _run_pool(
    plan: CampaignPlan,
    todo: list[int],
    attempts: dict[int, int],
    finalize: Callable[..., None],
    retry_or_fail: Callable[[int, BaseException], None],
    jobs: int,
    worker_fn: Callable[[dict[str, Any]], dict[str, Any]],
    payload_for: Callable[[int], dict[str, Any]],
) -> None:
    """Fan points out on a process pool, surviving worker crashes.

    Normal exceptions retry on the same pool.  A broken pool (a worker
    died hard) poisons every in-flight future, so all of them get an
    attempt charged, the pool is rebuilt, and the survivors resubmitted.
    """
    ctx = _pool_context()
    outstanding = list(todo)
    while outstanding:
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)
        retry_next_pool: list[int] = []
        try:
            futures = {}
            for i in outstanding:
                attempts[i] += 1
                futures[pool.submit(worker_fn, payload_for(i))] = i
            pending = set(futures)
            broken = False
            while pending and not broken:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    i = futures.pop(fut)
                    try:
                        out = fut.result()
                    except BrokenProcessPool as exc:
                        print(
                            f"campaign: worker pool broke on "
                            f"{plan.points[i].describe()} — rebuilding pool",
                            file=sys.stderr,
                            flush=True,
                        )
                        retry_or_fail(i, exc)
                        retry_next_pool.append(i)
                        broken = True
                    except Exception as exc:
                        retry_or_fail(i, exc)
                        attempts[i] += 1
                        try:
                            f = pool.submit(worker_fn, payload_for(i))
                        except BrokenProcessPool:
                            attempts[i] -= 1  # submission never happened
                            retry_next_pool.append(i)
                            broken = True
                        else:
                            futures[f] = i
                            pending.add(f)
                    else:
                        finalize(
                            i,
                            out.get("wall_s", 0.0),
                            out["result"],
                            out.get("telemetry"),
                            out.get("sessions"),
                            out.get("control"),
                        )
            if broken:
                # In-flight futures on a broken pool are poisoned too:
                # charge the attempt and retry them on a fresh pool.
                for fut in pending:
                    i = futures.pop(fut)
                    retry_or_fail(
                        i, BrokenProcessPool("sibling worker crashed")
                    )
                    retry_next_pool.append(i)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        outstanding = sorted(retry_next_pool)
