"""Tests for repro.router.flit."""

from repro.router.flit import FRAME_NONE, Flit, FlitType


class TestFlitType:
    def test_control_flits(self):
        assert Flit(0, FlitType.PROBE).is_control()
        assert Flit(0, FlitType.ACK).is_control()
        assert not Flit(0, FlitType.DATA).is_control()

    def test_packet_boundaries(self):
        assert Flit(0, FlitType.HEAD).is_packet_boundary()
        assert Flit(0, FlitType.TAIL).is_packet_boundary()
        assert not Flit(0, FlitType.BODY).is_packet_boundary()
        assert not Flit(0, FlitType.DATA).is_packet_boundary()


class TestFlit:
    def test_defaults(self):
        flit = Flit(conn_id=3)
        assert flit.ftype is FlitType.DATA
        assert flit.gen_cycle == 0
        assert flit.frame_id == FRAME_NONE
        assert flit.frame_last is False
        assert flit.payload is None

    def test_frame_tracking_fields(self):
        flit = Flit(1, FlitType.DATA, gen_cycle=10, frame_id=4, frame_last=True)
        assert flit.frame_id == 4
        assert flit.frame_last

    def test_slots_prevent_arbitrary_attributes(self):
        flit = Flit(0)
        try:
            flit.bogus = 1  # type: ignore[attr-defined]
        except AttributeError:
            return
        raise AssertionError("Flit should use __slots__")
