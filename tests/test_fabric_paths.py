"""Tests for repro.fabric.paths and repro.fabric.spec."""

import pytest

from repro.fabric.paths import (
    PATH_POLICIES,
    PathProvider,
    make_path_policy,
    residual_bottleneck,
    stable_hash,
)
from repro.fabric.spec import FabricSpec, TopologySpec, parse_topology
from repro.network.multirouter import MultiRouterNetwork
from repro.network.topology import fat_tree, torus
from repro.router.config import RouterConfig
from repro.router.connection import TrafficClass


def make_config(**overrides):
    base = dict(num_ports=6, vcs_per_link=8, vc_buffer_depth=2,
                candidate_levels=4, flit_cycles_per_round=800)
    base.update(overrides)
    return RouterConfig(**base)


class TestPathProvider:
    def test_enumeration_is_deterministic_and_sorted(self):
        topo = fat_tree(4)
        a = PathProvider(topo, k_paths=4)
        b = PathProvider(topo, k_paths=4)
        hosts = [4, 7, 9, 16]
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                pa, pb = a.paths(src, dst), b.paths(src, dst)
                assert pa == pb
                assert list(pa) == sorted(pa, key=lambda p: (len(p), p))
                for path in pa:
                    assert path[0] == src and path[-1] == dst
                    assert len(set(path)) == len(path)  # loop-free

    def test_equal_cost_paths_on_fat_tree(self):
        # Cross-pod edge pairs in fat_tree(4) have 4 equal-cost
        # 5-router paths (one per core).
        provider = PathProvider(fat_tree(4), k_paths=4)
        paths = provider.paths(6, 10)
        assert len(paths) == 4
        assert all(len(p) == 5 for p in paths)

    def test_k_paths_validation(self):
        with pytest.raises(ValueError):
            PathProvider(torus(2, 2), k_paths=0)


class TestStableHash:
    def test_deterministic_and_spread(self):
        assert stable_hash(1, 2, 3) == stable_hash(1, 2, 3)
        values = {stable_hash(sid, 0, 5) % 4 for sid in range(64)}
        assert values == {0, 1, 2, 3}  # spreads over candidates


class TestPolicies:
    def setup_method(self):
        self.topo = torus(2, 3)
        self.net = MultiRouterNetwork(self.topo, make_config())
        self.provider = PathProvider(self.topo, k_paths=3)
        self.paths = self.provider.paths(0, 4)

    def test_first_fit_is_identity(self):
        policy = make_path_policy("first-fit")
        assert policy.order(self.paths, 7, self.net) == list(
            range(len(self.paths))
        )

    def test_ecmp_rotation_covers_all(self):
        policy = make_path_policy("ecmp")
        starts = set()
        for sid in range(32):
            order = policy.order(self.paths, sid, self.net)
            assert sorted(order) == list(range(len(self.paths)))
            starts.add(order[0])
        assert len(starts) == len(self.paths)

    def test_wrr_prefers_residual_capacity(self):
        policy = make_path_policy("wrr")
        # Reserve heavily along the first candidate path; WRR must then
        # favor the others.
        first = self.paths[0]
        conn, blocked = self.net.establish_along(
            list(first), TrafficClass.CBR, avg_slots=700
        )
        assert conn is not None and blocked == -1
        picks = [policy.order(self.paths, sid, self.net)[0]
                 for sid in range(12)]
        assert picks.count(0) < len(picks) / 3
        # residual weighting is what drove it
        weights = [residual_bottleneck(self.net, p) for p in self.paths]
        assert weights[0] < max(weights[1:])

    def test_wrr_interleaves_when_balanced(self):
        policy = make_path_policy("wrr")
        picks = [policy.order(self.paths, sid, self.net)[0]
                 for sid in range(9)]
        assert set(picks) == set(range(len(self.paths)))

    def test_unknown_policy_is_loud(self):
        with pytest.raises(ValueError, match="first-fit, ecmp, wrr"):
            make_path_policy("random")
        assert set(PATH_POLICIES) == {"first-fit", "ecmp", "wrr"}


class TestTopologySpec:
    def test_round_trip_and_build(self):
        for spec in (TopologySpec.ring(6), TopologySpec.mesh(2, 3),
                     TopologySpec.torus(3, 3), TopologySpec.fat_tree(4)):
            again = TopologySpec.from_dict(spec.to_dict())
            assert again == spec
            topo = spec.build()
            assert topo.num_routers > 1
            hosts = spec.host_routers()
            assert len(hosts) >= 2
            assert all(0 <= r < topo.num_routers for r in hosts)

    def test_fat_tree_hosts_are_edge_stage(self):
        spec = TopologySpec.fat_tree(4)
        assert len(spec.host_routers()) == 8

    def test_unknown_kind_is_loud(self):
        with pytest.raises(ValueError, match="fat-tree, mesh, ring, torus"):
            TopologySpec("hypercube", (("n", 4),))

    def test_wrong_params_are_loud(self):
        with pytest.raises(ValueError, match="params"):
            TopologySpec("ring", (("rows", 3),))

    def test_parse(self):
        assert parse_topology("ring:6") == TopologySpec.ring(6)
        assert parse_topology("mesh:2x4") == TopologySpec.mesh(2, 4)
        assert parse_topology("torus:3x3") == TopologySpec.torus(3, 3)
        assert parse_topology("fat-tree:4") == TopologySpec.fat_tree(4)
        assert parse_topology("ring") == TopologySpec.ring(8)

    def test_parse_unknown_is_loud(self):
        with pytest.raises(ValueError, match="known:"):
            parse_topology("star:5")


class TestFabricSpec:
    def test_round_trip(self):
        spec = FabricSpec(topology=TopologySpec.torus(2, 3),
                          path_policy="wrr", k_paths=3,
                          max_path_attempts=3, conns_per_router=2,
                          drain=True)
        assert FabricSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_policy_is_loud(self):
        with pytest.raises(ValueError, match="first-fit, ecmp, wrr"):
            FabricSpec(topology=TopologySpec.ring(4), path_policy="rr")

    def test_validation(self):
        with pytest.raises(ValueError):
            FabricSpec(topology=TopologySpec.ring(4), k_paths=0)
        with pytest.raises(ValueError):
            FabricSpec(topology=TopologySpec.ring(4), max_path_attempts=0)
        with pytest.raises(ValueError):
            FabricSpec(topology=TopologySpec.ring(4), conns_per_router=-1)
