"""Control-plane configuration: retry policy and closed-loop knobs.

Plain data only (hashable, strict-JSON round-trip, no simulation
imports) so :class:`~repro.sessions.signaling.SessionsSpec` can carry a
:class:`ControlConfig` into campaign point specs and content-address the
results.  Attaching a control config to a spec changes its hash (the
spec dict grows a ``control`` key); leaving it ``None`` keeps the hash —
and the run — bit-identical to pre-control behavior.

Units and semantics:

* :class:`RetryPolicy` governs *signaling* messages (session setup and
  VBR peak renegotiation): how long the engine waits for an ACK before
  declaring a timeout, how many retries it attempts, and the
  deterministic exponential backoff (base × factor^k plus a bounded
  jitter term precomputed from the ``sessions`` RNG stream — the cycle
  loop itself never draws).  ``loss_rate`` is the modelled probability
  that any one signaling message is lost in transit.
* The estimator knobs smooth measured pressure: ``violation_alpha`` /
  ``occupancy_alpha`` are EWMA weights, ``estimator_stride`` the cycles
  between estimator updates.  The violation-rate estimate is expressed
  in deadline violations per kilocycle.
* ``low_water`` / ``high_water`` / ``hold_cycles`` define the anti-flap
  hysteresis band on the violation-rate estimate: crossing
  ``high_water`` trips the overload state (CAC brake on, best-effort
  shed floor); recovery requires the estimate to stay *below*
  ``low_water`` for ``hold_cycles`` before any un-shed step, and
  consecutive level changes are spaced at least ``hold_cycles`` apart.
* ``brake_cap`` is the tightened reserved-average-load cap the adaptive
  CAC applies while the overload state is active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["RetryPolicy", "ControlConfig"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff parameters for signaling messages."""

    #: Cycles the engine waits for a signaling ACK before timing out.
    timeout_cycles: int = 16
    #: Retries after the first attempt (0 = give up on first timeout).
    max_retries: int = 3
    #: Backoff before retry k (1-based): ``base * factor**(k-1) + jitter``.
    backoff_base_cycles: int = 8
    backoff_factor: int = 2
    #: Upper bound (inclusive) of the per-retry jitter draw, in cycles.
    jitter_cycles: int = 4
    #: Probability any one signaling message is lost in transit.
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout_cycles < 1:
            raise ValueError("timeout_cycles must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_cycles < 0:
            raise ValueError("backoff_base_cycles must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.jitter_cycles < 0:
            raise ValueError("jitter_cycles must be >= 0")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")

    def backoff_cycles(self, attempt: int) -> int:
        """Deterministic backoff before retry ``attempt`` (1-based),
        excluding the jitter term."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        return self.backoff_base_cycles * self.backoff_factor ** (attempt - 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "timeout_cycles": self.timeout_cycles,
            "max_retries": self.max_retries,
            "backoff_base_cycles": self.backoff_base_cycles,
            "backoff_factor": self.backoff_factor,
            "jitter_cycles": self.jitter_cycles,
            "loss_rate": self.loss_rate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        return cls(**dict(data))


@dataclass(frozen=True)
class ControlConfig:
    """Everything the closed-loop control plane needs, as plain data."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: EWMA weight of the deadline-violation-rate estimator.
    violation_alpha: float = 0.05
    #: EWMA weight of the NIC queue-occupancy estimator.
    occupancy_alpha: float = 0.05
    #: Cycles between estimator updates (and hysteresis evaluations).
    estimator_stride: int = 64
    #: Violations per kilocycle above which the overload state trips.
    high_water: float = 4.0
    #: Violations per kilocycle the estimate must stay below to recover.
    low_water: float = 1.0
    #: Minimum cycles below ``low_water`` before any un-shed step, and
    #: the minimum spacing between consecutive degradation transitions.
    hold_cycles: int = 1_000
    #: Reserved-average-load cap the adaptive CAC enforces under overload.
    brake_cap: float = 0.7

    def __post_init__(self) -> None:
        for name in ("violation_alpha", "occupancy_alpha"):
            alpha = getattr(self, name)
            if not (0.0 < alpha <= 1.0):
                raise ValueError(f"{name} must be in (0, 1], got {alpha}")
        if self.estimator_stride < 1:
            raise ValueError("estimator_stride must be >= 1")
        if not (0.0 <= self.low_water < self.high_water):
            raise ValueError(
                "need 0 <= low_water < high_water "
                f"(got {self.low_water}, {self.high_water})"
            )
        if self.hold_cycles < 1:
            raise ValueError("hold_cycles must be >= 1")
        if not (0.0 < self.brake_cap <= 1.0):
            raise ValueError("brake_cap must be in (0, 1]")

    def to_dict(self) -> dict[str, Any]:
        return {
            "retry": self.retry.to_dict(),
            "violation_alpha": self.violation_alpha,
            "occupancy_alpha": self.occupancy_alpha,
            "estimator_stride": self.estimator_stride,
            "high_water": self.high_water,
            "low_water": self.low_water,
            "hold_cycles": self.hold_cycles,
            "brake_cap": self.brake_cap,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ControlConfig":
        fields = dict(data)
        fields["retry"] = RetryPolicy.from_dict(fields.get("retry", {}))
        return cls(**fields)
