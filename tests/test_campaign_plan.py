"""Point specs, workload specs, and stable hashing (repro.campaign.plan)."""

import pytest

from repro.campaign import CampaignPlan, PointSpec, WorkloadSpec
from repro.campaign import plan as plan_mod
from repro.router import RouterConfig
from repro.sim import RunControl


CFG = RouterConfig(num_ports=4, vcs_per_link=32, candidate_levels=4)
CONTROL = RunControl(cycles=1_000, warmup_cycles=200)


def make_spec(**overrides) -> PointSpec:
    fields = dict(
        config=CFG,
        arbiter="coa",
        scheme="siabp",
        target_load=0.5,
        seed=7,
        workload=WorkloadSpec.cbr(),
        cycles=1_000,
        warmup_cycles=200,
    )
    fields.update(overrides)
    return PointSpec(**fields)


class TestWorkloadSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            WorkloadSpec("bogus")

    def test_params_are_canonically_sorted(self):
        a = WorkloadSpec("vbr", (("model", "SR"), ("bandwidth_scale", 8.0),
                                 ("frame_time_cycles", 400), ("num_gops", 1)))
        b = WorkloadSpec("vbr", (("num_gops", 1), ("frame_time_cycles", 400),
                                 ("bandwidth_scale", 8.0), ("model", "SR")))
        assert a == b
        assert hash(a) == hash(b)

    def test_dict_round_trip(self):
        spec = WorkloadSpec.vbr(model="BB", frame_time_cycles=400, num_gops=1)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_spec_is_a_builder(self):
        import numpy as np

        from repro.router import MMRouter

        router = MMRouter(CFG)
        wl = WorkloadSpec.cbr()(router, np.random.default_rng(0), 0.4)
        assert len(wl) > 0

    def test_registry_extension(self):
        from repro.traffic.mixes import build_besteffort_workload

        plan_mod.register_workload_kind(
            "besteffort-test",
            lambda router, load, rng: build_besteffort_workload(
                router, load, rng
            ),
        )
        try:
            spec = WorkloadSpec("besteffort-test")
            assert spec.to_dict()["kind"] == "besteffort-test"
        finally:
            del plan_mod._WORKLOAD_KINDS["besteffort-test"]


class TestPointKey:
    def test_stable_across_equal_specs(self):
        assert make_spec().key() == make_spec().key()

    @pytest.mark.parametrize(
        "change",
        [
            {"arbiter": "wfa"},
            {"scheme": "iabp"},
            {"target_load": 0.6},
            {"seed": 8},
            {"cycles": 2_000},
            {"warmup_cycles": 100},
            {"workload": WorkloadSpec.vbr(num_gops=1, frame_time_cycles=400)},
            {"config": CFG.with_overrides(vcs_per_link=16)},
        ],
    )
    def test_any_field_change_changes_key(self, change):
        assert make_spec().key() != make_spec(**change).key()

    def test_code_version_bump_changes_key(self, monkeypatch):
        before = make_spec().key()
        monkeypatch.setattr(plan_mod, "CODE_VERSION", plan_mod.CODE_VERSION + 1)
        assert make_spec().key() != before

    def test_key_is_hex_sha256(self):
        key = make_spec().key()
        assert len(key) == 64
        int(key, 16)

    def test_spec_dict_round_trip(self):
        spec = make_spec(workload=WorkloadSpec.vbr(num_gops=1,
                                                   frame_time_cycles=400))
        clone = PointSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.key() == spec.key()


class TestCampaignPlan:
    def test_grid_order_matches_sweep_semantics(self):
        plan = CampaignPlan.grid(
            "g", CFG, arbiters=("coa", "wfa"), loads=(0.3, 0.5),
            seeds=(1, 2), workload=WorkloadSpec.cbr(), control=CONTROL,
        )
        assert len(plan) == 8
        tuples = [(p.arbiter, p.target_load, p.seed) for p in plan]
        assert tuples[0] == ("coa", 0.3, 1)
        assert tuples[1] == ("coa", 0.3, 2)
        assert tuples[4] == ("wfa", 0.3, 1)
        # Same (load, seed) across arbiters -> same workload inputs.
        assert tuples[0][1:] == tuples[4][1:]

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            CampaignPlan("empty", ())

    def test_plan_points_keys_unique(self):
        plan = CampaignPlan.grid(
            "g", CFG, arbiters=("coa",), loads=(0.3, 0.5), seeds=(1, 2),
            workload=WorkloadSpec.cbr(), control=CONTROL,
        )
        keys = [p.key() for p in plan]
        assert len(set(keys)) == len(keys)
