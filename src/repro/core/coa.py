"""The Candidate-Order Arbiter (COA) — the paper's contribution.

COA computes the crossbar matching from the selection matrix in three
repeated steps (paper §4):

1. **Conflict vector** — count the competing requests per (level, output)
   row.
2. **Port ordering** — pick the next output to serve: lowest candidate
   level first, and within a level the output with the *fewest* conflicts
   first.  Ties are broken randomly.  Rationale: heavily-conflicted
   outputs can wait because they will still have matching opportunities
   after other ports are served, while a lightly-conflicted output may
   lose its only requester to another output's grant.
3. **Arbitration** — among the requests for the selected output, grant the
   one with the highest biased priority; then drop every request involving
   the matched input and output and recompute.

The loop ends when no requests remain, yielding a conflict-free — and, as
the property tests verify, maximal — matching that honours connection
priorities, unlike pure matching-size maximizers such as the Wave Front
Arbiter.

For the ablation benches (DESIGN.md A1) the two decision rules are
pluggable: ``ordering`` picks the port-ordering key and ``arbitration``
the per-output grant rule.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from typing import TYPE_CHECKING

from .matching import Arbiter, Candidate, Grant
from .selection import SelectionMatrix

if TYPE_CHECKING:
    from .candidates import CandidateBuffer

__all__ = ["CandidateOrderArbiter"]

_ORDERINGS = ("level_conflict", "level_only", "conflict_only", "random")
_ARBITRATIONS = ("priority", "random")


class CandidateOrderArbiter(Arbiter):
    """Priority-aware crossbar arbiter driven by the selection matrix."""

    name = "coa"

    def __init__(
        self,
        num_ports: int,
        levels: int,
        ordering: str = "level_conflict",
        arbitration: str = "priority",
    ) -> None:
        if ordering not in _ORDERINGS:
            raise ValueError(f"ordering must be one of {_ORDERINGS}, got {ordering!r}")
        if arbitration not in _ARBITRATIONS:
            raise ValueError(
                f"arbitration must be one of {_ARBITRATIONS}, got {arbitration!r}"
            )
        self.num_ports = num_ports
        self.levels = levels
        self.ordering = ordering
        self.arbitration = arbitration
        if ordering != "level_conflict" or arbitration != "priority":
            self.name = f"coa[{ordering}/{arbitration}]"
        # Persistent row scratch for the per-cycle matching calls: the
        # list objects live for the arbiter's lifetime, only their
        # contents turn over (clearing is cheaper than reallocating).
        self._rows_scratch: list[list[tuple[int | float, int, int]]] = [
            [] for _ in range(levels * num_ports)
        ]
        # With these rules a lone request is granted without consulting
        # rng (_pick_row returns the only live row drawlessly and the
        # single-request arbitration path never draws), so match_buffer
        # may bypass the row machinery for 0/1 candidates.  random
        # ordering and random arbitration draw even from 1-element
        # pools, and level_only draws its tiebreak unconditionally.
        self._single_fast = (
            arbitration == "priority"
            and ordering in ("level_conflict", "conflict_only")
        )

    # ------------------------------------------------------------------

    def match(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Fast pure-Python matching loop.

        Semantically identical to :meth:`match_reference` (the test suite
        checks they agree draw for draw); rebuilt without the numpy
        selection matrix because at router sizes (N=4, C=4) per-call
        numpy overhead dominates the whole simulation.
        """
        n = self.num_ports
        # rows[level * n + out] -> list of (priority, in_port, vc)
        rows = self._rows_scratch
        for row in rows:
            row.clear()
        for port_cands in candidates:
            for cand in port_cands:
                rows[cand.level * n + cand.out_port].append(
                    (cand.priority, cand.in_port, cand.vc)
                )
        return self._match_rows(rows, rng)

    def match_buffer(
        self,
        buf: CandidateBuffer,
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Buffer-native matching; draw-for-draw identical to :meth:`match`.

        Rows are filled in the same (port, level) visiting order as the
        object path, and the folded int64 keys order/compare exactly like
        the object-path priorities (the tier bit at 2**62 dominates any
        key < 2**62, just as the ``<< 200`` tier fold dominates on the
        object path), so every rng draw lands on the same request set.
        """
        n = self.num_ports
        max_level = self.levels
        if buf.sparse_valid:
            sparse = buf.sparse
            if self._single_fast:
                # 0/1-candidate bypass: drawless under these rules (see
                # __init__), so the grant set — and every rng draw — is
                # identical to the general path.
                total = 0
                for cands in sparse:
                    total += min(len(cands), max_level)
                    if total > 1:
                        break
                if total == 0:
                    return []
                if total == 1:
                    for p, cands in enumerate(sparse):
                        if cands:
                            _key, vc, out = cands[0]
                            return [(p, vc, out)]
            rows = self._rows_scratch
            for row in rows:
                row.clear()
            # Python-native rows straight from the sparse fill — no numpy
            # round-trip.  Same (port, level) visiting order and the same
            # folded keys as the array path below.
            for p, cands in enumerate(sparse):
                for level in range(min(len(cands), max_level)):
                    key, vc, out = cands[level]
                    rows[level * n + out].append((key, p, vc))
            return self._match_rows(rows, rng)
        rows = self._rows_scratch
        for row in rows:
            row.clear()
        counts = buf.count.tolist()
        vcs = buf.vc.tolist()
        outs = buf.out_port.tolist()
        keys = (buf.prio_int if buf.integer_keys else buf.prio_float).tolist()
        for p in range(n):
            vp, op, kp = vcs[p], outs[p], keys[p]
            for level in range(min(counts[p], max_level)):
                rows[level * n + op[level]].append((kp[level], p, vp[level]))
        return self._match_rows(rows, rng)

    def _match_rows(
        self,
        rows: list[list[tuple[int | float, int, int]]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Core matching loop over ``rows[level * n + out]`` request lists.

        Conflict counts (live requests per row) are maintained
        incrementally: granting an input decrements every row that input
        requested, instead of rescanning all requests each round.  The
        counts — and therefore every rng draw — are identical to the
        rescanning formulation.
        """
        n = self.num_ports
        in_free = [True] * n
        out_free = [True] * n
        grants: list[Grant] = []
        ordering = self.ordering
        by_priority = self.arbitration == "priority"
        # counts[idx] = requests on row idx whose input is still free.
        counts = [len(row) for row in rows]
        rows_of_input: list[list[int]] = [[] for _ in range(n)]
        active: list[int] = []
        for idx, row in enumerate(rows):
            if row:
                active.append(idx)
                for _prio, in_port, _vc in row:
                    rows_of_input[in_port].append(idx)

        while True:
            # Live rows: requests whose input and output are both free.
            # ``active`` (ascending) bounds the scan to rows that ever
            # held a request — counts only decrease.
            live = [
                (idx, counts[idx])
                for idx in active
                if counts[idx] and out_free[idx % n]
            ]
            if not live:
                break

            row_idx = self._pick_row(live, rng, ordering, n)
            if by_priority and counts[row_idx] == 1:
                # Single live request on the row: it wins outright; the
                # general path below would find one winner and draw no rng
                # either.
                for _prio, in_port, vc in rows[row_idx]:
                    if in_free[in_port]:
                        break
            elif by_priority:
                requests = [
                    (prio, in_port, vc)
                    for prio, in_port, vc in rows[row_idx]
                    if in_free[in_port]
                ]
                best = max(prio for prio, _i, _v in requests)
                winners = [(i, v) for prio, i, v in requests if prio == best]
                if len(winners) == 1:
                    in_port, vc = winners[0]
                else:
                    in_port, vc = winners[int(rng.integers(len(winners)))]
            else:
                requests = [
                    (prio, in_port, vc)
                    for prio, in_port, vc in rows[row_idx]
                    if in_free[in_port]
                ]
                _prio, in_port, vc = requests[int(rng.integers(len(requests)))]
            out_port = row_idx % n
            grants.append((in_port, vc, out_port))
            in_free[in_port] = False
            out_free[out_port] = False
            for idx in rows_of_input[in_port]:
                counts[idx] -= 1
        return grants

    @staticmethod
    def _pick_row(
        live: list[tuple[int, int]],
        rng: np.random.Generator,
        ordering: str,
        n: int,
    ) -> int:
        """Port ordering over the live rows; mirrors `_next_output`.

        ``live`` is ordered by ascending row index (it is built by
        enumerating the rows), so the lowest level present is
        ``live[0][0] // n`` and its rows form a prefix of ``live`` —
        which lets every ordering run as a single early-exiting pass.
        """
        if ordering == "random":
            return live[int(rng.integers(len(live)))][0]
        if len(live) == 1 and ordering != "level_only":
            # One live row: both conflict orderings resolve to it with no
            # draw (level_only still draws even from a 1-element pool).
            return live[0][0]
        if ordering == "conflict_only":
            bound = None
        else:
            bound = (live[0][0] // n + 1) * n
        if ordering == "level_only":
            pool = []
            for idx, _c in live:
                if idx >= bound:
                    break
                pool.append(idx)
            return pool[int(rng.integers(len(pool)))]
        # "level_conflict" (the paper's rule) / "conflict_only": fewest
        # conflicts within the pool, ties broken randomly.
        min_conf = -1
        least: list[int] = []
        for idx, c in live:
            if bound is not None and idx >= bound:
                break
            if min_conf < 0 or c < min_conf:
                min_conf = c
                least = [idx]
            elif c == min_conf:
                least.append(idx)
        if len(least) == 1:
            return least[0]
        return least[int(rng.integers(len(least)))]

    def match_reference(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Reference implementation over the explicit selection matrix.

        Follows the paper's description literally (build matrix, compute
        conflict vector, order, arbitrate, drop, recompute); used by the
        equivalence tests and the Fig. 3 demo.
        """
        matrix = SelectionMatrix.from_candidates(
            candidates, self.num_ports, self.levels
        )
        grants: list[Grant] = []
        while matrix.has_requests():
            level, out_port = self._next_output(matrix, rng)
            in_port, vc = self._grant(matrix, level, out_port, rng)
            grants.append((in_port, vc, out_port))
            matrix.drop_input(in_port)
            matrix.drop_output(out_port)
        return grants

    # ------------------------------------------------------------------

    def _next_output(
        self, matrix: SelectionMatrix, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Port ordering: choose the next (level, output) row to serve."""
        conflicts = matrix.conflict_vector()
        active = np.flatnonzero(conflicts > 0)
        n = self.num_ports
        if self.ordering == "random":
            row = int(active[int(rng.integers(active.size))])
            return row // n, row % n

        levels = active // n
        if self.ordering == "level_only":
            # Lowest level; random among that level's active outputs.
            lowest = active[levels == levels.min()]
            row = int(lowest[int(rng.integers(lowest.size))])
            return row // n, row % n

        if self.ordering == "conflict_only":
            pool = active
        else:  # "level_conflict" — the paper's rule
            pool = active[levels == levels.min()]

        # Fewest conflicts first; random tie-break.
        pool_conflicts = conflicts[pool]
        least = pool[pool_conflicts == pool_conflicts.min()]
        row = int(least[0]) if least.size == 1 else int(least[int(rng.integers(least.size))])
        return row // n, row % n

    def _grant(
        self,
        matrix: SelectionMatrix,
        level: int,
        out_port: int,
        rng: np.random.Generator,
    ) -> tuple[int, int]:
        """Arbitration: choose which request on the selected row wins."""
        requests = matrix.row_requests(level, out_port)
        if not requests:  # pragma: no cover - guarded by conflict_vector
            raise RuntimeError("port ordering selected an empty row")
        if self.arbitration == "random":
            in_port, vc, _ = requests[int(rng.integers(len(requests)))]
            return in_port, vc
        best_prio = max(prio for _i, _v, prio in requests)
        winners = [(i, v) for i, v, prio in requests if prio == best_prio]
        if len(winners) == 1:
            return winners[0]
        return winners[int(rng.integers(len(winners)))]
