"""Sharded shared-nothing fabric execution (hundred-router scale runs).

Partitions a fabric topology into per-worker router groups, runs each
group in its own replica (process or in-line), and exchanges boundary
flits/credits at cycle barriers — with the repo's signature guarantee
that the merged run is byte-identical to the serial single-process
reference.  See :mod:`repro.shard.coordinator` for the protocol and the
determinism argument.
"""

from .coordinator import (
    IdentityReport,
    ShardError,
    ShardWorkerError,
    ShardedFabricSim,
    check_identity,
    execute_shard_point,
)
from .partition import boundary_links, partition_routers, partition_summary
from .spec import PARTITIONERS, ShardSpec

__all__ = [
    "PARTITIONERS",
    "IdentityReport",
    "ShardError",
    "ShardSpec",
    "ShardWorkerError",
    "ShardedFabricSim",
    "boundary_links",
    "check_identity",
    "execute_shard_point",
    "partition_routers",
    "partition_summary",
]
