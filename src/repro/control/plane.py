"""The closed control loop: estimators → adaptive CAC → degradation.

One :class:`ControlPlane` instance lives on a control-enabled
:class:`~repro.sessions.signaling.SessionEngine` and closes the loop the
ROADMAP asked for::

    obs estimators ──► HysteresisBand ──► AdaptiveCacPolicy (brake)
      (violations,           │
       occupancy)            └──────────► RecoveryController
                                            (shed floor / un-shed)

* The engine feeds every measured deadline violation into the
  :class:`~repro.control.estimators.ViolationRateEstimator` (via
  :class:`ControlFeedback`, a drop-in
  :class:`~repro.sessions.policies.QosFeedback`); every
  ``estimator_stride`` cycles the plane folds the count, samples NIC
  queue occupancy, and updates the hysteresis band.
* :class:`AdaptiveCacPolicy` (registered as ``"adaptive"``) tightens
  admission to ``brake_cap`` reserved average load while the band is in
  the overload state, and defers to the paper CAC otherwise.  Like every
  policy it is a pre-admission *filter* — the paper feasibility test
  still runs inside ``MMRouter.establish``, so the reservation
  invariants hold no matter what the estimators say.
* :class:`RecoveryController` plugs into
  :class:`~repro.faults.degradation.DegradationPolicy`: the overload
  state imposes a best-effort shed floor, and un-shedding (restore VBR
  peaks, then re-admit best-effort — the reverse of the shed order) is
  allowed only after the violation estimate has stayed below the
  low-water mark for the hold time, with consecutive transitions spaced
  at least one hold apart.  That spacing is the no-oscillation guarantee
  the recovery tests pin.

Importing this module registers the ``"adaptive"`` policy; the engine
imports it lazily whenever a spec enables control (or names the
policy), so plain session runs never pay for it.
"""

from __future__ import annotations

from typing import Any

from ..obs.qos import deadline_slack
from ..router.admission import AdmissionController, AdmissionDecision
from ..router.config import RouterConfig
from ..router.connection import TrafficClass
from ..sessions.policies import CacPolicy, CacRequest, QosFeedback, register_policy
from .config import ControlConfig
from .estimators import Ewma, HysteresisBand, ViolationRateEstimator

__all__ = [
    "CONTROL_SCHEMA",
    "ControlFeedback",
    "AdaptiveCacPolicy",
    "RecoveryController",
    "ControlPlane",
]

#: Stable payload schema tag (campaign ``control`` side-channel).
CONTROL_SCHEMA = "repro-control-v1"


class ControlFeedback(QosFeedback):
    """QosFeedback that also feeds the plane's violation estimator.

    Policies keep seeing the familiar sliding-window interface (so
    ``measurement`` works unchanged under control), and the adaptive
    policy additionally reads :attr:`band`.
    """

    def __init__(self, plane: "ControlPlane") -> None:
        super().__init__()
        self.band = plane.band
        self._plane = plane

    def note(self, cycle: int) -> None:
        super().note(cycle)
        self._plane.violation_rate.note()


class AdaptiveCacPolicy(CacPolicy):
    """Paper CAC normally; a tightened utilization brake under overload.

    Without a control plane (no ``band`` on the feedback object) the
    policy is exactly the paper CAC, so ``"adaptive"`` degrades safely
    in plain session runs.
    """

    name = "adaptive"

    def __init__(self, brake_cap: float = 0.7) -> None:
        if not (0.0 < brake_cap <= 1.0):
            raise ValueError("brake_cap must be in (0, 1]")
        self.brake_cap = brake_cap

    def decide(
        self,
        request: CacRequest,
        admission: AdmissionController,
        feedback: QosFeedback,
        now: int,
    ) -> AdmissionDecision:
        if request.traffic_class is TrafficClass.BEST_EFFORT:
            return AdmissionDecision(True, "best-effort reserves nothing")
        band = getattr(feedback, "band", None)
        if band is None or band.state != "high":
            return AdmissionDecision(True, "pressure below high-water mark")
        round_cycles = admission.config.round_cycles
        add = request.avg_slots / round_cycles
        in_frac = admission.reserved_avg_load(request.in_port) + add
        out_frac = admission.reserved_avg_load_out(request.out_port) + add
        if in_frac > self.brake_cap or out_frac > self.brake_cap:
            return AdmissionDecision(
                False,
                f"overload brake {self.brake_cap:g}: admission would "
                f"reserve in={in_frac:.3f} out={out_frac:.3f}",
            )
        return AdmissionDecision(True, "under overload brake cap")


class RecoveryController:
    """Pressure-driven escalation floor and un-shed clearance.

    :class:`~repro.faults.degradation.DegradationPolicy` consults this
    (when attached) instead of its fixed quiet-period rule: the overload
    state keeps best-effort shed, and each downward step additionally
    requires the band to have stayed below low-water for the hold time
    and the previous transition to be at least one hold in the past.
    """

    def __init__(self, band: HysteresisBand, hold_cycles: int) -> None:
        self.band = band
        self.hold_cycles = hold_cycles

    def escalation_floor(self, now: int) -> int:
        """Minimum degradation level while overload pressure persists."""
        from ..faults.degradation import LEVEL_NORMAL, LEVEL_SHED_BEST_EFFORT

        if self.band.state == "high":
            return LEVEL_SHED_BEST_EFFORT
        return LEVEL_NORMAL

    def may_recover(self, now: int, last_change: int) -> bool:
        """True when one un-shed step is allowed at ``now``."""
        return (
            self.band.state != "high"
            and self.band.cleared_for(now) >= self.hold_cycles
            and now - last_change >= self.hold_cycles
        )


class ControlPlane:
    """Per-run control-loop state: estimators, band, recovery, series."""

    def __init__(self, config: RouterConfig, cfg: ControlConfig) -> None:
        self.config = config
        self.cfg = cfg
        self.violation_rate = ViolationRateEstimator(
            cfg.violation_alpha, cfg.estimator_stride
        )
        self.occupancy = Ewma(cfg.occupancy_alpha)
        self.band = HysteresisBand(cfg.low_water, cfg.high_water, cfg.hold_cycles)
        self.recovery = RecoveryController(self.band, cfg.hold_cycles)
        #: (cycle, violation rate, occupancy EWMA, band state) samples,
        #: one per estimator step.
        self.pressure_series: list[tuple[int, float, float, str]] = []

    def step(self, now: int, router) -> None:
        """One estimator update (called every ``estimator_stride`` cycles)."""
        rate = self.violation_rate.step()
        nics = router.nics
        occ = self.occupancy.update(
            sum(nic.backlog() for nic in nics) / len(nics)
        )
        state = self.band.observe(now, rate)
        self.pressure_series.append((now, rate, occ, state))

    def to_payload(self) -> dict[str, Any]:
        """Strict-JSON payload for the campaign ``control`` channel."""
        return {
            "schema": CONTROL_SCHEMA,
            "config": self.cfg.to_dict(),
            "deadline_slack_cycles": deadline_slack(self.config),
            "violation_rate_per_kcycle": self.violation_rate.value,
            "occupancy_ewma": self.occupancy.value,
            "band": self.band.to_payload(),
            "pressure_series": [
                [cycle, rate, occ, state]
                for cycle, rate, occ, state in self.pressure_series
            ],
        }


register_policy("adaptive", AdaptiveCacPolicy)
