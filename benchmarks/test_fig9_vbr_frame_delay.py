"""F9 — Fig. 9: average frame delay since generation vs load, VBR.

The paper's Fig. 9 plots average MPEG-2 frame delay (the delay of the
last flit of each frame, measured since generation) on a log scale, for
the SR and BB injection models.  Its reading (§5.2): with COA frame
delays stay low up to ~78% generated load and the knee falls around
80-85%; with WFA the knee falls around 70-75% — "a great degradation".
BB delays exceed SR delays before saturation (bursts queue at the NIC),
but the saturation load itself is model-independent.

Shape claims asserted:
  * COA's delay knee falls at a strictly higher load than WFA's, with
    WFA's by ~75% and COA's at >=78%;
  * before WFA's knee the two arbiters are comparable (within ~4x);
  * BB frame delay exceeds SR frame delay at every pre-saturation load.
"""

import pytest

from conftest import vbr_result
from repro.analysis import knee_by_delay, render_series, render_xy_plot, sparkline


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("model", ["SR", "BB"])
def test_fig9_vbr_frame_delay(benchmark, model):
    result = benchmark.pedantic(
        lambda: vbr_result(model), rounds=1, iterations=1
    )
    arbiters = ("coa", "wfa")
    series = {a: result.frame_delay_series(a) for a in arbiters}
    print()
    print(render_series(
        "load %", series,
        title=f"Fig. 9 ({model} injection model) — avg frame delay (us, "
              "log-scale plot in the paper)",
    ))
    for a in arbiters:
        print(f"  {a}: {sparkline([v for _l, v in series[a]], log=True)}")
    print(render_xy_plot(
        series, log_y=True,
        title=f"Fig. 9 ({model}) as a plot",
        x_label="generated load %", y_label="frame delay us",
    ))

    # Fig. 9 is log-scale: the knee is an orders-of-magnitude jump.
    # (COA shows a modest pre-saturation rise around 70% — the paper
    # notes the same 'important increase ... although saturation has
    # not been still reached' — so the detector keys on a 100x blowup.)
    knees = {a: knee_by_delay(series[a], blowup=100.0) for a in arbiters}
    print(f"Frame-delay knee: COA {knees['coa']:.3g}%  WFA {knees['wfa']:.3g}% "
          f"(paper: ~80% vs ~70%)")
    assert knees["wfa"] <= 76.0, "WFA frame delay must blow up by ~75%"
    assert knees["coa"] >= 78.0, "COA must keep frame delays low to ~78%"
    assert knees["coa"] > knees["wfa"]


@pytest.mark.benchmark(group="fig9")
def test_fig9_bb_delay_exceeds_sr(benchmark):
    sr, bb = benchmark.pedantic(
        lambda: (vbr_result("SR"), vbr_result("BB")), rounds=1, iterations=1
    )
    print()
    rows = []
    for (load, d_sr), (_l, d_bb) in zip(
        sr.frame_delay_series("coa"), bb.frame_delay_series("coa")
    ):
        rows.append((load, d_sr, d_bb))
        if load <= 70.0:  # pre-saturation band
            assert d_bb > d_sr, f"BB must exceed SR at {load:.0f}%"
    print("COA frame delay, SR vs BB (us):")
    for load, d_sr, d_bb in rows:
        print(f"  {load:5.1f}%  SR {d_sr:10.1f}  BB {d_bb:10.1f}")
