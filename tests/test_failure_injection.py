"""Failure injection: broken components must be detected loudly.

The MMR is loss-free by design; the simulator enforces that with
invariant checks instead of silently dropping flits.  These tests inject
faulty behaviour (a buggy arbiter, flow-control violations) and assert
the substrate refuses to proceed rather than corrupting results.
"""

import numpy as np
import pytest

from repro.core.matching import Arbiter, Candidate, Grant
from repro.router import MMRouter, RouterConfig, TrafficClass


class DoubleGrantArbiter(Arbiter):
    """Grants the same output twice whenever two inputs request it."""

    name = "broken-double-grant"

    def match(self, candidates, rng):
        grants: list[Grant] = []
        for port_cands in candidates:
            if port_cands:
                c = port_cands[0]
                grants.append((c.in_port, c.vc, c.out_port))
        return grants  # may conflict on outputs


class PhantomGrantArbiter(Arbiter):
    """Grants a (port, vc) pair that has no buffered flit."""

    name = "broken-phantom"

    def match(self, candidates, rng):
        return [(0, 0, 0)]


def make_router(arbiter) -> MMRouter:
    cfg = RouterConfig(num_ports=2, vcs_per_link=4, vc_buffer_depth=2,
                       candidate_levels=2, flit_cycles_per_round=400)
    return MMRouter(cfg, arbiter=arbiter)


class TestBrokenArbiters:
    def test_conflicting_matching_detected_by_crossbar(self):
        router = make_router(DoubleGrantArbiter())
        rng = np.random.default_rng(0)
        for port in (0, 1):
            conn = router.establish(port, 0, TrafficClass.CBR, 10).connection
            router.nics[port].inject(conn.vc, gen_cycle=0)
        router.step(0, rng)  # flits enter the router buffers
        with pytest.raises(ValueError, match="matched twice"):
            router.step(1, rng)

    def test_phantom_grant_detected(self):
        router = make_router(PhantomGrantArbiter())
        rng = np.random.default_rng(0)
        with pytest.raises(IndexError):
            router.step(0, rng)


class TestFlowControlViolations:
    def test_push_past_buffer_depth_is_an_error(self):
        router = make_router("coa")
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        for _ in range(router.config.vc_buffer_depth):
            router.vc_memory.push(0, conn.vc, 0, -1, False, 0)
        with pytest.raises(OverflowError, match="flow control"):
            router.vc_memory.push(0, conn.vc, 0, -1, False, 0)

    def test_forwarding_without_credit_is_an_error(self):
        router = make_router("coa")
        for _ in range(router.config.vc_buffer_depth):
            router.credits.consume(0, 0)
        with pytest.raises(RuntimeError, match="underflow"):
            router.credits.consume(0, 0)

    def test_invariant_check_catches_leaked_flit(self):
        router = make_router("coa")
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        router.nics[0].inject(conn.vc, gen_cycle=0)
        rng = np.random.default_rng(0)
        router.step(0, rng)
        # Sabotage: remove a buffered flit without returning its credit.
        router.vc_memory.pop(0, conn.vc)
        with pytest.raises(AssertionError, match="invariant"):
            router.check_flow_control_invariant()
