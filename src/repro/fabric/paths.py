"""Path enumeration and pluggable alternate-path selection policies.

The fabric admits a session hop-by-hop along one candidate path at a
time; which path it tries first — and in what order it falls back — is
the *path policy*.  Three are provided (the WRR-over-ECMP fat-tree
balancer family):

* ``first-fit`` — always try candidates in enumeration order (shortest,
  lowest router ids first).  The degenerate baseline: every session
  between the same endpoints piles onto the same links.
* ``ecmp`` — deterministic hash spreading: the session id and endpoints
  hash (SHA-256, not Python's salted ``hash``) to a starting offset into
  the candidate list; fallbacks wrap around.  Stateless and replayable.
* ``wrr`` — smoothed weighted round-robin, weighted by each candidate
  path's *residual bottleneck reservation* (``1 - max`` reserved output
  link fraction along the path, read live from the per-router admission
  ledgers).  Fallbacks are ordered by descending residual capacity.

:class:`PathProvider` memoises the K-shortest candidate enumeration per
endpoint pair (networkx ``shortest_simple_paths``, re-sorted for
determinism), mirroring the path cache the exemplar controller keeps per
switch pair.
"""

from __future__ import annotations

import hashlib
from itertools import islice

import networkx as nx

from ..network.multirouter import MultiRouterNetwork
from ..network.topology import Topology

__all__ = [
    "PATH_POLICIES",
    "PathProvider",
    "make_path_policy",
    "residual_bottleneck",
    "stable_hash",
]

#: Valid path-policy names, in documentation order.
PATH_POLICIES = ("first-fit", "ecmp", "wrr")


def stable_hash(*values: int) -> int:
    """Deterministic non-negative hash of a few integers.

    Python's ``hash`` is salted per process; campaign workers must pick
    the same path for the same session in every process.
    """
    digest = hashlib.sha256(",".join(map(str, values)).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class PathProvider:
    """Memoised K-shortest path enumeration over a topology."""

    def __init__(self, topology: Topology, k_paths: int = 4) -> None:
        if k_paths < 1:
            raise ValueError("k_paths must be >= 1")
        self.topology = topology
        self.k_paths = k_paths
        self._graph = topology.graph()
        self._cache: dict[tuple[int, int], tuple[tuple[int, ...], ...]] = {}

    def paths(self, src: int, dst: int) -> tuple[tuple[int, ...], ...]:
        """Up to ``k_paths`` loop-free paths, shortest and id-ordered first.

        Deterministic: the candidate set is re-sorted by (length, router
        ids), so two processes enumerating the same topology agree on
        both membership and order.
        """
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is None:
            gen = nx.shortest_simple_paths(self._graph, src, dst)
            found = [tuple(p) for p in islice(gen, self.k_paths)]
            cached = tuple(sorted(found, key=lambda p: (len(p), p)))
            self._cache[key] = cached
        return cached


def residual_bottleneck(net: MultiRouterNetwork, path: tuple[int, ...]) -> float:
    """Residual capacity of a path's most-reserved output link, in [0, 1].

    Reads the live admission ledgers: for each traversed link, the
    reserved average-bandwidth fraction of the upstream router's output
    port; the path's weight is one minus the worst of them.
    """
    worst = 0.0
    for u, v in zip(path, path[1:]):
        port = net.topology.port_toward(u, v)
        load = net.routers[u].admission.reserved_avg_load_out(port)
        if load > worst:
            worst = load
    return max(0.0, 1.0 - worst)


class FirstFitPolicy:
    """Try candidates in enumeration order."""

    name = "first-fit"

    def order(
        self,
        paths: tuple[tuple[int, ...], ...],
        sid: int,
        net: MultiRouterNetwork,
    ) -> list[int]:
        return list(range(len(paths)))


class EcmpHashPolicy:
    """Deterministic hash over (sid, src, dst) picks the starting path."""

    name = "ecmp"

    def order(
        self,
        paths: tuple[tuple[int, ...], ...],
        sid: int,
        net: MultiRouterNetwork,
    ) -> list[int]:
        n = len(paths)
        start = stable_hash(sid, paths[0][0], paths[0][-1]) % n
        return [(start + i) % n for i in range(n)]


class WrrResidualPolicy:
    """Smoothed WRR weighted by residual bottleneck reservation.

    Classic smoothed weighted round-robin (current weight += weight;
    pick the max; subtract the total), with per-endpoint-pair state so
    consecutive sessions between the same routers interleave across
    paths proportionally to their live residual capacity.  Fallback
    order after the WRR pick is by descending residual weight.
    """

    name = "wrr"

    def __init__(self) -> None:
        self._current: dict[tuple[int, int], list[float]] = {}

    def order(
        self,
        paths: tuple[tuple[int, ...], ...],
        sid: int,
        net: MultiRouterNetwork,
    ) -> list[int]:
        n = len(paths)
        weights = [residual_bottleneck(net, p) for p in paths]
        total = sum(weights)
        if total <= 0.0:  # fully reserved everywhere: fall back to RR
            weights = [1.0] * n
            total = float(n)
        key = (paths[0][0], paths[0][-1])
        current = self._current.setdefault(key, [0.0] * n)
        for i in range(n):
            current[i] += weights[i]
        primary = max(range(n), key=lambda i: (current[i], -i))
        current[primary] -= total
        rest = sorted(
            (i for i in range(n) if i != primary),
            key=lambda i: (-weights[i], i),
        )
        return [primary, *rest]


_POLICIES = {
    "first-fit": FirstFitPolicy,
    "ecmp": EcmpHashPolicy,
    "wrr": WrrResidualPolicy,
}
assert tuple(_POLICIES) == PATH_POLICIES


def make_path_policy(name: str):
    """Instantiate a path policy by name; unknown names fail loudly."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown path policy {name!r}; known: {', '.join(PATH_POLICIES)}"
        ) from None
    return cls()
