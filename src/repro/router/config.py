"""Router configuration for the Multimedia Router (MMR).

The MMR evaluated in the paper is a compact single-chip router with a
multiplexed crossbar: one crossbar port per *physical* link, many virtual
channels (one per connection) multiplexed onto each physical link.  All
architectural parameters used by the simulator live in
:class:`RouterConfig`, together with the derived time constants that turn
flit cycles into wall-clock time.

Reconstructed defaults (the OCR of the paper garbles several numerals; see
DESIGN.md §2) follow the companion MMR papers:

* 4x4 router (``num_ports = 4``),
* 1024-bit flits over 1.24 Gbps, 16-bit-wide links (so a flit cycle is
  ``1024 / 1.24e9 ~= 826 ns`` and a flit is 64 phits),
* four candidate levels in the link/switch scheduler (stated intact in the
  paper text),
* small per-virtual-channel buffers inside the router (credit-based flow
  control keeps them from overflowing),
* rounds (frames of flit cycles) sized as an integer multiple of the
  number of virtual channels per link.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

__all__ = ["RouterConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class RouterConfig:
    """Static architectural parameters of one MMR router.

    Instances are immutable; use :meth:`with_overrides` to derive variants
    for parameter sweeps.
    """

    #: Number of physical input links == number of physical output links
    #: (the crossbar is square).
    num_ports: int = 4

    #: Virtual channels per physical link.  The MMR dedicates one VC to
    #: each connection, so this bounds the number of concurrently admitted
    #: connections per input link.
    vcs_per_link: int = 64

    #: Candidate levels used by the link scheduler: per input link, the
    #: ``candidate_levels`` highest-priority head flits are forwarded to
    #: the switch scheduler.  The paper uses four levels.
    candidate_levels: int = 4

    #: Flit size in bits.  Large flits amortize arbitration and crossbar
    #: reconfiguration; the MMR uses 1024-bit flits.
    flit_size_bits: int = 1024

    #: Physical link width in bits (one phit per link cycle).
    phit_size_bits: int = 16

    #: Physical link rate in bits per second.
    link_rate_bps: float = 1.24e9

    #: Router VC buffer depth, in flits, per virtual channel.  The paper
    #: limits the MMR buffers to "a few flits per virtual channel".
    vc_buffer_depth: int = 4

    #: Flit cycles per round (bandwidth-accounting frame).  Must be a
    #: positive integer multiple of ``vcs_per_link``.  Admission control
    #: and the SIABP priority seed are expressed in reserved flit-cycle
    #: slots per round.  ``0`` means "auto": pick the smallest multiple of
    #: ``vcs_per_link`` that gives the lowest-bandwidth paper class
    #: (64 Kbps) at least one slot per round.
    flit_cycles_per_round: int = 0

    #: VBR admission concurrency factor: the sum of *peak* bandwidths of
    #: admitted VBR connections may exceed a round by this factor.
    concurrency_factor: float = 4.0

    #: Delay, in flit cycles, for a credit to travel back from the router
    #: to the NIC.  Links are short in the MMR, and a credit is a single
    #: phit, so the default is one flit cycle.
    credit_return_delay: int = 1

    def __post_init__(self) -> None:
        if self.num_ports <= 0:
            raise ValueError(f"num_ports must be positive, got {self.num_ports}")
        if self.vcs_per_link <= 0:
            raise ValueError(f"vcs_per_link must be positive, got {self.vcs_per_link}")
        if not (0 < self.candidate_levels):
            raise ValueError(
                f"candidate_levels must be positive, got {self.candidate_levels}"
            )
        if self.candidate_levels > self.vcs_per_link:
            raise ValueError(
                "candidate_levels cannot exceed vcs_per_link "
                f"({self.candidate_levels} > {self.vcs_per_link})"
            )
        if self.flit_size_bits <= 0 or self.phit_size_bits <= 0:
            raise ValueError("flit and phit sizes must be positive")
        if self.flit_size_bits % self.phit_size_bits != 0:
            raise ValueError(
                "flit_size_bits must be a multiple of phit_size_bits "
                f"({self.flit_size_bits} % {self.phit_size_bits} != 0)"
            )
        if self.link_rate_bps <= 0:
            raise ValueError("link_rate_bps must be positive")
        if self.vc_buffer_depth <= 0:
            raise ValueError("vc_buffer_depth must be positive")
        if self.flit_cycles_per_round < 0:
            raise ValueError("flit_cycles_per_round must be >= 0 (0 = auto)")
        if self.flit_cycles_per_round and (
            self.flit_cycles_per_round % self.vcs_per_link != 0
        ):
            raise ValueError(
                "flit_cycles_per_round must be an integer multiple of "
                f"vcs_per_link ({self.flit_cycles_per_round} % "
                f"{self.vcs_per_link} != 0)"
            )
        if self.concurrency_factor < 1.0:
            raise ValueError("concurrency_factor must be >= 1.0")
        if self.credit_return_delay < 0:
            raise ValueError("credit_return_delay must be >= 0")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def phits_per_flit(self) -> int:
        """Number of phits needed to transfer one flit."""
        return self.flit_size_bits // self.phit_size_bits

    @property
    def flit_cycle_seconds(self) -> float:
        """Duration of one flit cycle: time to push one flit onto a link."""
        return self.flit_size_bits / self.link_rate_bps

    @property
    def flit_cycle_us(self) -> float:
        """Duration of one flit cycle in microseconds."""
        return self.flit_cycle_seconds * 1e6

    @property
    def round_cycles(self) -> int:
        """Flit cycles per round, resolving the ``0 = auto`` setting.

        The auto rule sizes the round so the lowest-bandwidth paper class
        (64 Kbps) reserves at least one whole flit-cycle slot per round.
        """
        if self.flit_cycles_per_round:
            return self.flit_cycles_per_round
        min_rate = 64e3  # lowest CBR class in the paper
        # slots(r) = rate / link_rate * round  >= 1
        needed = self.link_rate_bps / min_rate
        multiple = max(1, math.ceil(needed / self.vcs_per_link))
        return multiple * self.vcs_per_link

    @property
    def round_seconds(self) -> float:
        """Duration of one round in seconds."""
        return self.round_cycles * self.flit_cycle_seconds

    def cycles_to_us(self, cycles: float) -> float:
        """Convert a duration in flit cycles to microseconds."""
        return cycles * self.flit_cycle_us

    def us_to_cycles(self, us: float) -> float:
        """Convert a duration in microseconds to (fractional) flit cycles."""
        return us / self.flit_cycle_us

    def rate_to_slots(self, rate_bps: float) -> int:
        """Reserved flit-cycle slots per round for a given bit rate.

        This is the integer magnitude SIABP seeds the priority register
        with, and the quantity admission control sums per link.  Rates too
        small for a whole slot round up to one slot (a connection cannot
        reserve less than one flit per round).
        """
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        exact = rate_bps / self.link_rate_bps * self.round_cycles
        return max(1, round(exact))

    def slots_to_rate(self, slots: int) -> float:
        """Inverse of :meth:`rate_to_slots` (bits per second)."""
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        return slots / self.round_cycles * self.link_rate_bps

    def rate_to_load(self, rate_bps: float) -> float:
        """Fraction of one link's bandwidth consumed by a bit rate."""
        return rate_bps / self.link_rate_bps

    def with_overrides(self, **kwargs: Any) -> "RouterConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: The paper's reconstructed baseline configuration.
DEFAULT_CONFIG = RouterConfig()
