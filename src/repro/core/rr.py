"""Simple sanity-baseline matchers.

Neither appears in the paper's evaluation; they bracket the design space
for the ablation benches:

* :class:`GreedyPriorityMatcher` — sort *all* candidates by priority and
  grant greedily.  Priority-aware like COA but without the candidate-order
  port ordering; isolates how much the conflict-aware ordering buys.
* :class:`RandomMatcher` — repeatedly grant a uniformly random remaining
  request.  Maximal but blind to both priority and conflict structure;
  the floor any reasonable arbiter must beat.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .matching import Arbiter, Candidate, Grant

__all__ = ["GreedyPriorityMatcher", "RandomMatcher"]


class GreedyPriorityMatcher(Arbiter):
    """Globally greedy by priority; ties broken by (level, input)."""

    name = "greedy"

    def match(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        flat = [c for port_cands in candidates for c in port_cands]
        flat.sort(key=lambda c: (-c.priority, c.level, c.in_port))
        ins: set[int] = set()
        outs: set[int] = set()
        grants: list[Grant] = []
        for cand in flat:
            if cand.in_port in ins or cand.out_port in outs:
                continue
            ins.add(cand.in_port)
            outs.add(cand.out_port)
            grants.append((cand.in_port, cand.vc, cand.out_port))
        return grants


class RandomMatcher(Arbiter):
    """Uniformly random maximal matching over the candidates."""

    name = "random"

    def match(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        remaining = [c for port_cands in candidates for c in port_cands]
        ins: set[int] = set()
        outs: set[int] = set()
        grants: list[Grant] = []
        while remaining:
            idx = int(rng.integers(len(remaining)))
            cand = remaining.pop(idx)
            if cand.in_port in ins or cand.out_port in outs:
                continue
            ins.add(cand.in_port)
            outs.add(cand.out_port)
            grants.append((cand.in_port, cand.vc, cand.out_port))
            remaining = [
                c
                for c in remaining
                if c.in_port not in ins and c.out_port not in outs
            ]
        return grants
