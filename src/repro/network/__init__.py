"""Multi-router MMR networks (paper §6 future-work extension)."""

from .experiments import (
    NetworkRunResult,
    network_load_experiment,
    run_network_load,
)
from .multirouter import MultiRouterNetwork, NetworkConnection
from .topology import Topology, from_edges, mesh, ring

__all__ = [
    "NetworkRunResult",
    "network_load_experiment",
    "run_network_load",
    "MultiRouterNetwork",
    "NetworkConnection",
    "Topology",
    "from_edges",
    "mesh",
    "ring",
]
