"""Tests for the experiment harness (repro.sim.experiments) at tiny scale."""

import pytest

from repro.sim.experiments import (
    cbr_delay_experiment,
    default_config,
    get_scale,
    vbr_experiment,
)


class TestCBRExperiment:
    def test_structure_and_series(self):
        result = cbr_delay_experiment(
            arbiters=("coa",), loads=(0.3, 0.5), scale="tiny", seed=11,
            config=default_config(vcs_per_link=32),
        )
        assert set(result.sweeps) == {"coa"}
        sweep = result.sweeps["coa"]
        assert len(sweep.points) == 2
        series = result.class_series("coa", "high")
        assert len(series) == 2
        loads = [x for x, _ in series]
        assert loads == sorted(loads)
        # Below saturation nothing saturates.
        assert result.saturation_load("coa") == float("inf")

    def test_same_seed_same_workloads_across_arbiters(self):
        result = cbr_delay_experiment(
            arbiters=("coa", "wfa"), loads=(0.4,), scale="tiny", seed=12,
            config=default_config(vcs_per_link=32),
        )
        coa_point = result.sweeps["coa"].points[0]
        wfa_point = result.sweeps["wfa"].points[0]
        assert coa_point.offered_load == wfa_point.offered_load
        assert coa_point.result.connections == wfa_point.result.connections


class TestVBRExperiment:
    def test_structure_and_series(self):
        result = vbr_experiment(
            model="SR", arbiters=("coa",), loads=(0.4,), scale="tiny",
            seed=13, config=default_config(vcs_per_link=32),
        )
        assert result.model == "SR"
        util = result.utilization_series("coa")
        delay = result.frame_delay_series("coa")
        jitter = result.jitter_series("coa")
        assert len(util) == len(delay) == len(jitter) == 1
        load_pct, util_pct = util[0]
        # Utilization tracks load below saturation (percent units).
        assert util_pct == pytest.approx(load_pct, rel=0.15)
        assert delay[0][1] > 0

    def test_bb_model_runs(self):
        result = vbr_experiment(
            model="BB", arbiters=("coa",), loads=(0.4,), scale="tiny",
            seed=14, config=default_config(vcs_per_link=32),
        )
        assert result.frame_delay_series("coa")[0][1] > 0

    def test_scale_cycles_derived(self):
        tiny = get_scale("tiny")
        result = vbr_experiment(
            model="SR", arbiters=("coa",), loads=(0.3,), scale=tiny,
            seed=15, config=default_config(vcs_per_link=32),
        )
        point = result.sweeps["coa"].points[0]
        assert point.result.cycles == tiny.vbr_cycles
