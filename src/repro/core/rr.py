"""Simple sanity-baseline matchers.

Neither appears in the paper's evaluation; they bracket the design space
for the ablation benches:

* :class:`GreedyPriorityMatcher` — sort *all* candidates by priority and
  grant greedily.  Priority-aware like COA but without the candidate-order
  port ordering; isolates how much the conflict-aware ordering buys.
* :class:`RandomMatcher` — repeatedly grant a uniformly random remaining
  request.  Maximal but blind to both priority and conflict structure;
  the floor any reasonable arbiter must beat.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .matching import Arbiter, Candidate, Grant

if TYPE_CHECKING:
    from .candidates import CandidateBuffer

__all__ = ["GreedyPriorityMatcher", "RandomMatcher"]


def _flat_buffer_entries(
    buf: CandidateBuffer,
) -> list[tuple[int | float, int, int, int, int]]:
    """Buffer entries as ``(key, level, in_port, vc, out_port)`` tuples.

    Port-major, level-minor — the same visiting order as flattening the
    object path's ``list[list[Candidate]]``, with the folded sort key in
    place of the object priority (same order, same ties; see
    :mod:`repro.core.candidates`).
    """
    counts = buf.count.tolist()
    vcs = buf.vc.tolist()
    outs = buf.out_port.tolist()
    keys = (buf.prio_int if buf.integer_keys else buf.prio_float).tolist()
    flat: list[tuple[int | float, int, int, int, int]] = []
    for p in range(buf.num_ports):
        kp, vp, op = keys[p], vcs[p], outs[p]
        for level in range(counts[p]):
            flat.append((kp[level], level, p, vp[level], op[level]))
    return flat


class GreedyPriorityMatcher(Arbiter):
    """Globally greedy by priority; ties broken by (level, input)."""

    name = "greedy"

    def match(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        flat = [c for port_cands in candidates for c in port_cands]
        flat.sort(key=lambda c: (-c.priority, c.level, c.in_port))
        ins: set[int] = set()
        outs: set[int] = set()
        grants: list[Grant] = []
        for cand in flat:
            if cand.in_port in ins or cand.out_port in outs:
                continue
            ins.add(cand.in_port)
            outs.add(cand.out_port)
            grants.append((cand.in_port, cand.vc, cand.out_port))
        return grants

    def match_buffer(
        self,
        buf: CandidateBuffer,
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Buffer-native greedy matching; same grant order as `match`."""
        flat = _flat_buffer_entries(buf)
        flat.sort(key=lambda t: (-t[0], t[1], t[2]))
        ins: set[int] = set()
        outs: set[int] = set()
        grants: list[Grant] = []
        for _key, _level, in_port, vc, out_port in flat:
            if in_port in ins or out_port in outs:
                continue
            ins.add(in_port)
            outs.add(out_port)
            grants.append((in_port, vc, out_port))
        return grants


class RandomMatcher(Arbiter):
    """Uniformly random maximal matching over the candidates."""

    name = "random"

    def match(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        remaining = [c for port_cands in candidates for c in port_cands]
        ins: set[int] = set()
        outs: set[int] = set()
        grants: list[Grant] = []
        while remaining:
            idx = int(rng.integers(len(remaining)))
            cand = remaining.pop(idx)
            if cand.in_port in ins or cand.out_port in outs:
                continue
            ins.add(cand.in_port)
            outs.add(cand.out_port)
            grants.append((cand.in_port, cand.vc, cand.out_port))
            remaining = [
                c
                for c in remaining
                if c.in_port not in ins and c.out_port not in outs
            ]
        return grants

    def match_buffer(
        self,
        buf: CandidateBuffer,
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Buffer-native random matching; identical rng trajectory.

        The flat candidate order matches the object path's flattening
        (port-major, level-minor) and the filtering touches only ports,
        so every ``rng.integers`` call sees the same bound and every draw
        lands on the same candidate.
        """
        remaining = [(t[2], t[3], t[4]) for t in _flat_buffer_entries(buf)]
        ins: set[int] = set()
        outs: set[int] = set()
        grants: list[Grant] = []
        while remaining:
            idx = int(rng.integers(len(remaining)))
            in_port, vc, out_port = remaining.pop(idx)
            if in_port in ins or out_port in outs:
                continue
            ins.add(in_port)
            outs.add(out_port)
            grants.append((in_port, vc, out_port))
            remaining = [
                t for t in remaining if t[0] not in ins and t[2] not in outs
            ]
        return grants
