"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) fail.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``pip install -e .`` on environments with wheel available) work from the
metadata in pyproject.toml.
"""

from setuptools import setup

setup()
