"""Worker-crash behaviour: loud errors, no hangs, campaign retry.

A killed shard worker must surface as :class:`ShardWorkerError` within
the barrier timeout — never a silent hang on a queue — and a campaign
point whose sharded execution crashed must succeed on its in-pool retry
(the crash seam fires exactly once per flag file, mimicking a transient
worker death).
"""

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.plan import CampaignPlan, PointSpec, WorkloadSpec
from repro.fabric.engine import FabricSim
from repro.fabric.spec import FabricSpec, TopologySpec
from repro.router.config import RouterConfig
from repro.sessions.churn import ChurnConfig
from repro.shard import ShardSpec, ShardedFabricSim, ShardWorkerError
from repro.shard.worker import CRASH_ENV

CONFIG = RouterConfig(num_ports=6, vcs_per_link=8, vc_buffer_depth=2,
                      candidate_levels=4, flit_cycles_per_round=800)


def make_fabric():
    return FabricSpec(
        topology=TopologySpec.torus(3, 3),
        churn=ChurnConfig(arrivals_per_kcycle=6.0,
                          mean_hold_cycles=250.0,
                          mix=(("cbr-high", 1.0),)),
        sample_stride=100,
        rng_mode="per-router",
    )


def test_crashed_worker_fails_loudly(tmp_path, monkeypatch):
    flag = tmp_path / "crash.flag"
    monkeypatch.setenv(CRASH_ENV, f"1:50:{flag}")
    sim = ShardedFabricSim(
        make_fabric(), CONFIG, seed=0, shard=ShardSpec(workers=2),
        barrier_timeout_s=30.0,
    )
    with pytest.raises(ShardWorkerError):
        sim.run(0.0, 300)
    assert flag.exists()


def test_crash_then_retry_succeeds(tmp_path, monkeypatch):
    """The seam crashes once; a fresh run of the same point succeeds
    and still matches the serial reference byte for byte."""
    flag = tmp_path / "crash.flag"
    monkeypatch.setenv(CRASH_ENV, f"0:100:{flag}")

    def run_once():
        sim = ShardedFabricSim(
            make_fabric(), CONFIG, seed=0, shard=ShardSpec(workers=2),
            barrier_timeout_s=30.0,
        )
        return sim.run(0.0, 300)

    with pytest.raises(ShardWorkerError):
        run_once()
    result = run_once()
    serial = FabricSim(make_fabric(), CONFIG, seed=0)
    assert result.to_dict() == serial.run(0.0, 300).to_dict()


def test_campaign_retries_crashed_shard_point(tmp_path, monkeypatch):
    """A sharded campaign point whose worker dies is retried in-pool and
    completes on the second attempt."""
    flag = tmp_path / "campaign-crash.flag"
    monkeypatch.setenv(CRASH_ENV, f"1:80:{flag}")
    spec = PointSpec(
        config=CONFIG, arbiter="coa", scheme="siabp", target_load=0.0,
        seed=0, workload=WorkloadSpec.cbr(), cycles=300, warmup_cycles=0,
        fabric=make_fabric(), shard=ShardSpec(workers=2),
    )
    campaign = run_campaign(
        CampaignPlan("shard-crash-retry", (spec,)), max_attempts=3,
    )
    outcome = campaign.outcomes[0]
    assert outcome.attempts == 2
    assert flag.exists()
    serial = FabricSim(make_fabric(), CONFIG, seed=0)
    assert outcome.result.to_dict() == serial.run(0.0, 300).to_dict()
