"""Simulation engine, metrics, and the per-figure experiment harness."""

from .engine import RngStreams, RunControl
from .experiments import (
    CBR_LOADS,
    VBR_LOADS,
    CBRDelayResult,
    ExperimentScale,
    VBRResult,
    cbr_delay_experiment,
    default_config,
    vbr_experiment,
)
from .metrics import GroupStats, MetricsCollector, StreamingStat
from .replication import ReplicatedPoint, replicate, replicate_sweep, spawn_seeds
from .tracing import EventKind, TraceEvent, Tracer
from .simulation import SimResult, SingleRouterSim
from .sweep import LoadSweep, SweepPoint, run_load_sweep

__all__ = [
    "RngStreams",
    "RunControl",
    "CBR_LOADS",
    "VBR_LOADS",
    "CBRDelayResult",
    "ExperimentScale",
    "VBRResult",
    "cbr_delay_experiment",
    "default_config",
    "vbr_experiment",
    "GroupStats",
    "ReplicatedPoint",
    "replicate",
    "replicate_sweep",
    "spawn_seeds",
    "EventKind",
    "TraceEvent",
    "Tracer",
    "MetricsCollector",
    "StreamingStat",
    "SimResult",
    "SingleRouterSim",
    "LoadSweep",
    "SweepPoint",
    "run_load_sweep",
]
