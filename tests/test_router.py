"""Integration tests for repro.router.router (the composed MMR)."""

import numpy as np
import pytest

from repro.router import MMRouter, RouterConfig, TrafficClass


def make_router(arbiter="coa", **kw) -> MMRouter:
    base = dict(num_ports=4, vcs_per_link=8, vc_buffer_depth=2,
                candidate_levels=4, flit_cycles_per_round=800)
    base.update(kw)
    return MMRouter(RouterConfig(**base), arbiter=arbiter)


def rng(seed=0):
    return np.random.default_rng(seed)


def run(router, cycles, start=0):
    deps = []
    generator = rng(1)
    for t in range(start, start + cycles):
        deps += router.step(t, generator)
    return deps


class TestEstablishTeardown:
    def test_establish_wires_scheduler_arrays(self):
        router = make_router()
        res = router.establish(0, 2, TrafficClass.CBR, avg_slots=10)
        conn = res.connection
        assert router.connection_at(0, conn.vc) == conn.conn_id
        assert router._dest[0, conn.vc] == 2
        assert router._slots[0, conn.vc] == 10

    def test_teardown_clears_arrays(self):
        router = make_router()
        conn = router.establish(0, 2, TrafficClass.CBR, avg_slots=10).connection
        router.teardown(conn.conn_id)
        assert router.connection_at(0, conn.vc) == -1
        assert router._dest[0, conn.vc] == -1

    def test_teardown_with_buffered_flits_refused(self):
        router = make_router()
        conn = router.establish(0, 2, TrafficClass.CBR, avg_slots=10).connection
        router.nics[0].inject(conn.vc, gen_cycle=0)
        run(router, 1)  # flit moves into the router buffer
        with pytest.raises(RuntimeError, match="still buffered"):
            router.teardown(conn.conn_id)

    def test_rejected_setup_leaves_no_trace(self):
        router = make_router()
        router.establish(0, 2, TrafficClass.CBR, avg_slots=800)
        res = router.establish(0, 2, TrafficClass.CBR, avg_slots=10)
        assert not res.accepted
        assert (router._slots[0] > 0).sum() == 1


class TestPipeline:
    def test_flit_traverses_nic_link_router_crossbar(self):
        router = make_router()
        conn = router.establish(1, 3, TrafficClass.CBR, avg_slots=10).connection
        router.nics[1].inject(conn.vc, gen_cycle=0)
        deps = run(router, 3)
        assert len(deps) == 1
        dep = deps[0]
        assert (dep.in_port, dep.vc, dep.out_port) == (1, conn.vc, 3)
        assert router.buffered_flits() == 0
        assert router.nic_backlog() == 0

    def test_output_contention_serializes(self):
        router = make_router()
        conns = [
            router.establish(p, 0, TrafficClass.CBR, avg_slots=10).connection
            for p in range(4)
        ]
        for conn in conns:
            router.nics[conn.in_port].inject(conn.vc, gen_cycle=0)
        deps = run(router, 8)
        assert len(deps) == 4
        # One flit per cycle max through output 0.
        out_cycles = [router.crossbar.cycles]  # sanity: ran 8 cycles
        assert out_cycles == [8]
        assert all(d.out_port == 0 for d in deps)

    def test_parallel_outputs_transfer_same_cycle(self):
        router = make_router()
        for p in range(4):
            conn = router.establish(p, p, TrafficClass.CBR, avg_slots=10).connection
            router.nics[p].inject(conn.vc, gen_cycle=0)
        deps = []
        generator = rng(2)
        deps += router.step(0, generator)   # NIC -> router this cycle
        deps += router.step(1, generator)   # all four cross together
        assert len(deps) == 4

    def test_flow_control_invariant_under_load(self):
        router = make_router()
        conns = []
        for p in range(4):
            for _ in range(4):
                res = router.establish(
                    p, int(rng(p).integers(4)), TrafficClass.CBR, avg_slots=10
                )
                if res.accepted:
                    conns.append(res.connection)
        generator = rng(3)
        for t in range(200):
            for conn in conns:
                if generator.random() < 0.4:
                    router.nics[conn.in_port].inject(conn.vc, gen_cycle=t)
            router.step(t, generator)
            router.check_flow_control_invariant()

    def test_conservation_after_drain(self):
        """Every injected flit eventually departs (loss-free router)."""
        router = make_router()
        conns = []
        for p in range(4):
            res = router.establish(p, (p + 1) % 4, TrafficClass.CBR, avg_slots=10)
            conns.append(res.connection)
        injected = 0
        generator = rng(4)
        departed = 0
        for t in range(100):
            for conn in conns:
                if generator.random() < 0.5:
                    router.nics[conn.in_port].inject(conn.vc, gen_cycle=t)
                    injected += 1
            departed += len(router.step(t, generator))
        # Drain.
        t = 100
        while router.nic_backlog() + router.buffered_flits() > 0:
            departed += len(router.step(t, generator))
            t += 1
            assert t < 10_000, "router failed to drain"
        assert departed == injected

    def test_credit_starvation_blocks_nic(self):
        """With no crossbar progress (no arbiter grants possible because
        the output is monopolized), the NIC stops at depth flits."""
        router = make_router(vc_buffer_depth=2)
        conn = router.establish(0, 1, TrafficClass.CBR, avg_slots=10).connection
        # Saturate the VC buffer by injecting many flits; drain slower.
        for _ in range(10):
            router.nics[0].inject(conn.vc, gen_cycle=0)
        generator = rng(5)
        router.step(0, generator)
        router.step(1, generator)
        # Buffer holds at most depth flits at any instant.
        assert router.vc_memory.occupancy_of(0, conn.vc) <= 2
        router.check_flow_control_invariant()


class TestDeterminism:
    def test_same_seed_same_departures(self):
        def trace(seed):
            router = make_router()
            conns = [
                router.establish(p, (p + 2) % 4, TrafficClass.CBR, 10).connection
                for p in range(4)
            ]
            generator = rng(seed)
            out = []
            for t in range(100):
                for conn in conns:
                    if generator.random() < 0.5:
                        router.nics[conn.in_port].inject(conn.vc, gen_cycle=t)
                for d in router.step(t, generator):
                    out.append((t, d.in_port, d.vc, d.out_port, d.gen_cycle))
            return out

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)
