"""Virtual channel memory: per-VC flit FIFOs over interleaved RAM modules.

The MMR supports one virtual channel per connection, so it needs a large
number of small buffers.  To keep the implementation compact the buffers
are not discrete FIFOs but views onto a handful of interleaved RAM modules
(paper Fig. 2): a control-word decoder demultiplexes incoming phits, an
address generator interleaves consecutive buffer slots across modules so
that sequential accesses never collide on a module.

Two layers live here:

* :class:`InterleavedRam` — the address-generation model of Fig. 2.  It is
  not on the hot path; it exists to verify (and let tests verify) that the
  interleaving scheme is conflict-free for the access patterns the router
  generates, and to feed the hardware-cost model.
* :class:`VCMemory` — the functional, cycle-accurate buffer state used by
  the simulator.  All flit metadata is held in preallocated numpy ring
  buffers indexed ``[port, vc, slot]``; the hot path performs no Python
  object allocation.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .config import RouterConfig

__all__ = ["InterleavedRam", "VCMemory", "HeadView"]


class InterleavedRam:
    """Address-generation model for the interleaved buffer RAM (Fig. 2).

    Buffer slot ``s`` of virtual channel ``v`` maps to RAM module
    ``(v + s) % num_modules`` at offset ``(v * depth + s) // num_modules``.
    With ``num_modules`` dividing neither pattern pathologically, a FIFO
    that is pushed and popped in order touches modules round-robin, so a
    push and a pop in the same cycle hit the same module only when they
    target the same slot parity — the classic simple interleaving scheme
    the paper sketches.
    """

    def __init__(self, num_vcs: int, depth: int, num_modules: int = 4) -> None:
        if num_modules <= 0:
            raise ValueError("num_modules must be positive")
        if num_vcs <= 0 or depth <= 0:
            raise ValueError("num_vcs and depth must be positive")
        self.num_vcs = num_vcs
        self.depth = depth
        self.num_modules = num_modules

    def address(self, vc: int, slot: int) -> tuple[int, int]:
        """Map (vc, slot) to (module, offset)."""
        if not (0 <= vc < self.num_vcs):
            raise ValueError(f"vc {vc} out of range")
        if not (0 <= slot < self.depth):
            raise ValueError(f"slot {slot} out of range")
        linear = vc * self.depth + slot
        return ((vc + slot) % self.num_modules, linear // self.num_modules)

    def words_per_module(self) -> int:
        """Capacity each module must provide, in flit-sized words."""
        total = self.num_vcs * self.depth
        return -(-total // self.num_modules)

    def conflicts(self, accesses: list[tuple[int, int]]) -> int:
        """Number of module conflicts among simultaneous accesses.

        ``accesses`` is a list of (vc, slot) pairs touched in the same
        cycle; the return value counts accesses beyond the first to each
        module (0 means fully conflict-free).
        """
        seen: dict[int, int] = {}
        for vc, slot in accesses:
            module, _ = self.address(vc, slot)
            seen[module] = seen.get(module, 0) + 1
        return sum(n - 1 for n in seen.values())


class HeadView:
    """Read-only vectorized view of every VC's head flit on one port.

    Exposed by :meth:`VCMemory.heads`; consumed by the link scheduler,
    which needs, per VC: occupancy, head generation cycle and head arrival
    cycle (for priority biasing).  Arrays are length ``vcs_per_link`` and
    only valid where ``occupancy > 0``.  ``gen_cycle`` is ``None`` on the
    lean scheduling view (:meth:`VCMemory.sched_view`), which skips the
    gather the link scheduler never reads.
    """

    __slots__ = ("occupancy", "gen_cycle", "arrival_cycle")

    def __init__(
        self,
        occupancy: np.ndarray,
        gen_cycle: np.ndarray | None,
        arrival_cycle: np.ndarray,
    ) -> None:
        self.occupancy = occupancy
        self.gen_cycle = gen_cycle
        self.arrival_cycle = arrival_cycle


class VCMemory:
    """Cycle-accurate virtual-channel buffer state for all input ports.

    Ring buffers of depth ``config.vc_buffer_depth`` hold, per flit:
    generation cycle, arrival cycle (when it entered this memory — the
    queuing-delay clock for priority biasing), application frame id and a
    last-flit-of-frame flag.
    """

    def __init__(self, config: RouterConfig) -> None:
        n, v, b = config.num_ports, config.vcs_per_link, config.vc_buffer_depth
        self._depth = b
        shape = (n, v, b)
        self._gen = np.zeros(shape, dtype=np.int64)
        self._arr = np.zeros(shape, dtype=np.int64)
        self._frame = np.full(shape, -1, dtype=np.int64)
        self._last = np.zeros(shape, dtype=bool)
        self._head = np.zeros((n, v), dtype=np.int64)
        self._len = np.zeros((n, v), dtype=np.int64)
        # Preallocated index grids for the head-view gathers (hot path:
        # heads_all runs every flit cycle; rebuilding aranges there shows
        # up in the profile).
        self._vc_idx = np.arange(v)
        self._ports_grid = np.arange(n)[:, None]
        self._vcs_grid = self._vc_idx[None, :]
        self._num_vcs = v
        # Python-native mirror of each VC's queued arrival cycles (one
        # deque per flat port * vcs + vc index), maintained by push/pop.
        # occupied_heads reads head arrivals from here: a deque [0] costs
        # nanoseconds where the equivalent numpy scalar gather costs a
        # microsecond, and reads outnumber push/pop several-fold.
        self._arr_q: list[deque[int]] = [deque() for _ in range(n * v)]
        # Bitmask of occupied VCs over the flat (port * vcs + vc) index;
        # maintained by push/pop so occupied_heads never scans the
        # occupancy array.
        self._occ_mask = 0
        self.config = config
        self.ram = InterleavedRam(v, b)

    # ------------------------------------------------------------------
    # Hot-path operations
    # ------------------------------------------------------------------

    def push(
        self,
        port: int,
        vc: int,
        gen_cycle: int,
        frame_id: int,
        frame_last: bool,
        now: int,
    ) -> None:
        """Append a flit to (port, vc); raises if the buffer is full.

        Credit-based flow control guarantees the caller never overflows a
        buffer; a full buffer here therefore indicates a flow-control bug
        and is an error, mirroring the MMR's loss-free design.
        """
        length = self._len[port, vc]
        if length >= self._depth:
            raise OverflowError(
                f"VC buffer overflow at port {port} vc {vc}: flow control "
                "must prevent pushes to a full buffer"
            )
        slot = (self._head[port, vc] + length) % self._depth
        self._gen[port, vc, slot] = gen_cycle
        self._arr[port, vc, slot] = now
        self._frame[port, vc, slot] = frame_id
        self._last[port, vc, slot] = frame_last
        self._len[port, vc] = length + 1
        f = port * self._num_vcs + vc
        self._occ_mask |= 1 << f
        self._arr_q[f].append(now)

    def pop(self, port: int, vc: int) -> tuple[int, int, int, bool]:
        """Remove and return the head flit of (port, vc).

        Returns ``(gen_cycle, arrival_cycle, frame_id, frame_last)``.
        """
        length = self._len[port, vc]
        if length == 0:
            raise IndexError(f"pop from empty VC buffer port {port} vc {vc}")
        slot = self._head[port, vc]
        f = port * self._num_vcs + vc
        out = (
            int(self._gen[port, vc, slot]),
            self._arr_q[f].popleft(),
            int(self._frame[port, vc, slot]),
            bool(self._last[port, vc, slot]),
        )
        self._head[port, vc] = (slot + 1) % self._depth
        self._len[port, vc] = length - 1
        if length == 1:
            self._occ_mask &= ~(1 << f)
        return out

    def is_empty(self) -> bool:
        """True when no VC on any port holds a flit (bitmask read).

        O(1) on the occupancy mask push/pop already maintain — the
        event-skipping engine's idle predicate polls this every cycle.
        """
        return not self._occ_mask

    def heads(self, port: int) -> HeadView:
        """Vectorized head-flit view for one input port (see HeadView)."""
        head = self._head[port]
        idx = self._vc_idx
        return HeadView(
            occupancy=self._len[port],
            gen_cycle=self._gen[port, idx, head],
            arrival_cycle=self._arr[port, idx, head],
        )

    def heads_all(self) -> HeadView:
        """Head-flit view across all ports at once (hot path).

        Arrays are shaped (ports, vcs).  Equivalent to stacking
        :meth:`heads` over every port; the batched form lets the link
        scheduler evaluate the whole router in a handful of vector ops.
        """
        ports, vcs = self._ports_grid, self._vcs_grid
        return HeadView(
            occupancy=self._len,
            gen_cycle=self._gen[ports, vcs, self._head],
            arrival_cycle=self._arr[ports, vcs, self._head],
        )

    def sched_view(self) -> HeadView:
        """Like :meth:`heads_all` but without the generation-cycle gather.

        The link scheduler reads only occupancy and head arrival cycles;
        skipping the unused ``gen_cycle`` gather saves an allocation per
        flit cycle on the hot path.  ``gen_cycle`` is ``None`` here.
        """
        return HeadView(
            occupancy=self._len,
            gen_cycle=None,
            arrival_cycle=self._arr[self._ports_grid, self._vcs_grid, self._head],
        )

    def occupied_heads(self) -> tuple[list[int], list[int]]:
        """Sparse head view: occupied VCs and their head arrival cycles.

        Returns ``(flat, arrivals)`` as plain Python lists, where
        ``flat[j] = port * vcs_per_link + vc`` indexes the j-th occupied
        VC and ``arrivals[j]`` is its head flit's arrival cycle.  The
        sparse form is the integer hot path's input: at realistic
        occupancies gathering a handful of heads beats materializing the
        full (ports, vcs) view of :meth:`sched_view`.
        """
        m = self._occ_mask
        if not m:
            return [], []
        flat: list[int] = []
        arrivals: list[int] = []
        arr_q = self._arr_q
        while m:
            low = m & -m
            f = low.bit_length() - 1
            flat.append(f)
            arrivals.append(arr_q[f][0])
            m ^= low
        return flat, arrivals

    def occupancy_state(self) -> tuple[int, list[deque[int]]]:
        """Zero-copy occupancy snapshot for the sparse scheduling fill.

        Returns ``(mask, heads_q)``: bit ``f = port * vcs_per_link + vc``
        of ``mask`` is set iff that VC is occupied, and ``heads_q[f][0]``
        is its head flit's arrival cycle.  ``heads_q`` aliases live
        internal state — callers must consume it before the next
        push/pop, not store it.  This is :meth:`occupied_heads` without
        the intermediate lists; the link scheduler walks the mask itself.
        """
        return self._occ_mask, self._arr_q

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> np.ndarray:
        """(ports, vcs) array of buffered flit counts (read-only view)."""
        view = self._len.view()
        view.flags.writeable = False
        return view

    def occupancy_of(self, port: int, vc: int) -> int:
        return int(self._len[port, vc])

    def free_space(self, port: int, vc: int) -> int:
        return self._depth - int(self._len[port, vc])

    def total_flits(self) -> int:
        """Total flits currently buffered in the router."""
        return int(self._len.sum())

    def head_arrival(self, port: int, vc: int) -> int:
        """Arrival cycle of the head flit (caller must check occupancy)."""
        return int(self._arr[port, vc, self._head[port, vc]])
