"""Tests for repro.router.crossbar."""

import pytest

from repro.router.config import RouterConfig
from repro.router.crossbar import Crossbar
from repro.router.vc_memory import VCMemory


def make_pair(ports=4, vcs=4, depth=2):
    cfg = RouterConfig(num_ports=ports, vcs_per_link=vcs, vc_buffer_depth=depth,
                       candidate_levels=1)
    return Crossbar(cfg), VCMemory(cfg)


class TestTransfer:
    def test_moves_head_flits(self):
        xbar, mem = make_pair()
        mem.push(0, 1, gen_cycle=3, frame_id=9, frame_last=True, now=4)
        mem.push(2, 0, gen_cycle=5, frame_id=-1, frame_last=False, now=6)
        deps = xbar.transfer([(0, 1, 2), (2, 0, 3)], mem, now=10)
        assert len(deps) == 2
        first = deps[0]
        assert (first.in_port, first.vc, first.out_port) == (0, 1, 2)
        assert first.gen_cycle == 3
        assert first.arrival_cycle == 4
        assert first.frame_id == 9
        assert first.frame_last is True
        assert mem.total_flits() == 0

    def test_empty_matching_is_fine(self):
        xbar, mem = make_pair()
        assert xbar.transfer([], mem, now=0) == []
        assert xbar.cycles == 1

    def test_conflicting_input_raises(self):
        xbar, mem = make_pair()
        mem.push(0, 0, 0, -1, False, 0)
        mem.push(0, 1, 0, -1, False, 0)
        with pytest.raises(ValueError, match="input port 0"):
            xbar.transfer([(0, 0, 1), (0, 1, 2)], mem, now=0)

    def test_conflicting_output_raises(self):
        xbar, mem = make_pair()
        mem.push(0, 0, 0, -1, False, 0)
        mem.push(1, 0, 0, -1, False, 0)
        with pytest.raises(ValueError, match="output port 2"):
            xbar.transfer([(0, 0, 2), (1, 0, 2)], mem, now=0)

    def test_granting_empty_vc_raises(self):
        xbar, mem = make_pair()
        with pytest.raises(IndexError):
            xbar.transfer([(0, 0, 1)], mem, now=0)


class TestUtilization:
    def test_counts_grants_per_cycle(self):
        xbar, mem = make_pair(ports=4)
        for t in range(10):
            mem.push(0, 0, t, -1, False, t)
            mem.push(1, 0, t, -1, False, t)
            xbar.transfer([(0, 0, 1), (1, 0, 0)], mem, now=t)
        # 2 of 4 ports busy every cycle.
        assert xbar.utilization == pytest.approx(0.5)
        assert xbar.total_grants == 20
        assert xbar.output_grants[1] == 10
        assert xbar.input_grants[0] == 10

    def test_zero_cycles_zero_utilization(self):
        xbar, _ = make_pair()
        assert xbar.utilization == 0.0

    def test_reset_counters(self):
        xbar, mem = make_pair()
        mem.push(0, 0, 0, -1, False, 0)
        xbar.transfer([(0, 0, 1)], mem, now=0)
        xbar.reset_counters()
        assert xbar.utilization == 0.0
        assert xbar.cycles == 0
        assert (xbar.output_grants == 0).all()
