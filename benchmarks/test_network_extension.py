"""N1 — extension (paper §6): does the COA's advantage survive a network?

The paper's conclusions: "In order to assess the conclusions obtained,
this study must be further extended to a network composed of several
MMRs."  This bench runs that study at example scale: a ring of four MMRs,
CBR connections between random endpoints (hop-by-hop PCS reservations,
credit-controlled inter-router links), sweeping the per-router injected
load under both arbiters.

Shape claims:
  * at low load the arbiters are indistinguishable end to end;
  * approaching saturation, COA's end-to-end delay stays a small multiple
    of the zero-load delay while WFA's blows up — the single-router
    result composes across hops;
  * the network stays loss-free throughout (delivered == injected after
    drain).
"""

import pytest

from repro.analysis import render_table
from repro.network.experiments import network_load_experiment

LOADS = (0.4, 0.6, 0.8, 0.95)
CYCLES = 4_000
SEED = 7


@pytest.mark.benchmark(group="network")
def test_network_ring_load_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: network_load_experiment(loads=LOADS, cycles=CYCLES, seed=SEED),
        rounds=1,
        iterations=1,
    )
    print()
    rows = []
    for arbiter, runs in results.items():
        for r in runs:
            rows.append([
                arbiter, f"{r.target_load:.0%}", r.connections, r.injected,
                f"{r.delivered_fraction:.1%}", r.mean_delay_cycles,
                r.max_delay_cycles, r.residue,
            ])
    print(render_table(
        ["arbiter", "inj load", "conns", "flits", "delivered",
         "mean e2e delay (cyc)", "max", "residue"],
        rows,
        title="N1 — ring of 4 MMRs, CBR connections, end-to-end",
    ))

    coa = {r.target_load: r for r in results["coa"]}
    wfa = {r.target_load: r for r in results["wfa"]}
    # Loss-free across the whole sweep.
    for runs in results.values():
        for r in runs:
            assert r.delivered == r.injected, (r.arbiter, r.target_load)
            assert r.residue == 0
    # Indistinguishable at low load...
    assert coa[0.4].mean_delay_cycles == pytest.approx(
        wfa[0.4].mean_delay_cycles, rel=0.25
    )
    # ...but COA holds near saturation where WFA degrades multi-hop too.
    for load in (0.8, 0.95):
        assert wfa[load].mean_delay_cycles > 3 * coa[load].mean_delay_cycles
    # COA itself stays within a small multiple of its low-load delay.
    assert coa[0.8].mean_delay_cycles < 5 * coa[0.4].mean_delay_cycles
