"""Tests for repro.traffic.besteffort and repro.traffic.mixes."""

import numpy as np
import pytest

from repro.router import MMRouter, RouterConfig, TrafficClass
from repro.traffic.besteffort import BestEffortSource
from repro.traffic.mixes import (
    Workload,
    build_besteffort_workload,
    build_cbr_workload,
    build_vbr_workload,
)


def make_router(**kw) -> MMRouter:
    base = dict(num_ports=4, vcs_per_link=64, candidate_levels=4)
    base.update(kw)
    return MMRouter(RouterConfig(**base))


def rng(seed=0):
    return np.random.default_rng(seed)


class TestBestEffortSource:
    def test_validation(self):
        with pytest.raises(ValueError):
            BestEffortSource(0.0)
        with pytest.raises(ValueError):
            BestEffortSource(1.5)
        with pytest.raises(ValueError):
            BestEffortSource(0.5, mean_packet_flits=0.5)

    def test_load_approximately_achieved(self):
        src = BestEffortSource(0.3, mean_packet_flits=6)
        sched = src.schedule(200_000, rng(1))
        assert sched.mean_load(200_000) == pytest.approx(0.3, rel=0.1)

    def test_packets_have_last_markers(self):
        src = BestEffortSource(0.2, mean_packet_flits=4)
        sched = src.schedule(10_000, rng(2))
        n_packets = len(np.unique(sched.frame_ids))
        # Possibly the final packet is truncated by the horizon.
        assert sched.frame_last.sum() in (n_packets, n_packets - 1)

    def test_single_flit_packets(self):
        src = BestEffortSource(0.2, mean_packet_flits=1)
        sched = src.schedule(5_000, rng(3))
        counts = np.bincount(sched.frame_ids)
        assert (counts == 1).all()


class TestCBRWorkload:
    def test_reaches_target_load(self):
        router = make_router()
        wl = build_cbr_workload(router, 0.7, rng(1))
        for port in range(4):
            assert wl.offered_load(port) == pytest.approx(0.7, abs=0.05)

    def test_connections_admitted_and_within_reservation(self):
        router = make_router()
        wl = build_cbr_workload(router, 0.8, rng(2))
        assert len(router.table) == len(wl)
        for port in range(4):
            assert router.admission.reserved_avg_load(port) <= 1.0

    def test_mix_contains_all_classes(self):
        router = make_router()
        wl = build_cbr_workload(router, 0.8, rng(3))
        labels = {item.label for item in wl.loads}
        assert labels == {"low", "medium", "high"}

    def test_respects_class_mix_argument(self):
        router = make_router()
        wl = build_cbr_workload(router, 0.5, rng(4), class_mix={"high": 1.0})
        assert {item.label for item in wl.loads} == {"high"}

    def test_rejects_bad_arguments(self):
        router = make_router()
        with pytest.raises(ValueError):
            build_cbr_workload(router, 0.0, rng(0))
        with pytest.raises(ValueError):
            build_cbr_workload(router, 0.5, rng(0), class_mix={})
        with pytest.raises(ValueError):
            build_cbr_workload(router, 0.5, rng(0), class_mix={"huge": 1.0})

    def test_label_lookup(self):
        router = make_router()
        wl = build_cbr_workload(router, 0.3, rng(5))
        item = wl.loads[0]
        assert wl.label_of(item.conn.conn_id) == item.label
        with pytest.raises(KeyError):
            wl.label_of(10_000)


class TestVBRWorkload:
    def test_reaches_target_load(self):
        router = make_router()
        wl = build_vbr_workload(router, 0.6, rng(1), frame_time_cycles=1_000,
                                bandwidth_scale=8.0, num_gops=2)
        for port in range(4):
            assert wl.offered_load(port) == pytest.approx(0.6, abs=0.08)

    def test_vbr_reservations_recorded(self):
        router = make_router()
        wl = build_vbr_workload(router, 0.5, rng(2), frame_time_cycles=1_000,
                                bandwidth_scale=8.0, num_gops=2)
        for item in wl.loads:
            assert item.conn.traffic_class == TrafficClass.VBR
            assert item.conn.peak_slots >= item.conn.avg_slots

    def test_bb_shares_global_peak(self):
        router = make_router()
        wl = build_vbr_workload(router, 0.5, rng(3), model="BB",
                                frame_time_cycles=1_000, bandwidth_scale=8.0,
                                num_gops=2)
        peaks = {item.source.peak_flits_per_frame for item in wl.loads}
        assert len(peaks) == 1

    def test_sequences_drawn_from_requested_set(self):
        router = make_router()
        wl = build_vbr_workload(router, 0.5, rng(4), frame_time_cycles=1_000,
                                bandwidth_scale=8.0, num_gops=2,
                                sequences=["hook", "football"])
        assert {item.label for item in wl.loads} <= {"hook", "football"}

    def test_unknown_sequence_rejected(self):
        router = make_router()
        with pytest.raises(ValueError):
            build_vbr_workload(router, 0.5, rng(0), sequences=["casablanca"])


class TestBestEffortWorkload:
    def test_builds_sources(self):
        router = make_router()
        wl = build_besteffort_workload(router, 0.2, rng(1), sources_per_port=2)
        assert len(wl) == 8
        for port in range(4):
            assert wl.offered_load(port) == pytest.approx(0.2, rel=1e-6)

    def test_no_bandwidth_reserved(self):
        router = make_router()
        build_besteffort_workload(router, 0.2, rng(2))
        for port in range(4):
            assert router.admission.reserved_avg_load(port) == 0.0


class TestFeeds:
    def test_feeds_sorted_and_complete(self):
        router = make_router()
        wl = build_cbr_workload(router, 0.6, rng(6))
        feeds = wl.build_feeds(5_000, rng(7))
        assert len(feeds) == 4
        total = 0
        for feed in feeds:
            assert (np.diff(feed.cycles) >= 0).all()
            assert len(feed.cycles) == len(feed.vcs) == len(feed.frame_ids)
            total += len(feed)
        expected = 0.6 * 4 * 5_000
        assert total == pytest.approx(expected, rel=0.1)

    def test_feed_vcs_belong_to_port_connections(self):
        router = make_router()
        wl = build_cbr_workload(router, 0.4, rng(8))
        feeds = wl.build_feeds(2_000, rng(9))
        for port, feed in enumerate(feeds):
            valid_vcs = {item.conn.vc for item in wl.loads
                         if item.conn.in_port == port}
            assert set(np.unique(feed.vcs)) <= valid_vcs

    def test_empty_workload_feeds(self):
        router = make_router()
        feeds = Workload(router.config).build_feeds(100, rng(0))
        assert all(len(f) == 0 for f in feeds)
