"""Closed-loop control plane: resilient signaling, estimators, recovery.

The sessions subsystem admits and tears down connections; the faults
subsystem breaks the substrate under them.  This package closes the loop
between the two:

* :mod:`~repro.control.config` — :class:`RetryPolicy` (signaling
  timeout / bounded retry / exponential backoff + jitter) and
  :class:`ControlConfig` (estimator gains, hysteresis water marks,
  recovery hold time, overload brake);
* :mod:`~repro.control.estimators` — EWMA smoothers for the deadline-
  violation rate and NIC queue occupancy, plus the anti-flap
  :class:`~repro.control.estimators.HysteresisBand`;
* :mod:`~repro.control.plane` — the :class:`ControlPlane` the
  :class:`~repro.sessions.signaling.SessionEngine` steps each estimator
  stride, the pressure-driven ``adaptive`` CAC policy, and the
  :class:`~repro.control.plane.RecoveryController` that lets graceful
  degradation un-shed traffic once measured pressure clears;
* :mod:`~repro.control.experiments` — the blocking-vs-delivered-QoS
  frontier campaign across static / measurement / adaptive policies
  under churn and injected faults (imported lazily; pulls in
  ``repro.campaign``);
* :mod:`~repro.control.bench` — overhead gates: a control-disabled run
  must stay bit-identical and within noise of the plain simulator.

Everything is deterministic: retry loss and jitter draws are precomputed
from the ``sessions`` RNG stream at spec-build time, so identical seeds
replay identical retry / backoff / give-up event logs, and a run with
``control=None`` consumes exactly the RNG draws it consumed before this
package existed.
"""

from .config import ControlConfig, RetryPolicy
from .estimators import Ewma, HysteresisBand, ViolationRateEstimator
from .plane import (
    CONTROL_SCHEMA,
    AdaptiveCacPolicy,
    ControlFeedback,
    ControlPlane,
    RecoveryController,
)

__all__ = [
    "ControlConfig",
    "RetryPolicy",
    "Ewma",
    "HysteresisBand",
    "ViolationRateEstimator",
    "CONTROL_SCHEMA",
    "AdaptiveCacPolicy",
    "ControlFeedback",
    "ControlPlane",
    "RecoveryController",
]
