"""Per-connection QoS guarantee tracking.

The paper's contract (§2) is per-connection: a CBR/VBR connection
reserves ``avg_slots`` flit-cycle slots per round at setup time, which
nominally serves it once every ``round_cycles / avg_slots`` cycles — its
inter-arrival time, since the reservation matches the source rate.  The
end-of-run class means the repo reported so far cannot say *which*
connections missed that contract or *when*; this tracker can.

Bounds derived per connection (see :func:`bounds_for`):

* **service interval** ``ceil(round_cycles / avg_slots)`` — the nominal
  cycles between reserved slots, equal to the flit IAT of a conforming
  CBR source.
* **deadline** ``deadline_scale * interval + pipeline_slack`` — a
  conforming flit waits at most about one interval for its slot plus one
  interval of phase misalignment, plus the fixed ingress pipeline (NIC
  link transfer, crossbar traversal, credit return).  ``deadline_scale``
  defaults to 2 accordingly; it is a *nominal* bound for flagging, not a
  hard-real-time proof.
* **jitter bound** — one service interval: adjacent delivery units of a
  conforming connection should not spread by more than the slot spacing.

Best-effort connections have no reservation and therefore no bounds;
their departures are counted but can never violate.

Violations are counted and timestamped per connection and aggregated per
traffic class (CBR / VBR / best-effort).  A sliding-window burst detector
fires ``on_burst`` when ``burst_threshold`` deadline violations land
within ``burst_window`` cycles — the flight recorder's dump trigger.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from ..router.config import RouterConfig
from ..router.connection import Connection, TrafficClass
from ..router.crossbar import Departure

__all__ = [
    "QosBounds",
    "deadline_slack",
    "bounds_for",
    "ConnectionQos",
    "QosTracker",
]

#: Traffic-class keys used in summaries (stable artifact schema).
CLASS_KEYS = {
    TrafficClass.CBR: "cbr",
    TrafficClass.VBR: "vbr",
    TrafficClass.BEST_EFFORT: "best-effort",
}


@dataclass(frozen=True)
class QosBounds:
    """Derived per-connection guarantee thresholds, in flit cycles."""

    service_interval_cycles: int | None
    deadline_cycles: int | None
    jitter_bound_cycles: int | None


def deadline_slack(config: RouterConfig) -> int:
    """Fixed pipeline slack added to every deadline, in cycles.

    One cycle of NIC link transfer, one crossbar traversal, and the
    credit return delay — the reservation-independent part of the path.
    The session engine and the control plane use the same figure so
    "violation" means the same thing in both layers.
    """
    return config.credit_return_delay + 2


def bounds_for(
    conn: Connection,
    config: RouterConfig,
    deadline_scale: float = 2.0,
) -> QosBounds:
    """Derive a connection's QoS bounds from its reservation.

    Best-effort connections get ``None`` everywhere (no reservation, no
    guarantee).
    """
    if not conn.is_reserved:
        return QosBounds(None, None, None)
    interval = math.ceil(config.round_cycles / conn.avg_slots)
    deadline = int(math.ceil(deadline_scale * interval)) + deadline_slack(config)
    return QosBounds(interval, deadline, interval)


class ConnectionQos:
    """Mutable guarantee ledger for one connection."""

    __slots__ = (
        "conn_id",
        "label",
        "class_key",
        "bounds",
        "avg_slots",
        "reserved",
        "flits",
        "units",
        "worst_delay",
        "violations",
        "jitter_violations",
        "first_violation_cycle",
        "last_violation_cycle",
        "_prev_unit_delay",
    )

    def __init__(self, conn: Connection, label: str, bounds: QosBounds) -> None:
        self.conn_id = conn.conn_id
        self.label = label
        self.class_key = CLASS_KEYS[conn.traffic_class]
        self.bounds = bounds
        #: Reserved slots per round (the fairness weight) and whether the
        #: connection holds a reservation at all — lets post-processing
        #: compute weighted-fairness indices from the payload alone.
        self.avg_slots = conn.avg_slots
        self.reserved = conn.is_reserved
        self.flits = 0
        #: Delivery units seen (frames for framed traffic, flits else).
        self.units = 0
        self.worst_delay = 0
        self.violations = 0
        self.jitter_violations = 0
        self.first_violation_cycle: int | None = None
        self.last_violation_cycle: int | None = None
        self._prev_unit_delay: int | None = None

    def to_dict(self) -> dict[str, Any]:
        b = self.bounds
        return {
            "conn_id": self.conn_id,
            "label": self.label,
            "class": self.class_key,
            "service_interval_cycles": b.service_interval_cycles,
            "deadline_cycles": b.deadline_cycles,
            "jitter_bound_cycles": b.jitter_bound_cycles,
            "avg_slots": self.avg_slots,
            "reserved": self.reserved,
            "flits": self.flits,
            "units": self.units,
            "worst_delay_cycles": self.worst_delay,
            "violations": self.violations,
            "jitter_violations": self.jitter_violations,
            "first_violation_cycle": self.first_violation_cycle,
            "last_violation_cycle": self.last_violation_cycle,
        }


class QosTracker:
    """Counts and timestamps per-connection guarantee violations."""

    def __init__(
        self,
        config: RouterConfig,
        deadline_scale: float = 2.0,
        burst_window: int = 512,
        burst_threshold: int = 32,
        on_burst: Callable[[int, int], None] | None = None,
    ) -> None:
        if burst_window <= 0 or burst_threshold <= 0:
            raise ValueError("burst_window and burst_threshold must be positive")
        self.config = config
        self.deadline_scale = deadline_scale
        self.burst_window = burst_window
        self.burst_threshold = burst_threshold
        #: Called as ``on_burst(now, violations_in_window)`` at most once
        #: per window (cooldown prevents a dump storm).
        self.on_burst = on_burst
        self.bursts = 0
        self._by_vc: dict[tuple[int, int], ConnectionQos] = {}
        self._states: list[ConnectionQos] = []
        self._recent: deque[int] = deque()
        self._cooldown_until = -1

    # ------------------------------------------------------------------

    def register(self, conn: Connection, label: str) -> ConnectionQos:
        """Track a connection (call again after fault re-admission)."""
        state = ConnectionQos(
            conn, label, bounds_for(conn, self.config, self.deadline_scale)
        )
        self._by_vc[(conn.in_port, conn.vc)] = state
        self._states.append(state)
        return state

    # ------------------------------------------------------------------

    def on_departure(self, dep: Departure, now: int) -> None:
        """Account one measured departure (hot path)."""
        state = self._by_vc.get((dep.in_port, dep.vc))
        if state is None:
            return
        delay = now - dep.gen_cycle + 1
        state.flits += 1
        if delay > state.worst_delay:
            state.worst_delay = delay
        bounds = state.bounds
        deadline = bounds.deadline_cycles
        if deadline is not None and delay > deadline:
            state.violations += 1
            if state.first_violation_cycle is None:
                state.first_violation_cycle = now
            state.last_violation_cycle = now
            self._note_violation(now)
        # Jitter is measured between adjacent *delivery units*: frames
        # for framed (VBR) traffic, individual flits otherwise.
        if dep.frame_id >= 0 and not dep.frame_last:
            return
        state.units += 1
        prev = state._prev_unit_delay
        state._prev_unit_delay = delay
        bound = bounds.jitter_bound_cycles
        if prev is not None and bound is not None and abs(delay - prev) > bound:
            state.jitter_violations += 1

    def _note_violation(self, now: int) -> None:
        recent = self._recent
        recent.append(now)
        floor = now - self.burst_window
        while recent and recent[0] <= floor:
            recent.popleft()
        if len(recent) >= self.burst_threshold and now >= self._cooldown_until:
            self.bursts += 1
            self._cooldown_until = now + self.burst_window
            if self.on_burst is not None:
                self.on_burst(now, len(recent))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def connections(self) -> list[ConnectionQos]:
        return list(self._states)

    def total_violations(self) -> int:
        return sum(s.violations for s in self._states)

    def summary(self) -> dict[str, Any]:
        """JSON-safe per-class aggregate plus per-connection records."""
        classes: dict[str, dict[str, Any]] = {}
        for state in self._states:
            agg = classes.setdefault(
                state.class_key,
                {
                    "connections": 0,
                    "flits": 0,
                    "violations": 0,
                    "jitter_violations": 0,
                    "worst_delay_cycles": 0,
                    "first_violation_cycle": None,
                    "last_violation_cycle": None,
                },
            )
            agg["connections"] += 1
            agg["flits"] += state.flits
            agg["violations"] += state.violations
            agg["jitter_violations"] += state.jitter_violations
            if state.worst_delay > agg["worst_delay_cycles"]:
                agg["worst_delay_cycles"] = state.worst_delay
            if state.first_violation_cycle is not None and (
                agg["first_violation_cycle"] is None
                or state.first_violation_cycle < agg["first_violation_cycle"]
            ):
                agg["first_violation_cycle"] = state.first_violation_cycle
            if state.last_violation_cycle is not None and (
                agg["last_violation_cycle"] is None
                or state.last_violation_cycle > agg["last_violation_cycle"]
            ):
                agg["last_violation_cycle"] = state.last_violation_cycle
        return {
            "deadline_scale": self.deadline_scale,
            "burst_window": self.burst_window,
            "burst_threshold": self.burst_threshold,
            "bursts": self.bursts,
            "classes": classes,
            "connections": [s.to_dict() for s in self._states],
        }
