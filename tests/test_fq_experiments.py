"""Comparison-suite tests: campaign caching, parallel identity, schema.

The acceptance contract for ``python -m repro fq``: points are
campaign-cached (cold run misses, warm run hits), a parallel run is
byte-identical to a serial one, and the JSON report validates against
the ``repro/fq-comparison/v1`` schema.
"""

import json
import math

import pytest

from repro.campaign.plan import canonical_json
from repro.campaign.store import ResultStore
from repro.fq.experiments import (
    FQ_REPORT_SCHEMA,
    _jain_from_telemetry,
    comparison_plan,
    comparison_report,
    reduce_comparison,
    render_comparison_table,
    render_frontier_table,
    run_comparison,
    summarize_schemes,
    validate_fq_report,
)
from repro.router.config import RouterConfig
from repro.sim.engine import RunControl

CFG = RouterConfig(num_ports=2, vcs_per_link=8, candidate_levels=2)
CONTROL = RunControl(cycles=400, warmup_cycles=50)


def tiny_plan(name="fq-test", schemes=("siabp", "wfq"), seeds=(0, 1)):
    return comparison_plan(
        name, CFG, schemes, loads=(0.6,), seeds=seeds, control=CONTROL
    )


class TestPlan:
    def test_grid_order_and_arbiter(self):
        plan = tiny_plan()
        assert len(plan) == 4
        assert [p.scheme for p in plan] == ["siabp", "siabp", "wfq", "wfq"]
        assert all(p.arbiter == "coa" for p in plan)

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            comparison_plan("x", CFG, schemes=())
        with pytest.raises(ValueError):
            comparison_plan("x", CFG, loads=())


class TestCampaignCaching:
    def test_cold_misses_then_warm_hits(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = tiny_plan()
        cold, cold_points = run_comparison(plan, store=store)
        assert cold.misses == len(plan)
        warm, warm_points = run_comparison(plan, store=store)
        assert warm.hits == len(plan)
        assert warm.misses == 0
        assert warm_points == cold_points

    def test_parallel_byte_identical_to_serial(self, tmp_path):
        plan = tiny_plan()
        serial, serial_points = run_comparison(
            plan, jobs=1, store=ResultStore(tmp_path / "serial")
        )
        parallel, parallel_points = run_comparison(
            plan, jobs=2, store=ResultStore(tmp_path / "parallel")
        )
        s_report = comparison_report(serial, serial_points, CFG)
        p_report = comparison_report(parallel, parallel_points, CFG)
        # Everything except the cache accounting must match byte for byte.
        s_report.pop("campaign")
        p_report.pop("campaign")
        assert canonical_json(s_report) == canonical_json(p_report)

    def test_reduce_requires_telemetry(self):
        from repro.campaign.executor import run_campaign

        result = run_campaign(tiny_plan(seeds=(0,)))  # telemetry off
        with pytest.raises(ValueError, match="telemetry"):
            reduce_comparison(result)


class TestReduction:
    def test_jain_from_telemetry(self):
        payload = {"qos": {"connections": [
            {"reserved": True, "flits": 10, "avg_slots": 1},
            {"reserved": True, "flits": 40, "avg_slots": 4},
            {"reserved": False, "flits": 999, "avg_slots": 1},
        ]}}
        assert _jain_from_telemetry(payload) == pytest.approx(1.0)
        assert math.isnan(_jain_from_telemetry({"qos": {"connections": []}}))

    def test_summaries_and_tables(self, tmp_path):
        campaign, points = run_comparison(
            tiny_plan(seeds=(0,)), store=ResultStore(tmp_path / "s")
        )
        summaries = summarize_schemes(points, CFG)
        assert [s.scheme for s in summaries] == ["siabp", "wfq"]
        assert all(s.hw_area_ge > 0 for s in summaries)
        table = render_comparison_table(summaries, title="t")
        frontier = render_frontier_table(summaries)
        for s in summaries:
            assert s.scheme in table and s.scheme in frontier
        assert "frontier" in frontier
        with pytest.raises(ValueError):
            render_comparison_table([])


class TestReportSchema:
    def _report(self, tmp_path):
        campaign, points = run_comparison(
            tiny_plan(seeds=(0,)), store=ResultStore(tmp_path / "s")
        )
        return comparison_report(campaign, points, CFG)

    def test_valid_report_roundtrips(self, tmp_path):
        report = self._report(tmp_path)
        assert report["schema"] == FQ_REPORT_SCHEMA
        text = json.dumps(report, sort_keys=True, allow_nan=False)
        assert validate_fq_report(json.loads(text)) == []

    def test_validator_rejects_tampering(self, tmp_path):
        report = self._report(tmp_path)
        bad = json.loads(json.dumps(report))
        bad["schema"] = "nope"
        assert any("schema" in p for p in validate_fq_report(bad))

        bad = json.loads(json.dumps(report))
        del bad["points"][0]["jain_index"]
        assert any("missing" in p for p in validate_fq_report(bad))

        bad = json.loads(json.dumps(report))
        bad["schemes"][0]["jain_index"] = 3.5
        assert any("jain" in p for p in validate_fq_report(bad))

        bad = json.loads(json.dumps(report))
        bad["schemes"] = []
        assert any("schemes" in p for p in validate_fq_report(bad))

        assert validate_fq_report("not a dict") == [
            "report is not a JSON object"
        ]
