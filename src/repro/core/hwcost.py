"""Hardware-cost model for the priority logic and the arbiters.

The paper (citing its ref. [4], the ICN 2001 hardware link-scheduler
study) reports that replacing IABP's divider with SIABP's shifter cuts
silicon area by roughly an order of magnitude and delay by ~38x.  We
cannot re-run VHDL synthesis, so experiment H1 rebuilds the *qualitative*
gap from first-principles gate counts: standard textbook costs for the
combinational blocks each scheme needs per virtual channel, evaluated in
gate-equivalents (GE, 2-input NAND = 1) and in gate *levels* (delay).

The absolute numbers are a model, not silicon; the reproduction claim is
only that SIABP is orders of magnitude smaller and faster than IABP at
the bit widths the MMR uses, which the gate counts make obvious.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BlockCost",
    "priority_update_cost",
    "iabp_cost",
    "siabp_cost",
    "static_cost",
    "fifo_cost",
    "wfq_cost",
    "drr_cost",
    "mcdrr_cost",
    "scheme_cost",
    "link_scheduler_cost",
    "comparator_tree_cost",
    "coa_cost",
    "wfa_cost",
    "islip_cost",
    "pim_cost",
    "arbiter_cost",
]


@dataclass(frozen=True)
class BlockCost:
    """Area (gate equivalents) and delay (gate levels) of a block."""

    name: str
    area_ge: float
    delay_levels: float

    def __add__(self, other: "BlockCost") -> "BlockCost":
        return BlockCost(
            f"{self.name}+{other.name}",
            self.area_ge + other.area_ge,
            # Serial composition: delays add.
            self.delay_levels + other.delay_levels,
        )

    def scaled(self, copies: int, name: str | None = None) -> "BlockCost":
        """Area of ``copies`` parallel instances (delay unchanged)."""
        return BlockCost(name or self.name, self.area_ge * copies, self.delay_levels)


# ----------------------------------------------------------------------
# Primitive blocks (textbook gate counts)
# ----------------------------------------------------------------------


def _counter(bits: int) -> BlockCost:
    """Synchronous up-counter: ~8 GE/bit, ripple-carry logic depth."""
    return BlockCost(f"counter{bits}", 8.0 * bits, 2.0 + bits / 4.0)


def _comparator(bits: int) -> BlockCost:
    """Magnitude comparator: ~3 GE/bit, log-depth tree."""
    import math

    return BlockCost(f"cmp{bits}", 3.0 * bits, math.ceil(math.log2(max(bits, 2))) + 1)


def _barrel_shifter(bits: int) -> BlockCost:
    """Barrel shifter: bits * log2(bits) muxes at ~3 GE, log-depth."""
    import math

    stages = math.ceil(math.log2(max(bits, 2)))
    return BlockCost(f"shift{bits}", 3.0 * bits * stages, stages)


def _priority_encoder(bits: int) -> BlockCost:
    """Leading-one detector (for the SIABP new-MSB test)."""
    import math

    return BlockCost(f"lod{bits}", 2.0 * bits, math.ceil(math.log2(max(bits, 2))))


def _array_divider(bits: int) -> BlockCost:
    """Restoring array divider: O(bits^2) cells, O(bits^2) worst delay.

    The paper calls hardware dividers "slow and expensive" — this is why:
    each of the ``bits`` rows is a conditional subtractor of ``bits``
    cells (~6 GE each) and the carry chain ripples through every row.
    """
    return BlockCost(f"div{bits}", 6.0 * bits * bits, 2.0 * bits)


def _fp_divider(mantissa_bits: int) -> BlockCost:
    """Floating-point divider (what IABP literally needs, per the paper)."""
    core = _array_divider(mantissa_bits)
    # Exponent path + normalize/round adds ~25% area, a few levels.
    return BlockCost(
        f"fpdiv{mantissa_bits}", core.area_ge * 1.25, core.delay_levels + 6.0
    )


def _register(bits: int) -> BlockCost:
    return BlockCost(f"reg{bits}", 6.0 * bits, 1.0)


def _adder(bits: int) -> BlockCost:
    """Ripple-carry adder: ~6 GE (one full adder) per bit."""
    return BlockCost(f"add{bits}", 6.0 * bits, 2.0 + bits / 4.0)


# ----------------------------------------------------------------------
# Per-scheme costs
# ----------------------------------------------------------------------


def iabp_cost(delay_bits: int = 20, priority_bits: int = 24) -> BlockCost:
    """Per-VC IABP priority update: delay counter + floating divider."""
    cost = _counter(delay_bits) + _fp_divider(priority_bits) + _register(priority_bits)
    return BlockCost("iabp", cost.area_ge, cost.delay_levels)


def siabp_cost(delay_bits: int = 20, priority_bits: int = 24) -> BlockCost:
    """Per-VC SIABP priority update: counter + new-MSB detect + shift.

    The shifter shifts by one conditionally (the register doubles when a
    new delay MSB appears), so a single mux layer suffices instead of a
    barrel shifter; we still charge the leading-one detector that spots
    the new MSB.
    """
    shift_mux = BlockCost(f"mux{priority_bits}", 3.0 * priority_bits, 1.0)
    cost = (
        _counter(delay_bits)
        + _priority_encoder(delay_bits)
        + shift_mux
        + _register(priority_bits)
    )
    return BlockCost("siabp", cost.area_ge, cost.delay_levels)


def static_cost(priority_bits: int = 24) -> BlockCost:
    """Per-VC static priority: the reservation register, nothing else."""
    cost = _register(priority_bits)
    return BlockCost("static", cost.area_ge, cost.delay_levels)


def fifo_cost(delay_bits: int = 20) -> BlockCost:
    """Per-VC FIFO priority: just the queuing-delay counter."""
    cost = _counter(delay_bits)
    return BlockCost("fifo", cost.area_ge, cost.delay_levels)


# ----------------------------------------------------------------------
# Fair-queueing family (repro.fq) — per-VC update logic
# ----------------------------------------------------------------------


def wfq_cost(tag_bits: int = 32, priority_bits: int = 24) -> BlockCost:
    """Per-VC WFQ virtual-time update.

    A served flit advances the port's virtual clock and rewrites the
    VC's finish tag: ``tag = max(v_time, last_finish) + increment``.
    Per VC that is a ``tag_bits`` magnitude comparator (the max), a
    ``tag_bits`` adder, and two tag registers (last finish + the
    setup-time per-flit increment ``scale // weight``, computed once at
    connection setup, so no divider sits in the cycle path — the whole
    point of tagging over IABP's per-cycle division).
    """
    cost = (
        _comparator(tag_bits)
        + _adder(tag_bits)
        + _register(tag_bits).scaled(2, f"reg{tag_bits}x2")
    )
    return BlockCost("wfq", cost.area_ge, cost.delay_levels)


def drr_cost(deficit_bits: int = 16) -> BlockCost:
    """Per-VC DRR update: quantum adder + deficit register + sign test.

    On service, the deficit register either decrements or adds
    ``quantum - 1`` — one ``deficit_bits`` adder — and a zero/sign test
    (modeled as a comparator) decides whether the ring front rotates.
    The quantum itself is a setup-time register.
    """
    cost = (
        _adder(deficit_bits)
        + _comparator(deficit_bits)
        + _register(deficit_bits).scaled(2, f"reg{deficit_bits}x2")
    )
    return BlockCost("drr", cost.area_ge, cost.delay_levels)


def mcdrr_cost(deficit_bits: int = 16, num_ports: int = 4) -> BlockCost:
    """Per-VC MCDRR update: DRR plus the amortized channel rings.

    The outer output-channel ring pointer (``log2(num_ports)`` bits) and
    the per-channel inner pointers exist once per input *link*; their
    area is amortized over the link's VCs, which at MMR geometries
    (64 VCs) is small next to the per-VC deficit logic, so we charge one
    extra pointer register and a ring mux per VC as a conservative
    envelope.
    """
    import math

    ptr_bits = max(1, math.ceil(math.log2(max(num_ports, 2))))
    base = drr_cost(deficit_bits)
    ring = _register(ptr_bits) + BlockCost(f"mux{ptr_bits}", 3.0 * ptr_bits, 1.0)
    cost = BlockCost(
        "mcdrr", base.area_ge + ring.area_ge, base.delay_levels + 1.0
    )
    return cost


def priority_update_cost(scheme: str, **kwargs: int) -> BlockCost:
    """Per-VC priority/state update logic, dispatched by registry name."""
    factories = {
        "iabp": iabp_cost,
        "siabp": siabp_cost,
        "static": static_cost,
        "fifo": fifo_cost,
        "wfq": wfq_cost,
        "drr": drr_cost,
        "mcdrr": mcdrr_cost,
    }
    try:
        factory = factories[scheme]
    except KeyError:
        raise ValueError(f"no hardware model for scheme {scheme!r}") from None
    return factory(**kwargs)


#: Alias matching the arbiter-side dispatcher's naming.
scheme_cost = priority_update_cost


def link_scheduler_cost(
    scheme: str, vcs_per_link: int, tag_bits: int = 32, **kwargs: int
) -> BlockCost:
    """One input link's whole scheduler: per-VC update × VCs + rank tree.

    Every scheme, biased or fair, ends in the same max-finding
    comparator tree over the link's VCs (finish tags for WFQ, priority
    keys otherwise), so the cross-paradigm frontier compares
    ``update.scaled(vcs) + comparator_tree`` like for like.
    """
    update = priority_update_cost(scheme, **kwargs)
    tree = comparator_tree_cost(vcs_per_link, tag_bits)
    return BlockCost(
        f"link-sched-{scheme}",
        update.area_ge * vcs_per_link + tree.area_ge,
        update.delay_levels + tree.delay_levels,
    )


# ----------------------------------------------------------------------
# Arbiter costs (paper §6 future work: COA hardware complexity)
# ----------------------------------------------------------------------


def comparator_tree_cost(fanin: int, bits: int) -> BlockCost:
    """Max-finding tree over ``fanin`` priorities of ``bits`` bits."""
    import math

    if fanin < 2:
        return BlockCost("cmp-tree", 0.0, 0.0)
    nodes = fanin - 1
    node = _comparator(bits)
    depth = math.ceil(math.log2(fanin))
    return BlockCost("cmp-tree", nodes * (node.area_ge + 3.0 * bits), depth * node.delay_levels)


def coa_cost(num_ports: int, levels: int, priority_bits: int = 24) -> BlockCost:
    """COA datapath: conflict counters + ordering + priority arbitration.

    Serialized over at most ``num_ports`` match rounds (the recompute
    loop), which dominates the delay — the price COA pays for priority
    awareness, and why the paper leaves its hardware study to future work.
    """
    import math

    rows = levels * num_ports
    # Population counters over N request bits per row.
    popcount = BlockCost("popcount", 4.0 * num_ports, math.ceil(math.log2(max(num_ports, 2))))
    conflict = popcount.scaled(rows, "conflict-vector")
    # Min-conflict selection across rows + per-output priority max tree.
    ordering = comparator_tree_cost(rows, math.ceil(math.log2(max(rows, 2))) + 1)
    arbitration = comparator_tree_cost(num_ports, priority_bits)
    per_round = BlockCost(
        "coa-round",
        conflict.area_ge + ordering.area_ge + arbitration.area_ge,
        max(conflict.delay_levels, 1)
        + ordering.delay_levels
        + arbitration.delay_levels,
    )
    return BlockCost(
        "coa", per_round.area_ge, per_round.delay_levels * num_ports
    )


def wfa_cost(num_ports: int) -> BlockCost:
    """WFA array: one ~6-GE cell per crosspoint, wave crosses 2N-1 cells."""
    return BlockCost("wfa", 6.0 * num_ports * num_ports, 2.0 * num_ports - 1.0)


def islip_cost(num_ports: int, iterations: int | None = None) -> BlockCost:
    """iSLIP: grant + accept round-robin arbiters, ``iterations`` passes.

    2N programmable priority encoders of N request bits plus their
    pointer registers; delay is the grant-accept pair serialized per
    iteration (default ``ceil(log2 N)`` iterations, McKeown's
    convergence bound).
    """
    import math

    if iterations is None:
        iterations = max(1, math.ceil(math.log2(max(num_ports, 2))))
    ppe = _priority_encoder(num_ports) + _register(
        max(1, math.ceil(math.log2(max(num_ports, 2))))
    )
    area = 2.0 * num_ports * ppe.area_ge
    delay = 2.0 * ppe.delay_levels * iterations
    return BlockCost("islip", area, delay)


def pim_cost(num_ports: int, iterations: int | None = None) -> BlockCost:
    """PIM: like iSLIP but random selection — add an LFSR per arbiter."""
    import math

    if iterations is None:
        iterations = max(1, math.ceil(math.log2(max(num_ports, 2))))
    lfsr = _register(max(2, math.ceil(math.log2(max(num_ports, 2))) + 1))
    base = islip_cost(num_ports, iterations)
    return BlockCost(
        "pim", base.area_ge + 2.0 * num_ports * lfsr.area_ge, base.delay_levels
    )


def arbiter_cost(
    name: str, num_ports: int, levels: int, priority_bits: int = 24
) -> BlockCost | None:
    """Gate-count model for a registry arbiter name; None if unmodeled.

    Registry variants map onto their base model (``coa-level-only`` →
    ``coa``, ``islip-1`` → one iteration, ``*-multi`` → the base): the
    variants change selection policy, not datapath structure.
    """
    if name.startswith("coa"):
        return coa_cost(num_ports, levels, priority_bits)
    if name.startswith("wfa"):
        return wfa_cost(num_ports)
    if name.startswith("islip"):
        return islip_cost(num_ports, 1 if name == "islip-1" else None)
    if name.startswith("pim"):
        return pim_cost(num_ports, 1 if name == "pim-1" else None)
    # greedy / random: software baselines with no hardware claim.
    return None
