"""Content-addressed on-disk result store and run manifests.

Layout under the store root::

    <root>/
        objects/<kk>/<key>.json     # kk = first two hex chars of key
        telemetry/<kk>/<key>.json   # optional telemetry payload per point
        sessions/<kk>/<key>.json    # optional session-stats payload per point
        control/<kk>/<key>.json     # optional control-plane payload per point
        manifests/<name>-<stamp>.json

The optional per-point payloads are *named side-channels*: every channel
in :data:`PAYLOAD_CHANNELS` shares one layout (``<channel>/<kk>/<key>``),
one artifact shape (``{"key": ..., "<channel>": {...}}``) and one
corruption policy, via :meth:`ResultStore.get_payload` /
:meth:`ResultStore.put_payload`.  The channel name doubles as the JSON
field name, which keeps the bytes of the pre-existing telemetry and
sessions artifacts exactly as they were before the channels were
generalized.

Artifacts are *deterministic*: they contain only the point key, the
fully-resolved spec, the code-version keys, and the result — no
timestamps, hostnames, or anything else that varies between runs.  This
is what makes serial and parallel executions of the same plan produce
byte-identical files (asserted in tests).  Per-run provenance (git SHA,
host, wall times, hit/miss accounting) lives in the manifest, one file
per campaign invocation.

Writes are atomic (temp file + ``os.replace`` in the same directory) so
a killed campaign never leaves a half-written artifact; a corrupted or
truncated artifact is detected on read, dropped, and the point simply
recomputes.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .. import __version__
from .plan import CODE_VERSION, PointSpec, canonical_json

__all__ = [
    "PAYLOAD_CHANNELS",
    "ResultStore",
    "RunManifest",
    "collect_provenance",
]

#: Named per-point side-channels the store can persist next to results.
PAYLOAD_CHANNELS = ("telemetry", "sessions", "control")


class ResultStore:
    """Content-addressed JSON artifact store keyed by point hashes."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifests_dir = self.root / "manifests"
        self.telemetry_dir = self.root / "telemetry"
        self.sessions_dir = self.root / "sessions"
        self.control_dir = self.root / "control"
        #: Artifacts dropped because they failed to parse or validate.
        self.corrupt_dropped = 0

    # ------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored result dict for ``key``, or None on miss.

        Any read/parse/validation failure counts as a miss (and bumps
        :attr:`corrupt_dropped`): the caller recomputes, never crashes.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.corrupt_dropped += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("key") != key
            or not isinstance(payload.get("result"), dict)
        ):
            self.corrupt_dropped += 1
            return None
        return payload["result"]

    def put(self, spec: PointSpec, key: str, result: dict[str, Any]) -> Path:
        """Persist one artifact atomically; returns its path.

        The artifact body is canonical JSON of purely deterministic
        content, so re-running the same point always writes the same
        bytes — including under different execution layouts, which is
        why the persisted spec is the *hashed* dict (shard-stripped).
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = canonical_json(
            {
                "key": key,
                "spec": spec.hashed_dict(),
                "code_version": CODE_VERSION,
                "repro_version": __version__,
                "result": result,
            }
        )
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(body, encoding="utf-8")
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Named per-point side-channels (telemetry / sessions / control)
    # ------------------------------------------------------------------

    def channel_path_for(self, channel: str, key: str) -> Path:
        if channel not in PAYLOAD_CHANNELS:
            raise ValueError(f"unknown payload channel {channel!r}")
        return self.root / channel / key[:2] / f"{key}.json"

    def get_payload(self, channel: str, key: str) -> dict[str, Any] | None:
        """The stored ``channel`` payload for ``key``, or None on miss.

        Same corruption policy as :meth:`get`: any failure is a miss (and
        bumps :attr:`corrupt_dropped`) and the point recomputes — every
        side-channel payload requires a live run.
        """
        path = self.channel_path_for(channel, key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.corrupt_dropped += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("key") != key
            or not isinstance(payload.get(channel), dict)
        ):
            self.corrupt_dropped += 1
            return None
        return payload[channel]

    def put_payload(
        self, channel: str, key: str, payload: dict[str, Any]
    ) -> Path:
        """Persist one point's ``channel`` payload atomically.

        The body is canonical JSON of deterministic content keyed by the
        channel name — byte-identical to the pre-generalization artifact
        format, preserving the serial-vs-parallel identity guarantee and
        every warm cache.
        """
        path = self.channel_path_for(channel, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = canonical_json({"key": key, channel: payload})
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(body, encoding="utf-8")
        os.replace(tmp, path)
        return path

    # Channel-specific conveniences (thin wrappers over the generic API).

    def telemetry_path_for(self, key: str) -> Path:
        return self.channel_path_for("telemetry", key)

    def get_telemetry(self, key: str) -> dict[str, Any] | None:
        return self.get_payload("telemetry", key)

    def put_telemetry(self, key: str, telemetry: dict[str, Any]) -> Path:
        return self.put_payload("telemetry", key, telemetry)

    def sessions_path_for(self, key: str) -> Path:
        return self.channel_path_for("sessions", key)

    def get_sessions(self, key: str) -> dict[str, Any] | None:
        return self.get_payload("sessions", key)

    def put_sessions(self, key: str, sessions: dict[str, Any]) -> Path:
        return self.put_payload("sessions", key, sessions)

    # ------------------------------------------------------------------

    def write_manifest(self, manifest: "RunManifest") -> Path:
        """Write a per-run manifest; returns its path."""
        self.manifests_dir.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        base = f"{manifest.campaign}-{stamp}"
        path = self.manifests_dir / f"{base}.json"
        n = 1
        while path.exists():
            path = self.manifests_dir / f"{base}-{n}.json"
            n += 1
        path.write_text(
            json.dumps(manifest.to_dict(), indent=2, sort_keys=True, allow_nan=True),
            encoding="utf-8",
        )
        return path


# ----------------------------------------------------------------------
# Provenance / manifests
# ----------------------------------------------------------------------


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def collect_provenance() -> dict[str, Any]:
    """Best-effort environment snapshot for a manifest."""
    return {
        "repro_version": __version__,
        "code_version": CODE_VERSION,
        "git_sha": _git_sha(),
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


@dataclass
class RunManifest:
    """Provenance + per-point accounting for one campaign invocation."""

    campaign: str
    jobs: int
    provenance: dict[str, Any] = field(default_factory=collect_provenance)
    started_unix: float = field(default_factory=time.time)
    finished_unix: float | None = None
    #: One record per point: key, label, cached, attempts, wall_s.
    points: list[dict[str, Any]] = field(default_factory=list)

    def record_point(
        self,
        spec: PointSpec,
        key: str,
        cached: bool,
        attempts: int,
        wall_s: float,
    ) -> None:
        self.points.append(
            {
                "key": key,
                "label": spec.describe(),
                "cached": cached,
                "attempts": attempts,
                "wall_s": round(wall_s, 6),
            }
        )

    def finish(self) -> None:
        self.finished_unix = time.time()

    @property
    def hits(self) -> int:
        return sum(1 for p in self.points if p["cached"])

    @property
    def misses(self) -> int:
        return len(self.points) - self.hits

    def to_dict(self) -> dict[str, Any]:
        wall = (
            (self.finished_unix - self.started_unix)
            if self.finished_unix is not None
            else None
        )
        return {
            "campaign": self.campaign,
            "jobs": self.jobs,
            "provenance": self.provenance,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "totals": {
                "points": len(self.points),
                "hits": self.hits,
                "misses": self.misses,
                "wall_s": wall,
                "points_per_sec": (
                    len(self.points) / wall if wall and wall > 0 else None
                ),
            },
            "points": self.points,
        }
