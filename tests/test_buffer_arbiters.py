"""Differential tests: buffer-native arbiters vs the object path.

Every arbiter's ``match_buffer`` must be *draw-for-draw* identical to its
``match`` over the equivalent candidate objects: the same grants in the
same order, consuming exactly the same rng draws (checked by comparing
the generators' bit states afterwards).  A single skipped or extra draw
would silently decorrelate fast-path experiments from the published
reference results even if each individual matching looked plausible.
"""

import numpy as np
import pytest

from repro.core import make_arbiter
from repro.core.candidates import CandidateBuffer
from repro.core.coa import CandidateOrderArbiter
from repro.core.link_scheduler import RESERVED_SCALE, LinkScheduler
from repro.core.priorities import SIABP, StaticPriority
from repro.router.config import RouterConfig
from repro.router.vc_memory import VCMemory

ARBITER_NAMES = [
    "coa", "coa-level-only", "coa-conflict-only", "coa-random-order",
    "coa-random-arb", "wfa", "wfa-plain", "wfa-multi", "islip", "islip-1",
    "islip-multi", "pim", "pim-1", "pim-multi", "greedy", "random",
]

COA_VARIANTS = [
    (ordering, arbitration)
    for ordering in ("level_conflict", "level_only", "conflict_only", "random")
    for arbitration in ("priority", "random")
]


def make(vcs=8, levels=4, ports=4):
    cfg = RouterConfig(num_ports=ports, vcs_per_link=vcs,
                       candidate_levels=levels, vc_buffer_depth=4)
    return cfg, VCMemory(cfg), LinkScheduler(cfg, SIABP())


def fill_random(cfg, mem, sched, rng, steps=150):
    """Random occupancy; returns (buffer, equivalent candidate objects)."""
    n, v = cfg.num_ports, cfg.vcs_per_link
    slots = rng.integers(1, 500, size=(n, v)).astype(np.int64)
    dests = rng.integers(0, n, size=(n, v)).astype(np.int64)
    reserved = rng.random((n, v)) < 0.5
    now = 0
    for _ in range(steps):
        now += 1
        p, vc = int(rng.integers(n)), int(rng.integers(v))
        if rng.random() < 0.65 and mem.free_space(p, vc):
            mem.push(p, vc, now, -1, False, now)
        elif mem.occupancy_of(p, vc):
            mem.pop(p, vc)
    buf = CandidateBuffer(n, cfg.candidate_levels)
    sched.select_into(buf, mem.heads_all(), slots, dests, now, reserved)
    cands = sched.select_batch(
        mem.heads_all(), slots, dests, now,
        np.where(reserved, RESERVED_SCALE, 1.0),
    )
    return buf, cands


def assert_draw_for_draw(arb_obj, arb_buf, cands, buf, seed):
    """Grants and post-call rng state must both match exactly."""
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    grants_obj = arb_obj.match(cands, rng_a)
    grants_buf = arb_buf.match_buffer(buf, rng_b)
    assert grants_buf == grants_obj
    assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestRegistryArbiters:
    @pytest.mark.parametrize("name", ARBITER_NAMES)
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_match_buffer_draw_for_draw(self, name, seed):
        cfg, mem, sched = make()
        rng = np.random.default_rng(100 + seed)
        buf, cands = fill_random(cfg, mem, sched, rng)
        # Two fresh instances: stateful arbiters (iSLIP pointers) must
        # start both paths from the same internal state.
        arb_obj = make_arbiter(name, cfg)
        arb_buf = make_arbiter(name, cfg)
        assert_draw_for_draw(arb_obj, arb_buf, cands, buf, seed)


class TestCoaVariants:
    @pytest.mark.parametrize("ordering,arbitration", COA_VARIANTS)
    @pytest.mark.parametrize("seed", [1, 42])
    def test_all_combos_draw_for_draw(self, ordering, arbitration, seed):
        cfg, mem, sched = make()
        rng = np.random.default_rng(1000 + seed)
        buf, cands = fill_random(cfg, mem, sched, rng)
        arb = CandidateOrderArbiter(
            cfg.num_ports, cfg.candidate_levels, ordering, arbitration
        )
        assert_draw_for_draw(arb, arb, cands, buf, seed)

    @pytest.mark.parametrize("ordering,arbitration", COA_VARIANTS)
    def test_equal_priority_adversarial_above_2_53(self, ordering, arbitration):
        """Ties at and just above 2**53 must tie-break identically.

        Keys 2**53 and 2**53 + 1 are equal in float64; an arbiter that
        compared through floats would see a 3-way tie where the exact
        path sees a winner plus a 2-way tie, changing which requests
        enter the rng tie-break.
        """
        cfg, mem, _ = make(vcs=6, levels=3)
        sched = LinkScheduler(cfg, StaticPriority())
        n, v = cfg.num_ports, cfg.vcs_per_link
        slots = np.ones((n, v), dtype=np.int64)
        # All inputs contend for output 0 with near-identical huge keys.
        slots[:, 0] = 2**53
        slots[:, 1] = 2**53 + 1
        slots[:, 2] = 2**53
        dests = np.zeros((n, v), dtype=np.int64)
        now = 1
        for p in range(n):
            for vc in range(3):
                mem.push(p, vc, 0, -1, False, 0)
        buf = CandidateBuffer(n, cfg.candidate_levels)
        sched.select_into(buf, mem.heads_all(), slots, dests, now)
        cands = sched.select_batch(mem.heads_all(), slots, dests, now)
        arb = CandidateOrderArbiter(
            cfg.num_ports, cfg.candidate_levels, ordering, arbitration
        )
        for seed in range(8):
            assert_draw_for_draw(arb, arb, cands, buf, seed)
            # The selection-matrix reference must agree too (object
            # priorities are exact Python ints on both sides).
            rng_a = np.random.default_rng(seed)
            rng_b = np.random.default_rng(seed)
            assert arb.match(cands, rng_a) == arb.match_reference(
                cands, rng_b
            )
            assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestDrainRecoveryOccupancies:
    def test_draw_for_draw_through_full_drains(self):
        """Equivalence holds through empty-link and drained states.

        Mirrors fault-recovery occupancy patterns: whole ports drained
        to empty (as teardown/recovery does), then refilled, with the
        buffer reused across fills.
        """
        cfg, mem, sched = make(vcs=6, levels=3, ports=3)
        n, v = cfg.num_ports, cfg.vcs_per_link
        rng = np.random.default_rng(9)
        slots = rng.integers(1, 50, size=(n, v)).astype(np.int64)
        dests = rng.integers(0, n, size=(n, v)).astype(np.int64)
        arb = CandidateOrderArbiter(n, cfg.candidate_levels)
        buf = CandidateBuffer(n, cfg.candidate_levels)
        now = 0
        for round_idx in range(25):
            now += 1
            if round_idx % 5 == 4:
                # Drain a whole port (fault recovery / teardown pattern).
                p = round_idx % n
                for vc in range(v):
                    while mem.occupancy_of(p, vc):
                        mem.pop(p, vc)
            else:
                for _ in range(6):
                    p, vc = int(rng.integers(n)), int(rng.integers(v))
                    if mem.free_space(p, vc):
                        mem.push(p, vc, now, -1, False, now)
            sched.select_into(buf, mem.heads_all(), slots, dests, now)
            cands = sched.select_batch(mem.heads_all(), slots, dests, now)
            assert_draw_for_draw(arb, arb, cands, buf, round_idx)


class TestFullSimDifferential:
    def test_fast_and_reference_sims_depart_identically(self):
        from repro.perf.harness import _departures, _make_sim

        sim_f, wl_f = _make_sim(4, 16, 4, "coa", "siabp", 0.8, 13, True)
        sim_r, wl_r = _make_sim(4, 16, 4, "coa", "siabp", 0.8, 13, False)
        assert _departures(sim_f, wl_f, 400) == _departures(sim_r, wl_r, 400)
