"""Measurement core of ``python -m repro perf``.

Three measurements per report:

* **cycles/sec** — the headline rate: a clean, uninstrumented
  :meth:`~repro.sim.SingleRouterSim.run` over a CBR workload, once for the
  buffer hot path (``fast_path=True``) and once for the object-based
  reference path.  The ratio is the speedup CI tracks.  Each path is
  measured ``repeats`` times with fast/reference runs interleaved, and the
  best (minimum-wall-time) repetition is reported — the standard defence
  against noisy neighbours on shared machines, where a single background
  burst would otherwise skew whichever path it happened to land on.
* **per-stage breakdown** — a second, instrumented loop wraps each pipeline
  stage (injection, credits, link scheduling, matching, crossbar transfer,
  NIC acceptance) in :func:`time.perf_counter_ns`.  The timer overhead makes
  the instrumented total slower than the headline run; the breakdown is for
  *relative* attribution only.
* **grant equivalence** — both paths are stepped side by side for a stretch
  of cycles and their departures compared flit for flit; a report with
  ``grants_identical: false`` means the zero-allocation path diverged from
  the reference and the speedup number is meaningless.
* **low-load idle-skip point** — the paper's 10%-load configuration, where
  most cycles are idle, measured with the event-skipping engine on
  (``skip_idle=True``) against the plain object-path reference loop.  The
  report also records ``skip_identical``: the skip-enabled run must be
  bit-identical (``SimResult.to_dict()`` and the RNG fingerprint) to the
  non-skipping run, or the speedup is meaningless.

cProfile is opt-in (:func:`profile_fast_path`) because profiling distorts
the numbers it reports.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
from dataclasses import asdict, dataclass, field
from pathlib import Path
from time import perf_counter_ns
from typing import Any

from ..sim.engine import RunControl
from ..sim.experiments import default_config
from ..sim.simulation import SingleRouterSim, inject_due_flits
from ..traffic.mixes import build_cbr_workload

__all__ = [
    "PathStats",
    "SkipStats",
    "PerfReport",
    "make_cbr_sim",
    "run_perf",
    "run_skip_check",
    "write_report",
    "check_regression",
    "profile_fast_path",
]

#: Pipeline stages the instrumented loop attributes time to, in order.
STAGES = (
    "injection",
    "credits",
    "link_schedule",
    "match",
    "transfer",
    "nic_accept",
)

#: Measured cycles for the full and ``--quick`` profiles.
_FULL_CYCLES = 20_000
_QUICK_CYCLES = 4_000
#: Interleaved timing repetitions per path (best-of-N reported).
_FULL_REPEATS = 5
_QUICK_REPEATS = 3
#: Cycles of side-by-side stepping for the grant-equivalence check.
_EQUIV_CYCLES = 2_000
#: Offered load of the paper's low-load point (mostly idle cycles).
_LOW_LOAD = 0.1
#: Full-run cycles for the skip-identity bit-identity check.
_SKIP_CHECK_CYCLES = 3_000


@dataclass
class PathStats:
    """One pipeline's measurements (best repetition)."""

    cycles_per_sec: float
    wall_s: float
    cycles: int
    departures: int
    #: Wall seconds of every timing repetition (best is ``wall_s``).
    wall_s_all: list[float] = field(default_factory=list)
    #: ns per stage from the instrumented loop (relative attribution).
    stages_ns: dict[str, int] = field(default_factory=dict)


@dataclass
class SkipStats:
    """Idle-skip engine measurements at the low-load paper point."""

    load: float
    cycles: int
    #: Skip-enabled fast path, best repetition.
    skip_cycles_per_sec: float
    #: Plain object-path reference loop, best repetition.
    reference_cycles_per_sec: float
    #: skip cycles/sec over reference cycles/sec.
    speedup: float
    #: Skip-enabled run bit-identical (SimResult + RNG fingerprint) to
    #: the non-skipping run on both pipelines.
    skip_identical: bool
    wall_s_skip: list[float] = field(default_factory=list)
    wall_s_reference: list[float] = field(default_factory=list)


@dataclass
class PerfReport:
    """Everything ``BENCH_perf.json`` records."""

    ports: int
    vcs: int
    levels: int
    arbiter: str
    scheme: str
    load: float
    seed: int
    cycles: int
    quick: bool
    repeats: int
    fast: PathStats
    reference: PathStats
    #: fast cycles/sec over reference cycles/sec.
    speedup: float
    #: Both paths departed identical flits over the checked stretch.
    grants_identical: bool
    #: Low-load idle-skip measurement (None when the point is disabled).
    low_load: SkipStats | None = None

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def make_cbr_sim(
    ports: int,
    vcs: int,
    levels: int,
    arbiter: str,
    scheme: str,
    load: float,
    seed: int,
    fast_path: bool = True,
    skip_idle: bool = False,
):
    """Build the benchmark's ``(sim, workload)`` pair from scratch.

    Public because the observability bench (``repro.obs.export``) times
    the exact same configuration with telemetry off/on.
    """
    config = default_config(
        num_ports=ports, vcs_per_link=vcs, candidate_levels=levels
    )
    sim = SingleRouterSim(
        config, arbiter=arbiter, scheme=scheme, seed=seed,
        fast_path=fast_path, skip_idle=skip_idle,
    )
    workload = build_cbr_workload(sim.router, load, sim.rng.workload)
    return sim, workload


_make_sim = make_cbr_sim


def _timed_run(sim: SingleRouterSim, workload, cycles: int) -> tuple[float, int]:
    """Uninstrumented run; (wall seconds, measured departures)."""
    control = RunControl(cycles=cycles, warmup_cycles=0)
    t0 = perf_counter_ns()
    result = sim.run(workload, control)
    wall_s = (perf_counter_ns() - t0) / 1e9
    return wall_s, int(result.flits["overall"])


def _staged_run(sim: SingleRouterSim, workload, cycles: int) -> dict[str, int]:
    """Instrumented cycle loop; total ns attributed to each stage."""
    router = sim.router
    feeds = workload.build_feeds(cycles, sim.rng.sources)
    arb_rng = sim.rng.arbiter
    nics = router.nics
    pointers = [0] * sim.config.num_ports
    fast = router.fast_path
    stages = dict.fromkeys(STAGES, 0)
    ns = perf_counter_ns

    for now in range(cycles):
        t0 = ns()
        inject_due_flits(feeds, pointers, nics, now)
        t1 = ns()
        router.credits.deliver(now)
        t2 = ns()
        if fast:
            buf = router._link_schedule_into(now)
            t3 = ns()
            grants = router.arbiter.match_buffer(buf, arb_rng)
        else:
            candidates = router._link_schedule(now)
            t3 = ns()
            grants = router.arbiter.match(candidates, arb_rng)
        t4 = ns()
        departures = router.crossbar.transfer(grants, router.vc_memory, now)
        if router.scheme_stateful and departures:
            router.notify_service(departures, now)
        for dep in departures:
            router.credits.schedule_return(dep.in_port, dep.vc, now)
        t5 = ns()
        router._accept_from_nics(now)
        t6 = ns()
        stages["injection"] += t1 - t0
        stages["credits"] += t2 - t1
        stages["link_schedule"] += t3 - t2
        stages["match"] += t4 - t3
        stages["transfer"] += t5 - t4
        stages["nic_accept"] += t6 - t5
    return stages


def _departures(sim: SingleRouterSim, workload, cycles: int) -> list[tuple]:
    """Step the router cycle by cycle, collecting departures as tuples."""
    router = sim.router
    feeds = workload.build_feeds(cycles, sim.rng.sources)
    arb_rng = sim.rng.arbiter
    nics = router.nics
    pointers = [0] * sim.config.num_ports
    out: list[tuple] = []
    for now in range(cycles):
        inject_due_flits(feeds, pointers, nics, now)
        for dep in router.step(now, arb_rng):
            out.append(
                (now, dep.in_port, dep.vc, dep.out_port, dep.gen_cycle,
                 dep.frame_id)
            )
    return out


def _measure_path(
    ports: int,
    vcs: int,
    levels: int,
    arbiter: str,
    scheme: str,
    load: float,
    seed: int,
    cycles: int,
    fast_path: bool,
    walls: list[float],
    departures: int,
) -> PathStats:
    """Assemble one path's stats from its timing repetitions."""
    sim, workload = _make_sim(
        ports, vcs, levels, arbiter, scheme, load, seed, fast_path
    )
    stages = _staged_run(sim, workload, cycles)
    best = min(walls)
    return PathStats(
        cycles_per_sec=cycles / best if best > 0 else float("inf"),
        wall_s=best,
        cycles=cycles,
        departures=departures,
        wall_s_all=walls,
        stages_ns=stages,
    )


def _run_signature(
    ports: int,
    vcs: int,
    levels: int,
    arbiter: str,
    scheme: str,
    load: float,
    seed: int,
    cycles: int,
    warmup: int,
    fast_path: bool,
    skip_idle: bool,
) -> tuple[str, str]:
    """(canonical SimResult JSON, RNG fingerprint) of one full run."""
    sim, workload = _make_sim(
        ports, vcs, levels, arbiter, scheme, load, seed, fast_path, skip_idle
    )
    result = sim.run(
        workload, RunControl(cycles=cycles, warmup_cycles=warmup)
    )
    return (
        json.dumps(result.to_dict(), sort_keys=True),
        sim.rng.state_fingerprint(),
    )


def run_skip_check(
    *,
    ports: int = 4,
    vcs: int = 64,
    levels: int = 4,
    arbiter: str = "coa",
    scheme: str = "siabp",
    load: float = _LOW_LOAD,
    seed: int = 0,
    cycles: int = _SKIP_CHECK_CYCLES,
    warmup: int | None = None,
) -> tuple[bool, str]:
    """Bit-identity gate for the idle-skip engine.

    Runs the configuration with ``skip_idle`` off and on, on both the
    buffer hot path and the object reference path, and compares the full
    :meth:`~repro.sim.SimResult.to_dict` payload *and* the RNG stream
    fingerprint.  Returns ``(ok, message)``; any divergence means the
    fast-forward engine consumed RNG or dropped state on a skipped
    cycle, and fails the gate.
    """
    warm = cycles // 4 if warmup is None else warmup
    for fast_path in (True, False):
        base = _run_signature(
            ports, vcs, levels, arbiter, scheme, load, seed, cycles, warm,
            fast_path, False,
        )
        skip = _run_signature(
            ports, vcs, levels, arbiter, scheme, load, seed, cycles, warm,
            fast_path, True,
        )
        if base != skip:
            path = "fast" if fast_path else "reference"
            what = "SimResult" if base[0] != skip[0] else "RNG fingerprint"
            return False, (
                f"skip divergence on the {path} path ({what}): "
                f"{arbiter}/{scheme} load={load} seed={seed}"
            )
    return True, (
        f"skip identity OK: {arbiter}/{scheme} load={load} seed={seed}, "
        f"{cycles} cycles on both paths"
    )


def _run_skip_bench(
    ports: int,
    vcs: int,
    levels: int,
    arbiter: str,
    scheme: str,
    load: float,
    seed: int,
    cycles: int,
    repeats: int,
) -> SkipStats:
    """Measure the idle-skip engine against the reference loop.

    Interleaves skip-enabled fast-path runs with plain object-path
    reference runs (the same noisy-neighbour defence as the headline
    measurement) and stamps the result with the bit-identity verdict.
    """
    skip_walls: list[float] = []
    ref_walls: list[float] = []
    for _ in range(repeats):
        sim, wl = _make_sim(
            ports, vcs, levels, arbiter, scheme, load, seed, True, True
        )
        wall, _ = _timed_run(sim, wl, cycles)
        skip_walls.append(wall)
        sim, wl = _make_sim(
            ports, vcs, levels, arbiter, scheme, load, seed, False, False
        )
        wall, _ = _timed_run(sim, wl, cycles)
        ref_walls.append(wall)
    identical, _ = run_skip_check(
        ports=ports, vcs=vcs, levels=levels, arbiter=arbiter, scheme=scheme,
        load=load, seed=seed, cycles=min(cycles, _SKIP_CHECK_CYCLES),
    )
    best_skip = min(skip_walls)
    best_ref = min(ref_walls)
    skip_cps = cycles / best_skip if best_skip > 0 else float("inf")
    ref_cps = cycles / best_ref if best_ref > 0 else float("inf")
    return SkipStats(
        load=load,
        cycles=cycles,
        skip_cycles_per_sec=skip_cps,
        reference_cycles_per_sec=ref_cps,
        speedup=skip_cps / ref_cps,
        skip_identical=identical,
        wall_s_skip=skip_walls,
        wall_s_reference=ref_walls,
    )


def run_perf(
    *,
    ports: int = 4,
    vcs: int = 64,
    levels: int = 4,
    arbiter: str = "coa",
    scheme: str = "siabp",
    load: float = 0.7,
    seed: int = 0,
    cycles: int | None = None,
    quick: bool = False,
    repeats: int | None = None,
    low_load: float | None = _LOW_LOAD,
) -> PerfReport:
    """Measure both pipelines and assemble the report."""
    n_cycles = cycles or (_QUICK_CYCLES if quick else _FULL_CYCLES)
    n_repeats = repeats or (_QUICK_REPEATS if quick else _FULL_REPEATS)

    # Interleave the timed repetitions (fast, reference, fast, ...) so a
    # burst of background load hits both paths, not just one; best-of-N
    # per path filters it out entirely.
    fast_walls: list[float] = []
    ref_walls: list[float] = []
    fast_deps = ref_deps = 0
    for _ in range(n_repeats):
        sim, wl = _make_sim(ports, vcs, levels, arbiter, scheme, load, seed, True)
        wall, fast_deps = _timed_run(sim, wl, n_cycles)
        fast_walls.append(wall)
        sim, wl = _make_sim(ports, vcs, levels, arbiter, scheme, load, seed, False)
        wall, ref_deps = _timed_run(sim, wl, n_cycles)
        ref_walls.append(wall)

    fast = _measure_path(
        ports, vcs, levels, arbiter, scheme, load, seed, n_cycles, True,
        fast_walls, fast_deps,
    )
    reference = _measure_path(
        ports, vcs, levels, arbiter, scheme, load, seed, n_cycles, False,
        ref_walls, ref_deps,
    )

    equiv_cycles = min(n_cycles, _EQUIV_CYCLES)
    sim_f, wl_f = _make_sim(
        ports, vcs, levels, arbiter, scheme, load, seed, True
    )
    sim_r, wl_r = _make_sim(
        ports, vcs, levels, arbiter, scheme, load, seed, False
    )
    identical = _departures(sim_f, wl_f, equiv_cycles) == _departures(
        sim_r, wl_r, equiv_cycles
    )

    skip_stats = None
    if low_load is not None:
        skip_stats = _run_skip_bench(
            ports, vcs, levels, arbiter, scheme, low_load, seed, n_cycles,
            n_repeats,
        )

    return PerfReport(
        ports=ports,
        vcs=vcs,
        levels=levels,
        arbiter=arbiter,
        scheme=scheme,
        load=load,
        seed=seed,
        cycles=n_cycles,
        quick=quick,
        repeats=n_repeats,
        fast=fast,
        reference=reference,
        speedup=fast.cycles_per_sec / reference.cycles_per_sec,
        grants_identical=identical,
        low_load=skip_stats,
    )


def profile_fast_path(
    *,
    ports: int = 4,
    vcs: int = 64,
    levels: int = 4,
    arbiter: str = "coa",
    scheme: str = "siabp",
    load: float = 0.7,
    seed: int = 0,
    cycles: int = _QUICK_CYCLES,
    top: int = 25,
) -> str:
    """cProfile the fast-path run; cumulative-time top-``top`` as text."""
    sim, workload = _make_sim(
        ports, vcs, levels, arbiter, scheme, load, seed, True
    )
    control = RunControl(cycles=cycles, warmup_cycles=0)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(workload, control)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


def write_report(report: PerfReport, path: str | Path) -> Path:
    """Serialize the report to JSON (the ``BENCH_perf.json`` format)."""
    path = Path(path)
    path.write_text(json.dumps(report.to_dict(), indent=2) + "\n",
                    encoding="utf-8")
    return path


def check_regression(
    report: PerfReport,
    baseline_path: str | Path,
    max_regression: float = 0.3,
) -> tuple[bool, str]:
    """Compare fast-path cycles/sec against a committed baseline.

    Returns ``(ok, message)``; ``ok`` is False when the current rate fell
    more than ``max_regression`` (fraction) below the baseline's.
    """
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    base_cps = float(baseline["fast"]["cycles_per_sec"])
    cur_cps = report.fast.cycles_per_sec
    floor = base_cps * (1.0 - max_regression)
    if cur_cps < floor:
        return False, (
            f"cycles/sec regression: {cur_cps:,.0f} < {floor:,.0f} "
            f"(baseline {base_cps:,.0f}, tolerance {max_regression:.0%})"
        )
    return True, (
        f"cycles/sec OK: {cur_cps:,.0f} vs baseline {base_cps:,.0f} "
        f"(floor {floor:,.0f})"
    )
