"""The fault schedule: a deterministic, replayable log of every event.

Reproducibility contract: two runs with the same seed and the same
:class:`~repro.faults.FaultConfig` produce *byte-identical* schedules
(:meth:`FaultSchedule.text`).  Every injected fault, every detection and
every recovery action is recorded with a monotonically increasing
sequence number, so a failing robustness run can be diagnosed (and
re-run) from its seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from .models import FaultKind

__all__ = ["FaultEvent", "FaultSchedule"]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One recorded fault/detection/recovery event."""

    seq: int
    cycle: int
    kind: FaultKind
    #: Location, e.g. ``"port=2 vc=7"`` or ``"link=1->3"``.
    where: str
    #: Free-form detail (bit index, correction delta, new route, ...).
    detail: str = ""

    def line(self) -> str:
        base = f"{self.seq:06d} @{self.cycle:>8} {self.kind.value:<22} {self.where}"
        return f"{base} | {self.detail}" if self.detail else base

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.line()


class FaultSchedule:
    """Append-only event log shared by injector, detectors and recovery."""

    def __init__(self) -> None:
        self._events: list[FaultEvent] = []
        self._counts: dict[FaultKind, int] = {}

    def record(
        self, cycle: int, kind: FaultKind, where: str, detail: str = ""
    ) -> FaultEvent:
        event = FaultEvent(len(self._events), cycle, kind, where, detail)
        self._events.append(event)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        return event

    # ------------------------------------------------------------------

    @property
    def events(self) -> list[FaultEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def count(self, kind: FaultKind) -> int:
        """Events recorded of one kind."""
        return self._counts.get(kind, 0)

    def by_kind(self, kind: FaultKind) -> list[FaultEvent]:
        return [e for e in self._events if e.kind is kind]

    def counts_by_kind(self) -> dict[str, int]:
        """Event counts keyed by kind value, insertion-ordered."""
        return {kind.value: n for kind, n in self._counts.items()}

    def lines(self) -> list[str]:
        return [e.line() for e in self._events]

    def text(self) -> str:
        """The canonical textual form (byte-identical across replays)."""
        return "\n".join(self.lines())

    def tail(self, n: int = 20) -> str:
        return "\n".join(self.lines()[-n:])
