"""Tests for the sanity baselines, the registry, and the hardware model."""

import numpy as np
import pytest

from repro.core import hwcost
from repro.core.matching import Candidate, is_conflict_free, is_maximal
from repro.core.registry import (
    ARBITER_NAMES,
    SCHEME_NAMES,
    make_arbiter,
    make_scheme,
)
from repro.core.rr import GreedyPriorityMatcher, RandomMatcher
from repro.router.config import RouterConfig


def cand(i, v, o, prio=1.0, level=0):
    return Candidate(i, v, o, prio, level)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestGreedy:
    def test_grants_by_priority(self):
        greedy = GreedyPriorityMatcher()
        cands = [
            [cand(0, 0, 1, prio=5.0)],
            [cand(1, 0, 1, prio=9.0), cand(1, 1, 0, prio=2.0, level=1)],
        ]
        grants = greedy.match(cands, rng())
        assert grants[0] == (1, 0, 1)  # highest priority first
        assert (0, 0, 1) not in grants  # output taken

    def test_fuzz_valid_and_maximal(self):
        generator = rng(1)
        greedy = GreedyPriorityMatcher()
        for _ in range(200):
            cands = _random_candidates(generator, 4)
            grants = greedy.match(cands, generator)
            assert is_conflict_free(grants, 4)
            assert is_maximal(cands, grants, 4)


class TestRandomMatcher:
    def test_fuzz_valid_and_maximal(self):
        generator = rng(2)
        matcher = RandomMatcher()
        for _ in range(200):
            cands = _random_candidates(generator, 4)
            grants = matcher.match(cands, generator)
            assert is_conflict_free(grants, 4)
            assert is_maximal(cands, grants, 4)

    def test_spreads_choices(self):
        matcher = RandomMatcher()
        cands = [[cand(0, 0, 0)], [cand(1, 0, 0)]]
        winners = {matcher.match(cands, rng(s))[0][0] for s in range(64)}
        assert winners == {0, 1}


class TestRegistry:
    def test_all_arbiters_instantiate_and_match(self):
        cfg = RouterConfig(num_ports=4, vcs_per_link=8, candidate_levels=4)
        generator = rng(3)
        cands = _random_candidates(generator, 4)
        for name in ARBITER_NAMES:
            arbiter = make_arbiter(name, cfg)
            grants = arbiter.match(cands, generator)
            assert is_conflict_free(grants, 4), name

    def test_all_schemes_instantiate_and_compute(self):
        cfg = RouterConfig()
        for name in SCHEME_NAMES:
            scheme = make_scheme(name, cfg)
            if scheme.stateful:
                # Stateful (fair-queueing) schemes rank from internal
                # per-VC state, not the (slots, age) row — compute() is
                # deliberately unimplemented for them.
                with pytest.raises(NotImplementedError):
                    scheme.compute(np.array([1, 5]), np.array([0, 100]))
                occ = np.zeros(cfg.vcs_per_link, dtype=bool)
                occ[:2] = True
                out = scheme.keys_port(0, occ)
                assert out.shape == (cfg.vcs_per_link,)
            else:
                out = scheme.compute(np.array([1, 5]), np.array([0, 100]))
                assert out.shape == (2,)

    def test_unknown_names_raise(self):
        cfg = RouterConfig()
        with pytest.raises(ValueError, match="unknown arbiter"):
            make_arbiter("bogus", cfg)
        with pytest.raises(ValueError, match="unknown scheme"):
            make_scheme("bogus", cfg)


class TestHwCost:
    def test_siabp_much_cheaper_than_iabp(self):
        """H1: the paper (via its ref [4]) reports ~an order of magnitude
        in area and ~38x in delay; the gate model must reproduce the
        qualitative gap."""
        iabp = hwcost.iabp_cost()
        siabp = hwcost.siabp_cost()
        assert iabp.area_ge / siabp.area_ge > 5.0
        assert iabp.delay_levels / siabp.delay_levels > 4.0

    def test_gap_grows_with_width(self):
        narrow = hwcost.iabp_cost(priority_bits=12).area_ge / \
            hwcost.siabp_cost(priority_bits=12).area_ge
        wide = hwcost.iabp_cost(priority_bits=48).area_ge / \
            hwcost.siabp_cost(priority_bits=48).area_ge
        assert wide > narrow  # divider is quadratic, shifter linear

    def test_dispatch(self):
        assert hwcost.priority_update_cost("iabp").name == "iabp"
        assert hwcost.priority_update_cost("siabp").name == "siabp"
        # Every registered scheme now has a gate-count model; the
        # dispatcher still rejects names the registry does not know.
        for name in SCHEME_NAMES:
            assert hwcost.priority_update_cost(name).area_ge > 0
        with pytest.raises(ValueError, match="no hardware model"):
            hwcost.priority_update_cost("bogus")

    def test_wfa_cheaper_than_coa(self):
        """The paper's §6: COA's priority awareness costs hardware; the
        WFA array is the cheap baseline."""
        coa = hwcost.coa_cost(num_ports=4, levels=4)
        wfa = hwcost.wfa_cost(num_ports=4)
        assert wfa.area_ge < coa.area_ge
        assert wfa.delay_levels < coa.delay_levels

    def test_block_cost_composition(self):
        a = hwcost.BlockCost("a", 10.0, 2.0)
        b = hwcost.BlockCost("b", 5.0, 3.0)
        combined = a + b
        assert combined.area_ge == 15.0
        assert combined.delay_levels == 5.0
        assert a.scaled(4).area_ge == 40.0
        assert a.scaled(4).delay_levels == 2.0


def _random_candidates(generator, n):
    out = []
    for p in range(n):
        k = int(generator.integers(0, n + 1))
        out.append(
            [cand(p, lvl, int(generator.integers(n)),
                  float(generator.integers(1, 50)), lvl) for lvl in range(k)]
        )
    return out
