"""End-to-end single-router simulation (the paper's Fig. 4 testbed).

One :class:`SingleRouterSim` owns an :class:`~repro.router.MMRouter` (with
its NICs), builds a workload onto it, and runs the cycle loop:

    per flit cycle t:
        1. deposit the flits each source generates at t into its NIC;
        2. step the router (credits -> scheduling -> crossbar -> NIC link
           transfer);
        3. account each departure in the metrics collector.

Results come back as a :class:`SimResult` holding the per-group metric
summaries the figures plot.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any

from ..core.matching import Arbiter
from ..core.priorities import PriorityScheme
from ..router.config import RouterConfig
from ..router.router import MMRouter
from ..traffic.mixes import Workload
from .engine import RngStreams, RunControl
from .metrics import MetricsCollector

__all__ = ["SimResult", "SingleRouterSim"]


@dataclass
class SimResult:
    """Summary of one run, in the figures' units."""

    config: RouterConfig
    arbiter: str
    scheme: str
    seed: int
    cycles: int
    warmup_cycles: int
    #: Offered load averaged over input ports (flits/cycle = link fraction).
    offered_load: float
    #: Average crossbar utilization after warmup (Fig. 8 y-axis).
    utilization: float
    #: Accepted throughput after warmup, flits/cycle averaged over ports.
    throughput: float
    #: Mean flit delay since generation, microseconds, per group + overall.
    flit_delay_us: dict[str, float]
    #: 99th-percentile flit delay (reservoir estimate), microseconds.
    flit_delay_p99_us: dict[str, float]
    #: Mean frame delay since generation, microseconds (VBR groups).
    frame_delay_us: dict[str, float]
    #: Mean adjacent-frame jitter, microseconds.
    jitter_us: dict[str, float]
    #: Flits / frames measured per group.
    flits: dict[str, int]
    frames: dict[str, int]
    #: Flits still queued in NICs + router when the run ended.
    backlog: int
    #: Number of established connections.
    connections: int
    #: Fault/recovery counters (empty for healthy runs; see
    #: :class:`repro.sim.metrics.FaultCounters`).
    fault: dict[str, int] = field(default_factory=dict)
    #: Peak QoS-degradation level reached (0 = none, 1 = best-effort
    #: shed, 2 = VBR clamped to its average reservation).
    degradation_level: int = 0

    def delay_of(self, label: str) -> float:
        return self.flit_delay_us[label]

    # ------------------------------------------------------------------
    # Serialization (campaign store artifacts, JSON exports)
    # ------------------------------------------------------------------

    #: Float fields that may legitimately be NaN (e.g. a class that saw
    #: no traffic) and are normalized to ``null`` in serialized form so
    #: artifacts stay strict JSON (``json.dumps(..., allow_nan=False)``).
    _NULLABLE_SCALARS = ("offered_load", "utilization", "throughput")
    _NULLABLE_MAPS = (
        "flit_delay_us",
        "flit_delay_p99_us",
        "frame_delay_us",
        "jitter_us",
    )

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form: strict JSON, ``from_dict`` inverts it.

        The router config flattens to its dataclass fields; everything
        else is scalars and ``str -> number`` maps.  Non-finite floats
        (NaN means, ±inf from empty streaming stats) become ``null`` —
        ``Infinity``/``NaN`` are not JSON and choke strict parsers —
        and ``from_dict`` maps ``null`` back to NaN.
        """

        def safe(value: Any) -> Any:
            if isinstance(value, float) and not math.isfinite(value):
                return None
            return value

        out = asdict(self)
        out["config"] = asdict(self.config)
        for key in self._NULLABLE_SCALARS:
            out[key] = safe(out[key])
        for key in self._NULLABLE_MAPS:
            out[key] = {k: safe(v) for k, v in out[key].items()}
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimResult":
        """Rebuild a :class:`SimResult` from :meth:`to_dict` output."""
        fields = dict(data)
        fields["config"] = RouterConfig(**fields["config"])
        for key in ("flits", "frames", "fault"):
            fields[key] = {k: int(v) for k, v in fields.get(key, {}).items()}
        nan = float("nan")
        for key in cls._NULLABLE_SCALARS:
            if fields.get(key) is None:
                fields[key] = nan
        for key in cls._NULLABLE_MAPS:
            fields[key] = {
                k: (nan if v is None else v) for k, v in fields[key].items()
            }
        return cls(**fields)

    @property
    def overall_flit_delay_us(self) -> float:
        return self.flit_delay_us["overall"]

    @property
    def overall_frame_delay_us(self) -> float:
        return self.frame_delay_us["overall"]

    @property
    def overall_jitter_us(self) -> float:
        return self.jitter_us["overall"]

    @property
    def normalized_throughput(self) -> float:
        """Throughput / offered load (1.0 = keeping up; <1 = saturated)."""
        if self.offered_load == 0:
            return float("nan")
        return self.throughput / self.offered_load


class SingleRouterSim:
    """Builds and runs one router + NICs + workload instance."""

    def __init__(
        self,
        config: RouterConfig,
        arbiter: Arbiter | str = "coa",
        scheme: PriorityScheme | str = "siabp",
        seed: int = 0,
        fast_path: bool = True,
    ) -> None:
        self.config = config
        self.router = MMRouter(config, arbiter, scheme, fast_path=fast_path)
        self.rng = RngStreams(seed)
        self.seed = seed

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        control: RunControl,
        telemetry=None,
        sessions=None,
    ) -> SimResult:
        """Run the cycle loop and summarize.

        The workload's connections must already be established on this
        sim's router (the ``build_*_workload`` helpers do that).

        ``telemetry`` optionally takes a
        :class:`~repro.obs.export.TelemetrySession` (duck-typed: anything
        with ``begin``/``on_cycle``/``finish``).  With ``None`` the loop
        below runs untouched — the dispatch happens once, outside the
        loop, so the disabled path stays grant- and RNG-state-identical
        to an uninstrumented build (asserted by the differential tests).

        ``sessions`` optionally takes a
        :class:`~repro.sessions.signaling.SessionEngine`; the run then
        processes dynamic session lifecycles (arrivals, admission,
        injection, drain, teardown, renegotiation) around the same
        pipeline, in the same twin-loop style — ``sessions=None`` costs
        nothing.  Session statistics live on the engine, not in the
        :class:`SimResult`, so a zero-churn engine leaves the result
        bit-identical to a plain run.
        """
        if sessions is not None:
            return self._run_sessions(workload, control, sessions, telemetry)
        if telemetry is not None:
            return self._run_instrumented(workload, control, telemetry)
        router = self.router
        config = self.config
        feeds = workload.build_feeds(control.cycles, self.rng.sources)
        labels = workload.labels_by_conn()
        conn_of_vc = {
            (item.conn.in_port, item.conn.vc): item.conn.conn_id
            for item in workload.loads
        }
        metrics = MetricsCollector(
            config, labels, conn_of_vc, measure_from=control.warmup_cycles
        )
        arb_rng = self.rng.arbiter
        nics = router.nics
        pointers = [0] * config.num_ports
        counters_reset = control.warmup_cycles == 0
        if counters_reset:
            router.crossbar.reset_counters()

        for now in range(control.cycles):
            if not counters_reset and now == control.warmup_cycles:
                router.crossbar.reset_counters()
                counters_reset = True
            # 1. Source injection into the NICs.
            for port, feed in enumerate(feeds):
                ptr = pointers[port]
                cycles = feed.cycles
                end = len(cycles)
                nic = nics[port]
                while ptr < end and cycles[ptr] <= now:
                    nic.inject(
                        int(feed.vcs[ptr]),
                        int(cycles[ptr]),
                        int(feed.frame_ids[ptr]),
                        bool(feed.frame_last[ptr]),
                    )
                    ptr += 1
                pointers[port] = ptr
            # 2. Router pipeline.  3. Metrics.
            for dep in router.step(now, arb_rng):
                metrics.record(dep, now)

        return self._summarize(workload, control, metrics)

    def _run_instrumented(
        self, workload: Workload, control: RunControl, telemetry
    ) -> SimResult:
        """The telemetry twin of :meth:`run`.

        Deliberately a duplicate of the plain loop plus one
        ``telemetry.on_cycle`` call per cycle: folding a per-cycle
        ``if telemetry`` branch into the shared loop would tax every
        uninstrumented run, and the telemetry budget (<5% enabled, ~0%
        disabled) is enforced by ``python -m repro obs --bench``.
        """
        router = self.router
        config = self.config
        feeds = workload.build_feeds(control.cycles, self.rng.sources)
        labels = workload.labels_by_conn()
        conn_of_vc = {
            (item.conn.in_port, item.conn.vc): item.conn.conn_id
            for item in workload.loads
        }
        metrics = MetricsCollector(
            config, labels, conn_of_vc, measure_from=control.warmup_cycles
        )
        telemetry.begin(router, workload, metrics, control)
        arb_rng = self.rng.arbiter
        nics = router.nics
        pointers = [0] * config.num_ports
        counters_reset = control.warmup_cycles == 0
        if counters_reset:
            router.crossbar.reset_counters()

        for now in range(control.cycles):
            if not counters_reset and now == control.warmup_cycles:
                router.crossbar.reset_counters()
                counters_reset = True
            # 1. Source injection into the NICs.
            for port, feed in enumerate(feeds):
                ptr = pointers[port]
                cycles = feed.cycles
                end = len(cycles)
                nic = nics[port]
                while ptr < end and cycles[ptr] <= now:
                    nic.inject(
                        int(feed.vcs[ptr]),
                        int(cycles[ptr]),
                        int(feed.frame_ids[ptr]),
                        bool(feed.frame_last[ptr]),
                    )
                    ptr += 1
                pointers[port] = ptr
            # 2. Router pipeline.  3. Metrics.  4. Telemetry.
            departures = router.step(now, arb_rng)
            for dep in departures:
                metrics.record(dep, now)
            telemetry.on_cycle(now, departures)

        result = self._summarize(workload, control, metrics)
        telemetry.finish(result)
        return result

    def _run_sessions(
        self, workload: Workload, control: RunControl, engine, telemetry
    ) -> SimResult:
        """The session twin of :meth:`run` (plus optional telemetry).

        Same loop body with three engine hooks around it: signaling and
        arrivals before injection, dynamic-session injection after the
        static feeds, and departure feedback after metrics.  Kept as a
        separate twin for the same reason as the telemetry loop — the
        plain path must not pay a single branch for a feature it does
        not use (``python -m repro sessions --bench`` gates it).
        """
        router = self.router
        config = self.config
        feeds = workload.build_feeds(control.cycles, self.rng.sources)
        labels = workload.labels_by_conn()
        conn_of_vc = {
            (item.conn.in_port, item.conn.vc): item.conn.conn_id
            for item in workload.loads
        }
        metrics = MetricsCollector(
            config, labels, conn_of_vc, measure_from=control.warmup_cycles
        )
        if telemetry is not None:
            telemetry.begin(router, workload, metrics, control)
        engine.begin(router, workload, metrics, control, telemetry)
        arb_rng = self.rng.arbiter
        nics = router.nics
        pointers = [0] * config.num_ports
        counters_reset = control.warmup_cycles == 0
        if counters_reset:
            router.crossbar.reset_counters()

        for now in range(control.cycles):
            if not counters_reset and now == control.warmup_cycles:
                router.crossbar.reset_counters()
                counters_reset = True
            # 0. Session signaling: setups, teardowns, renegotiations.
            engine.on_cycle(now)
            # 1. Source injection into the NICs (static, then dynamic).
            for port, feed in enumerate(feeds):
                ptr = pointers[port]
                cycles = feed.cycles
                end = len(cycles)
                nic = nics[port]
                while ptr < end and cycles[ptr] <= now:
                    nic.inject(
                        int(feed.vcs[ptr]),
                        int(cycles[ptr]),
                        int(feed.frame_ids[ptr]),
                        bool(feed.frame_last[ptr]),
                    )
                    ptr += 1
                pointers[port] = ptr
            engine.inject(now)
            # 2. Router pipeline.  3. Metrics.  4. Feedback / telemetry.
            departures = router.step(now, arb_rng)
            for dep in departures:
                metrics.record(dep, now)
            engine.on_departures(now, departures)
            if telemetry is not None:
                telemetry.on_cycle(now, departures)

        result = self._summarize(workload, control, metrics)
        engine.finish()
        if telemetry is not None:
            telemetry.finish(result)
        return result

    # ------------------------------------------------------------------

    def _summarize(
        self, workload: Workload, control: RunControl, metrics: MetricsCollector
    ) -> SimResult:
        config = self.config
        router = self.router

        def per_group(pick) -> dict[str, float]:
            out = {
                label: pick(group) for label, group in sorted(metrics.groups.items())
            }
            out["overall"] = pick(metrics.overall)
            return out

        def us(stat_mean_cycles: float) -> float:
            return config.cycles_to_us(stat_mean_cycles)

        return SimResult(
            config=config,
            arbiter=router.arbiter.name,
            scheme=router.scheme.name,
            seed=self.seed,
            cycles=control.cycles,
            warmup_cycles=control.warmup_cycles,
            offered_load=workload.mean_offered_load(),
            utilization=router.crossbar.utilization,
            throughput=metrics.measured_departures
            / (control.measured_cycles * config.num_ports),
            flit_delay_us=per_group(lambda g: us(g.flit_delay.mean)),
            flit_delay_p99_us=per_group(lambda g: us(g.flit_delay.percentile(99))),
            frame_delay_us=per_group(lambda g: us(g.frame_delay.mean)),
            jitter_us=per_group(lambda g: us(g.jitter.mean)),
            flits=per_group(lambda g: g.flits),
            frames=per_group(lambda g: g.frames),
            backlog=router.nic_backlog() + router.buffered_flits(),
            connections=len(workload),
        )
