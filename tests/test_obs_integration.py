"""Integration tests for the observability subsystem (repro.obs).

The load-bearing guarantee: telemetry is a pure observer.  An
instrumented run must produce bit-identical results — and leave the RNG
streams in bit-identical states — compared to an uninstrumented one.
"""

import json

import pytest

from repro.campaign import CampaignPlan, ResultStore, WorkloadSpec, run_campaign
from repro.faults import FaultConfig, FaultySingleRouterSim
from repro.faults.schedule import FaultSchedule
from repro.faults.watchdog import SimWatchdog
from repro.obs import (
    TELEMETRY_SCHEMA,
    LogHistogram,
    TelemetryConfig,
    TelemetrySession,
    validate_timeseries_jsonl,
)
from repro.router import RouterConfig
from repro.sim.engine import RunControl
from repro.sim.simulation import SingleRouterSim
from repro.sim.sweep import run_load_sweep
from repro.traffic.mixes import build_cbr_workload


def small_config():
    return RouterConfig(num_ports=4, vcs_per_link=48, candidate_levels=4)


CONTROL = RunControl(cycles=2_000, warmup_cycles=400)


def run_healthy(seed=3, telemetry=None, load=0.6):
    sim = SingleRouterSim(small_config(), arbiter="coa", seed=seed)
    wl = build_cbr_workload(sim.router, load, sim.rng.workload)
    result = sim.run(wl, CONTROL, telemetry=telemetry)
    return sim, result


class TestDifferential:
    def test_enabled_run_is_bit_identical_to_disabled(self):
        """The PR's acceptance gate: same results, same RNG state."""
        sim_plain, plain = run_healthy()
        session = TelemetrySession(TelemetryConfig(stride=64))
        sim_inst, instrumented = run_healthy(telemetry=session)
        assert instrumented.to_dict() == plain.to_dict()
        assert (
            sim_inst.rng.state_fingerprint()
            == sim_plain.rng.state_fingerprint()
        )

    def test_explicit_none_is_the_plain_path(self):
        sim_a, a = run_healthy()
        sim_b, b = run_healthy(telemetry=None)
        assert a.to_dict() == b.to_dict()
        assert sim_a.rng.state_fingerprint() == sim_b.rng.state_fingerprint()

    def test_faulty_enabled_run_matches_disabled(self):
        faults = FaultConfig(corruption_rate=0.01, credit_loss_rate=0.002)

        def run(telemetry):
            sim = FaultySingleRouterSim(
                small_config(), arbiter="coa", seed=7, faults=faults
            )
            wl = build_cbr_workload(sim.router, 0.5, sim.rng.workload)
            result = sim.run(wl, CONTROL, telemetry=telemetry)
            return sim, result

        sim_plain, plain = run(None)
        session = TelemetrySession()
        sim_inst, instrumented = run(session)
        assert instrumented.to_dict() == plain.to_dict()
        assert (
            sim_inst.rng.state_fingerprint()
            == sim_plain.rng.state_fingerprint()
        )
        # And the session actually observed the run.
        assert session.qos.connections
        assert session.timeseries.samples_taken > 0


class TestSessionLifecycle:
    def test_payload_schema_and_determinism(self):
        session = TelemetrySession(TelemetryConfig(stride=100))
        run_healthy(telemetry=session)
        payload = session.to_payload()
        assert payload["schema"] == TELEMETRY_SCHEMA
        assert payload["config"]["stride"] == 100
        assert payload["run"] == {"cycles": 2_000, "warmup_cycles": 400}
        assert payload["qos"]["classes"]
        assert payload["histograms"]["flit_delay"]["overall"]["n"] > 0
        assert payload["timeseries"]["rows"]
        assert payload["flight"]["dumps"] == []
        # Deterministic: a second identical run yields identical bytes.
        session2 = TelemetrySession(TelemetryConfig(stride=100))
        run_healthy(telemetry=session2)
        dump = json.dumps(payload, sort_keys=True, allow_nan=False)
        dump2 = json.dumps(session2.to_payload(), sort_keys=True,
                           allow_nan=False)
        assert dump == dump2

    def test_histograms_match_metrics_collector(self):
        session = TelemetrySession()
        _, result = run_healthy(telemetry=session)
        hist = LogHistogram.from_dict(
            session.to_payload()["histograms"]["flit_delay"]["overall"]
        )
        assert hist.n == result.flits["overall"]

    def test_export_writes_all_artifacts(self, tmp_path):
        session = TelemetrySession()
        run_healthy(telemetry=session)
        paths = session.export(tmp_path / "obs")
        assert set(paths) == {
            "telemetry.json", "qos.json", "timeseries.jsonl",
            "timeseries.csv", "flight.txt",
        }
        for path in paths.values():
            assert path.exists()
        text = (tmp_path / "obs" / "timeseries.jsonl").read_text()
        assert validate_timeseries_jsonl(text) == []
        full = json.loads((tmp_path / "obs" / "telemetry.json").read_text())
        assert full["schema"] == TELEMETRY_SCHEMA
        assert "no flight dumps" in (tmp_path / "obs" / "flight.txt").read_text()

    def test_payload_before_begin_raises(self):
        with pytest.raises(RuntimeError):
            TelemetrySession().to_payload()

    def test_watchdog_trip_triggers_flight_dump(self):
        session = TelemetrySession()
        sim, _ = run_healthy(telemetry=session)
        dog = SimWatchdog(sim.router, FaultSchedule(), stall_limit=10,
                          check_interval=1)
        dog.on_trip = session.on_watchdog_trip
        with pytest.raises(Exception):
            # Impossible conservation ledger: the watchdog must trip and,
            # through on_trip, leave a flight dump before raising.
            dog.check(now=2_000, injected=10**6, departed=0, dropped=0)
        assert len(session.flight.dumps) == 1
        dump = session.flight.dumps[0]
        assert dump.reason == "watchdog:conservation"
        assert "router state at cycle 2000" in dump.router_state


class TestQosBurstIntegration:
    def test_burst_during_real_run_dumps_flight(self):
        # Saturating load + tiny deadline scale: violations are certain.
        session = TelemetrySession(TelemetryConfig(
            deadline_scale=0.01, burst_window=2_000, burst_threshold=5,
        ))
        run_healthy(telemetry=session, load=0.85)
        assert session.qos.total_violations() > 0
        assert session.qos.bursts >= 1
        assert any(d.reason == "qos_burst" for d in session.flight.dumps)


class TestCampaignTelemetry:
    def make_plan(self, name="obs-test"):
        return CampaignPlan.grid(
            name, small_config(), ("coa",), (0.5, 0.7), (0,),
            WorkloadSpec.cbr(), CONTROL,
        )

    def test_outcomes_carry_payloads_and_store_persists(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = run_campaign(
            self.make_plan(), store=store, write_manifest=False,
            telemetry=TelemetryConfig(),
        )
        assert all(o.telemetry for o in result.outcomes)
        for o in result.outcomes:
            assert o.telemetry["schema"] == TELEMETRY_SCHEMA
            assert store.telemetry_path_for(o.key).exists()
            assert store.get_telemetry(o.key) == o.telemetry

    def test_cached_result_without_telemetry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = self.make_plan()
        first = run_campaign(plan, store=store, write_manifest=False)
        assert first.misses == 2
        # Results are cached, but a telemetry run cannot be served from
        # them alone: every point recomputes.
        second = run_campaign(
            plan, store=store, write_manifest=False,
            telemetry=TelemetryConfig(),
        )
        assert second.misses == 2
        assert all(o.telemetry for o in second.outcomes)
        # Third run hits: both result and telemetry artifacts exist now.
        third = run_campaign(
            plan, store=store, write_manifest=False,
            telemetry=TelemetryConfig(),
        )
        assert third.hits == 2
        assert all(o.telemetry for o in third.outcomes)
        # A plain run still hits too and carries no telemetry.
        fourth = run_campaign(plan, store=store, write_manifest=False)
        assert fourth.hits == 2
        assert all(o.telemetry is None for o in fourth.outcomes)

    def test_telemetry_results_unchanged_vs_plain_campaign(self, tmp_path):
        plain = run_campaign(self.make_plan(), write_manifest=False)
        instrumented = run_campaign(
            self.make_plan(), write_manifest=False,
            telemetry=TelemetryConfig(),
        )
        for a, b in zip(plain.outcomes, instrumented.outcomes):
            assert a.result.to_dict() == b.result.to_dict()

    def test_serial_and_parallel_telemetry_byte_identical(self, tmp_path):
        serial_store = ResultStore(tmp_path / "serial")
        parallel_store = ResultStore(tmp_path / "parallel")
        run_campaign(
            self.make_plan(), store=serial_store, write_manifest=False,
            telemetry=TelemetryConfig(), jobs=1,
        )
        run_campaign(
            self.make_plan(), store=parallel_store, write_manifest=False,
            telemetry=TelemetryConfig(), jobs=2,
        )
        serial_files = sorted(
            p.relative_to(serial_store.telemetry_dir)
            for p in serial_store.telemetry_dir.rglob("*.json")
        )
        parallel_files = sorted(
            p.relative_to(parallel_store.telemetry_dir)
            for p in parallel_store.telemetry_dir.rglob("*.json")
        )
        assert serial_files == parallel_files and serial_files
        for rel in serial_files:
            assert (
                (serial_store.telemetry_dir / rel).read_bytes()
                == (parallel_store.telemetry_dir / rel).read_bytes()
            )

    def test_corrupt_telemetry_artifact_recomputes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        plan = self.make_plan()
        run_campaign(plan, store=store, write_manifest=False,
                     telemetry=TelemetryConfig())
        key = plan.points[0].key()
        store.telemetry_path_for(key).write_text("{truncated", encoding="utf-8")
        assert store.get_telemetry(key) is None
        assert store.corrupt_dropped == 1
        again = run_campaign(plan, store=store, write_manifest=False,
                             telemetry=TelemetryConfig())
        assert again.misses == 1 and again.hits == 1
        assert store.get_telemetry(key) is not None


class TestSweepTelemetry:
    def test_spec_sweep_carries_payloads(self):
        sweep = run_load_sweep(
            (0.5,), WorkloadSpec.cbr(), small_config(), "coa", CONTROL,
            telemetry=TelemetryConfig(),
        )
        assert sweep.points[0].telemetry["schema"] == TELEMETRY_SCHEMA

    def test_adhoc_builder_sweep_carries_payloads(self):
        def builder(router, rng, load):
            return build_cbr_workload(router, load, rng)

        sweep = run_load_sweep(
            (0.5,), builder, small_config(), "coa", CONTROL,
            telemetry=TelemetryConfig(),
        )
        assert sweep.points[0].telemetry["schema"] == TELEMETRY_SCHEMA

    def test_sweep_without_telemetry_unchanged(self):
        sweep = run_load_sweep(
            (0.5,), WorkloadSpec.cbr(), small_config(), "coa", CONTROL,
        )
        assert sweep.points[0].telemetry is None
