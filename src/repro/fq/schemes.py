"""Packetized fair-queueing link schedulers (WFQ, DRR, MCDRR).

These are *stateful* :class:`~repro.core.priorities.PriorityScheme`
implementations: instead of the paper's pure ``(slots, delay)`` priority
map they rank on per-VC scheduler state — virtual finish tags for WFQ,
deficit counters for DRR/MCDRR — updated through the lifecycle hooks the
router dispatches (``on_setup`` / ``on_teardown`` / ``on_service``).

All three emit exact int64 keys in ``[1, 2**62)``, so the link
scheduler's reserved-tier folding, VC tie-breaks and CandidateBuffer
fast path apply unchanged: a reserved (CBR/VBR) head flit still
outranks every best-effort one, and fair queueing orders flits *within*
each tier.

**WFQ** is packetized GPS under a start-time virtual clock (the
SFQ-flavored approximation: exact virtual-time tracking needs the fluid
simulation itself, see :mod:`repro.fq.gps`).  Weights are the reserved
slots per round, so the virtual clock advances from reserved rates.  A
head flit's finish tag is assigned lazily at ranking time as
``max(v_port, last_finish) + scale // weight`` and the port clock
advances to the served flit's *start* tag — for flows continuously
backlogged since setup this chains tags exactly (``k * scale/w`` for
the k-th flit), which is why WFQ's service order provably matches the
GPS fluid finish order on all-backlogged workloads (the differential
test pins it).

**DRR** keeps a per-port round-robin ring over VCs with a quantum equal
to the reserved slots: a VC at the ring front is served until its
deficit exhausts, then rotates to the back.  Because the quantum is
added only when the deficit is exhausted at service time, the deficit
is bounded by ``quantum - 1 + max_flit_size`` flits for *any* arrival
and grant sequence (hypothesis-tested), even when the crossbar grants a
non-front candidate out of turn.

**MCDRR** (multi-channel DRR, arXiv:1308.5092) exploits that the MMR's
input link feeds a crossbar with ``num_ports`` *output channels*: an
outer round-robin ring over output channels picks which channel's DRR
ring provides the next candidate, so one blocked output cannot
head-of-line-block the whole input link — candidate level 0 comes from
the current channel, level 1 from the next backlogged channel, and so
on, giving the arbiter channel-diverse candidates every cycle.
"""

from __future__ import annotations

import numpy as np

from ..core.priorities import PriorityScheme

__all__ = ["StatefulScheme", "WFQ", "DRR", "MCDRR", "WFQ_SCALE", "WFQ_HORIZON"]

#: Virtual-time units charged per flit for a weight-1 flow.  A power of
#: two, so any weight that divides it (all powers of two up to 2**20)
#: yields exact per-flit increments — the differential tests use such
#: weights to compare against the exact-arithmetic fluid reference.
WFQ_SCALE = 1 << 20

#: WFQ keys are ``HORIZON - finish_tag`` (descending key = ascending
#: finish).  2**61 leaves the tier bit's headroom intact (< 2**62) and
#: supports ~2**41 weight-1 flits before overflowing — far beyond any
#: simulated run; the scheme raises loudly if it is ever reached.
WFQ_HORIZON = 1 << 61


class StatefulScheme(PriorityScheme):
    """Shared plumbing for the stateful fair-queueing family."""

    integer_valued = True
    stateful = True

    def __init__(self, num_ports: int, vcs_per_link: int) -> None:
        if num_ports <= 0 or vcs_per_link <= 0:
            raise ValueError("num_ports and vcs_per_link must be positive")
        self.num_ports = num_ports
        self.vcs_per_link = vcs_per_link
        #: Router-shape guard: MMRouter refuses a scheme built for a
        #: different (ports, vcs) geometry.
        self.shape = (num_ports, vcs_per_link)

    @classmethod
    def from_config(cls, config) -> "StatefulScheme":
        """Build from a :class:`~repro.router.config.RouterConfig`."""
        return cls(config.num_ports, config.vcs_per_link)

    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            f"{self.name} is stateful: rank through keys()/keys_port() and "
            "drive the on_setup/on_service/on_teardown lifecycle hooks "
            "(MMRouter does this automatically)"
        )


class WFQ(StatefulScheme):
    """Weighted fair queueing: rank VCs by virtual finish tag."""

    name = "wfq"

    def __init__(
        self, num_ports: int, vcs_per_link: int, scale: int = WFQ_SCALE
    ) -> None:
        super().__init__(num_ports, vcs_per_link)
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        n, v = num_ports, vcs_per_link
        # Python ints: virtual tags are unbounded in principle; the key
        # mapping checks the horizon, the state itself cannot overflow.
        self._weight = [[0] * v for _ in range(n)]
        self._inc = [[scale] * v for _ in range(n)]
        self._last_finish = [[0] * v for _ in range(n)]
        self._head_tag: list[list[int | None]] = [[None] * v for _ in range(n)]
        #: Per-port virtual clock (start-time semantics: advances to the
        #: start tag of each served flit).
        self._vtime = [0] * n

    # -- lifecycle ------------------------------------------------------

    def on_setup(
        self, port: int, vc: int, out_port: int, slots: int, reserved: bool
    ) -> None:
        w = max(1, int(slots))
        self._weight[port][vc] = w
        self._inc[port][vc] = max(1, self.scale // w)
        self._last_finish[port][vc] = 0
        self._head_tag[port][vc] = None

    def on_teardown(self, port: int, vc: int) -> None:
        self._weight[port][vc] = 0
        self._inc[port][vc] = self.scale
        self._last_finish[port][vc] = 0
        self._head_tag[port][vc] = None

    def on_service(self, port: int, vc: int, out_port: int, now: int) -> None:
        tag = self._head_tag[port][vc]
        if tag is None:
            # Served without a ranking pass this cycle (only reachable
            # from synthetic drivers): assign the tag it would have had.
            tag = (
                max(self._vtime[port], self._last_finish[port][vc])
                + self._inc[port][vc]
            )
        self._last_finish[port][vc] = tag
        start = tag - self._inc[port][vc]
        if start > self._vtime[port]:
            self._vtime[port] = start
        self._head_tag[port][vc] = None

    # -- ranking --------------------------------------------------------

    def keys_port(self, port: int, occupied: np.ndarray) -> np.ndarray:
        out = np.zeros(self.vcs_per_link, dtype=np.int64)
        tags = self._head_tag[port]
        last = self._last_finish[port]
        inc = self._inc[port]
        vt = self._vtime[port]
        for vc in np.flatnonzero(occupied).tolist():
            tag = tags[vc]
            if tag is None:
                base = last[vc]
                tag = (vt if vt > base else base) + inc[vc]
                tags[vc] = tag
            key = WFQ_HORIZON - tag
            if key < 1:
                raise OverflowError(
                    "WFQ virtual finish tag exceeded the 2**61 key "
                    "horizon; lower the scale or shorten the run"
                )
            out[vc] = key
        return out

    # -- inspection (tests, fairness metrics) ---------------------------

    def virtual_time(self, port: int) -> int:
        return self._vtime[port]

    def finish_tag(self, port: int, vc: int) -> int | None:
        """The head flit's pending finish tag, if one is assigned."""
        return self._head_tag[port][vc]


class DRR(StatefulScheme):
    """Deficit round-robin: quantum = reserved slots, cost = 1 per flit."""

    name = "drr"

    def __init__(self, num_ports: int, vcs_per_link: int) -> None:
        super().__init__(num_ports, vcs_per_link)
        n, v = num_ports, vcs_per_link
        self._quantum = np.ones((n, v), dtype=np.int64)
        self._deficit = np.zeros((n, v), dtype=np.int64)
        #: Last-served VC per port; the ring front stays there while its
        #: deficit lasts, then moves to the next backlogged VC.
        self._cur = [0] * n

    # -- lifecycle ------------------------------------------------------

    def on_setup(
        self, port: int, vc: int, out_port: int, slots: int, reserved: bool
    ) -> None:
        self._quantum[port, vc] = max(1, int(slots))
        self._deficit[port, vc] = 0

    def on_teardown(self, port: int, vc: int) -> None:
        self._quantum[port, vc] = 1
        self._deficit[port, vc] = 0

    def on_service(self, port: int, vc: int, out_port: int, now: int) -> None:
        if self._deficit[port, vc] < 1:
            self._deficit[port, vc] += self._quantum[port, vc]
        self._deficit[port, vc] -= 1
        self._cur[port] = vc

    # -- ranking --------------------------------------------------------

    def keys_port(self, port: int, occupied: np.ndarray) -> np.ndarray:
        v = self.vcs_per_link
        deficit = self._deficit[port]
        # Classic DRR empty-queue rule: an idle VC forfeits its deficit.
        deficit[~occupied] = 0
        out = np.zeros(v, dtype=np.int64)
        active = np.flatnonzero(occupied).tolist()
        if not active:
            return out
        cur = self._cur[port]
        if occupied[cur] and deficit[cur] >= 1:
            anchor = cur  # front keeps serving until its deficit runs out
        else:
            anchor = (cur + 1) % v
        active.sort(key=lambda x: (x - anchor) % v)
        top = v + 1
        for rank, vc in enumerate(active):
            out[vc] = top - rank
        return out

    # -- inspection -----------------------------------------------------

    @property
    def deficits(self) -> np.ndarray:
        """Read-only view of the deficit counters (property tests)."""
        view = self._deficit.view()
        view.flags.writeable = False
        return view

    @property
    def quanta(self) -> np.ndarray:
        view = self._quantum.view()
        view.flags.writeable = False
        return view


class MCDRR(StatefulScheme):
    """Multi-channel DRR: outer ring over output channels, DRR within."""

    name = "mcdrr"

    def __init__(self, num_ports: int, vcs_per_link: int) -> None:
        super().__init__(num_ports, vcs_per_link)
        n, v = num_ports, vcs_per_link
        self._quantum = np.ones((n, v), dtype=np.int64)
        self._deficit = np.zeros((n, v), dtype=np.int64)
        self._out_of = [[-1] * v for _ in range(n)]
        #: Outer ring: next output channel to serve, per input port.
        self._chan_cur = [0] * n
        #: Inner DRR pointer per (input port, output channel).
        self._inner_cur = [[0] * n for _ in range(n)]

    # -- lifecycle ------------------------------------------------------

    def on_setup(
        self, port: int, vc: int, out_port: int, slots: int, reserved: bool
    ) -> None:
        self._quantum[port, vc] = max(1, int(slots))
        self._deficit[port, vc] = 0
        self._out_of[port][vc] = int(out_port)

    def on_teardown(self, port: int, vc: int) -> None:
        self._quantum[port, vc] = 1
        self._deficit[port, vc] = 0
        self._out_of[port][vc] = -1

    def on_service(self, port: int, vc: int, out_port: int, now: int) -> None:
        if self._deficit[port, vc] < 1:
            self._deficit[port, vc] += self._quantum[port, vc]
        self._deficit[port, vc] -= 1
        if 0 <= out_port < self.num_ports:
            self._inner_cur[port][out_port] = vc
            self._chan_cur[port] = (out_port + 1) % self.num_ports

    # -- ranking --------------------------------------------------------

    def keys_port(self, port: int, occupied: np.ndarray) -> np.ndarray:
        n, v = self.num_ports, self.vcs_per_link
        deficit = self._deficit[port]
        deficit[~occupied] = 0
        out = np.zeros(v, dtype=np.int64)
        active = np.flatnonzero(occupied).tolist()
        if not active:
            return out
        out_of = self._out_of[port]
        by_chan: dict[int, list[int]] = {}
        for vc in active:
            chan = out_of[vc]
            if not (0 <= chan < n):
                chan = 0  # defensive: occupied VC without a connection
            by_chan.setdefault(chan, []).append(vc)
        chan_anchor = self._chan_cur[port]
        chans = sorted(by_chan, key=lambda c: (c - chan_anchor) % n)
        n_present = len(chans)
        inner_cur = self._inner_cur[port]
        top = v * n + 1
        for chan_rank, chan in enumerate(chans):
            vcs = by_chan[chan]
            cur = inner_cur[chan]
            if cur in by_chan[chan] and deficit[cur] >= 1:
                anchor = cur
            else:
                anchor = (cur + 1) % v
            vcs.sort(key=lambda x: (x - anchor) % v)
            # Interleave: depth 0 of every backlogged channel first, so
            # candidate levels are channel-diverse.
            for depth, vc in enumerate(vcs):
                out[vc] = top - (depth * n_present + chan_rank)
        return out

    # -- inspection -----------------------------------------------------

    @property
    def deficits(self) -> np.ndarray:
        view = self._deficit.view()
        view.flags.writeable = False
        return view

    @property
    def quanta(self) -> np.ndarray:
        view = self._quantum.view()
        view.flags.writeable = False
        return view
