"""Log-bucketed streaming histograms with bounded relative error.

The telemetry layer needs percentiles that are (a) cheap enough to keep
always-on in the recording hot path, (b) deterministic (no sampling), and
(c) mergeable across campaign worker processes.  A reservoir gives none
of these: it is seed-dependent, its error is unbounded, and two
reservoirs cannot be merged without re-biasing.

:class:`LogHistogram` is an HDR/DDSketch-style histogram over
geometrically growing buckets: bucket ``b >= 1`` covers
``[min_value * gamma^(b-1), min_value * gamma^b)`` with
``gamma = (1 + alpha) / (1 - alpha)``.  Estimating any value in a bucket
by the bucket's harmonic midpoint bounds the *relative* error by
``alpha`` — uniformly, from one-cycle delays to million-cycle outliers —
while ``record`` stays O(1) with zero allocation (one ``math.log``, one
list increment).  Counts, the running sum, and min/max are exact; only
the positions inside a bucket are approximated.  Two histograms with the
same parameters merge by adding their bucket counts, which is how
campaign-level percentiles are computed from per-worker telemetry.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

__all__ = ["LogHistogram"]


class LogHistogram:
    """Streaming log-bucketed histogram (relative error <= ``alpha``).

    Values must be non-negative; :meth:`record` returns ``False`` (and
    records nothing) for negative input so callers can fall back to an
    exact sample.  Values in ``[0, min_value)`` land in an exact "zero"
    bucket estimated as ``0.0`` (absolute error below ``min_value``,
    which is one flit cycle at the default resolution).  Values at or
    above ``max_value`` land in an overflow bucket estimated as the exact
    running maximum.
    """

    __slots__ = (
        "alpha",
        "min_value",
        "max_value",
        "n",
        "total",
        "min",
        "max",
        "overflow",
        "_gamma",
        "_inv_log_gamma",
        "_inv_min",
        "_counts",
    )

    def __init__(
        self,
        alpha: float = 0.01,
        min_value: float = 1.0,
        max_value: float = float(2**40),
    ) -> None:
        if not (0.0 < alpha < 1.0):
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if min_value <= 0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        if max_value <= min_value:
            raise ValueError("max_value must exceed min_value")
        self.alpha = alpha
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._inv_log_gamma = 1.0 / math.log(self._gamma)
        self._inv_min = 1.0 / self.min_value
        # Bucket 0 is [0, min_value); buckets 1..B-2 are the log grid;
        # bucket B-1 is overflow ([max_value, inf) after clamping).
        grid = int(math.log(max_value / min_value) * self._inv_log_gamma) + 2
        self._counts = [0] * (grid + 1)
        self.n = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.overflow = 0

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------

    def record(self, value: float) -> bool:
        """Record one value; O(1), no allocation.

        Returns ``False`` without recording for negative values (the
        caller's cue to use its fallback sample).
        """
        if value < 0:
            return False
        self.n += 1
        self.total += value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value
        if value < self.min_value:
            self._counts[0] += 1
            return True
        idx = 1 + int(math.log(value * self._inv_min) * self._inv_log_gamma)
        last = len(self._counts) - 1
        if idx >= last:
            idx = last
            self.overflow += 1
        self._counts[idx] += 1
        return True

    def record_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.record(v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else float("nan")

    def _bucket_estimate(self, idx: int) -> float:
        if idx == 0:
            est = 0.0
        elif idx == len(self._counts) - 1 and self.overflow:
            est = self.max
        else:
            lower = self.min_value * self._gamma ** (idx - 1)
            est = lower * (2.0 * self._gamma) / (self._gamma + 1.0)
        # Clamping into the exact observed range never increases the
        # error (the true quantile lies inside it) and makes degenerate
        # single-value streams exact.
        if est < self.min:
            est = self.min
        if est > self.max:
            est = self.max
        return est

    def percentile(self, q: float) -> float:
        """Inverted-CDF quantile estimate, relative error <= ``alpha``.

        ``q`` is in percent.  The returned value estimates the element of
        rank ``ceil(q/100 * n)`` of the sorted stream (the
        ``numpy.percentile`` ``method="inverted_cdf"`` definition), with
        relative error bounded by ``alpha`` for values in
        ``[min_value, max_value)`` and exact endpoints for ``q`` hitting
        the recorded min/max.
        """
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.n == 0:
            return float("nan")
        rank = max(1, math.ceil(q / 100.0 * self.n))
        cum = 0
        for idx, count in enumerate(self._counts):
            cum += count
            if cum >= rank:
                return self._bucket_estimate(idx)
        return self.max  # pragma: no cover - rank <= n by construction

    def quantiles(self, qs: Iterable[float]) -> dict[float, float]:
        return {q: self.percentile(q) for q in qs}

    # ------------------------------------------------------------------
    # Merging and serialization
    # ------------------------------------------------------------------

    def compatible_with(self, other: "LogHistogram") -> bool:
        return (
            self.alpha == other.alpha
            and self.min_value == other.min_value
            and self.max_value == other.max_value
            and len(self._counts) == len(other._counts)
        )

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Add another histogram's counts into this one (in place)."""
        if not self.compatible_with(other):
            raise ValueError(
                "cannot merge histograms with different parameters "
                f"(alpha {self.alpha} vs {other.alpha}, min_value "
                f"{self.min_value} vs {other.min_value}, max_value "
                f"{self.max_value} vs {other.max_value})"
            )
        counts = self._counts
        for idx, count in enumerate(other._counts):
            counts[idx] += count
        self.n += other.n
        self.total += other.total
        self.overflow += other.overflow
        if other.n:
            if other.max > self.max:
                self.max = other.max
            if other.min < self.min:
                self.min = other.min
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (sparse counts; ``null`` min/max when empty)."""
        return {
            "alpha": self.alpha,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "n": self.n,
            "total": self.total,
            "min": self.min if self.n else None,
            "max": self.max if self.n else None,
            "overflow": self.overflow,
            "counts": {
                str(idx): count
                for idx, count in enumerate(self._counts)
                if count
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LogHistogram":
        hist = cls(
            alpha=data["alpha"],
            min_value=data["min_value"],
            max_value=data["max_value"],
        )
        for key, count in data.get("counts", {}).items():
            hist._counts[int(key)] = int(count)
        hist.n = int(data["n"])
        hist.total = float(data["total"])
        hist.overflow = int(data.get("overflow", 0))
        hist.min = float(data["min"]) if data.get("min") is not None else math.inf
        hist.max = float(data["max"]) if data.get("max") is not None else -math.inf
        return hist

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LogHistogram n={self.n} alpha={self.alpha} "
            f"mean={self.mean:.3g}>"
        )
