"""Tests for repro.router.connection."""

import pytest

from repro.router.config import RouterConfig
from repro.router.connection import Connection, ConnectionTable, TrafficClass


def conn(conn_id=0, in_port=0, vc=0, out_port=1, tclass=TrafficClass.CBR,
         avg=10, peak=None) -> Connection:
    return Connection(conn_id, in_port, vc, out_port, tclass, avg,
                      peak if peak is not None else avg)


class TestConnection:
    def test_valid(self):
        c = conn()
        assert c.is_reserved
        assert c.peak_slots == c.avg_slots

    def test_best_effort_not_reserved(self):
        c = conn(tclass=TrafficClass.BEST_EFFORT, avg=1)
        assert not c.is_reserved

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            conn(conn_id=-1)

    def test_rejects_nonpositive_slots(self):
        with pytest.raises(ValueError):
            conn(avg=0)

    def test_rejects_peak_below_avg(self):
        with pytest.raises(ValueError):
            conn(avg=10, peak=5)

    def test_rates_roundtrip_config(self):
        cfg = RouterConfig()
        c = conn(avg=100, peak=300)
        assert c.avg_rate_bps(cfg) == pytest.approx(cfg.slots_to_rate(100))
        assert c.peak_rate_bps(cfg) == pytest.approx(cfg.slots_to_rate(300))


class TestConnectionTable:
    def make(self) -> ConnectionTable:
        return ConnectionTable(RouterConfig(num_ports=2, vcs_per_link=3,
                                            candidate_levels=1))

    def test_add_and_get(self):
        table = self.make()
        c = conn()
        table.add(c)
        assert table.get(0) is c
        assert table.at_vc(0, 0) is c
        assert 0 in table
        assert len(table) == 1

    def test_rejects_out_of_range(self):
        table = self.make()
        with pytest.raises(ValueError):
            table.add(conn(in_port=2))
        with pytest.raises(ValueError):
            table.add(conn(out_port=5))
        with pytest.raises(ValueError):
            table.add(conn(vc=3))

    def test_rejects_duplicate_id(self):
        table = self.make()
        table.add(conn(conn_id=1))
        with pytest.raises(ValueError):
            table.add(conn(conn_id=1, vc=1))

    def test_rejects_vc_collision(self):
        table = self.make()
        table.add(conn(conn_id=0, vc=2))
        with pytest.raises(ValueError):
            table.add(conn(conn_id=1, vc=2))

    def test_remove_frees_vc(self):
        table = self.make()
        table.add(conn(conn_id=0, vc=1))
        removed = table.remove(0)
        assert removed.conn_id == 0
        assert table.at_vc(0, 1) is None
        table.add(conn(conn_id=1, vc=1))  # VC reusable

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            self.make().remove(99)

    def test_free_vc_scans_in_order(self):
        table = self.make()
        assert table.free_vc(0) == 0
        table.add(conn(conn_id=0, vc=0))
        assert table.free_vc(0) == 1
        table.add(conn(conn_id=1, vc=1))
        table.add(conn(conn_id=2, vc=2))
        assert table.free_vc(0) is None
        assert table.free_vc(1) == 0  # other port unaffected

    def test_on_input_output(self):
        table = self.make()
        table.add(conn(conn_id=0, in_port=0, vc=0, out_port=1))
        table.add(conn(conn_id=1, in_port=1, vc=0, out_port=1))
        table.add(conn(conn_id=2, in_port=0, vc=1, out_port=0))
        assert {c.conn_id for c in table.on_input(0)} == {0, 2}
        assert {c.conn_id for c in table.on_output(1)} == {0, 1}

    def test_iteration(self):
        table = self.make()
        table.add(conn(conn_id=0, vc=0))
        table.add(conn(conn_id=1, vc=1))
        assert {c.conn_id for c in table} == {0, 1}

    def test_free_vc_reuses_lowest_after_churn(self):
        table = self.make()
        for cid in range(3):
            table.add(conn(conn_id=cid, vc=cid))
        table.remove(2)
        table.remove(0)
        assert table.free_vc(0) == 0
        table.add(conn(conn_id=3, vc=0))
        assert table.free_vc(0) == 2

    def test_free_vc_matches_linear_scan_under_random_churn(self):
        import random

        cfg = RouterConfig(num_ports=2, vcs_per_link=16, candidate_levels=1)
        table = ConnectionTable(cfg)
        rng = random.Random(42)
        live: dict[int, Connection] = {}
        next_id = 0
        for _ in range(600):
            port = rng.randrange(cfg.num_ports)
            reference = next(
                (vc for vc in range(cfg.vcs_per_link)
                 if table.at_vc(port, vc) is None),
                None,
            )
            assert table.free_vc(port) == reference
            if rng.random() < 0.55 and reference is not None:
                c = conn(conn_id=next_id, in_port=port, vc=reference,
                         out_port=rng.randrange(cfg.num_ports))
                table.add(c)
                live[next_id] = c
                next_id += 1
            elif live:
                victim = rng.choice(sorted(live))
                table.remove(victim)
                del live[victim]

    def test_replace_swaps_peak_in_place(self):
        table = self.make()
        table.add(conn(conn_id=0, tclass=TrafficClass.VBR, avg=10, peak=20))
        table.replace(0, conn(conn_id=0, tclass=TrafficClass.VBR,
                              avg=10, peak=40))
        assert table.get(0).peak_slots == 40
        assert table.at_vc(0, 0).peak_slots == 40

    def test_replace_rejects_identity_changes(self):
        table = self.make()
        table.add(conn(conn_id=0, vc=0))
        with pytest.raises(ValueError):
            table.replace(0, conn(conn_id=0, vc=1))
        with pytest.raises(ValueError):
            table.replace(0, conn(conn_id=0, out_port=0))
        with pytest.raises(KeyError):
            table.replace(7, conn(conn_id=7))
