"""Shard identity matrix: sharded runs are byte-identical to serial.

The contract under test is the subsystem's reason to exist: for every
worker count, partitioner, and barrier window cap, the merged sharded
run must equal the single-process reference byte for byte —
``SimResult.to_dict()``, the engine payload, the per-router RNG
fingerprints, and the stream fingerprint.  The matrix covers both
partitioner families (grid rows, fat-tree pods), churn and zero-churn
points, static background with a drain phase, window caps, and the real
multiprocess backend.
"""

import pytest

from repro.fabric.spec import FabricSpec, TopologySpec
from repro.router.config import RouterConfig
from repro.sessions.churn import ChurnConfig
from repro.shard import ShardSpec, check_identity

TOPOLOGIES = {
    "torus:3x3": TopologySpec.torus(3, 3),
    "fat-tree:4": TopologySpec.fat_tree(4),
}


def make_config():
    return RouterConfig(num_ports=6, vcs_per_link=8, vc_buffer_depth=2,
                        candidate_levels=4, flit_cycles_per_round=800)


def make_fabric(topology, rate=6.0, static=False):
    return FabricSpec(
        topology=TOPOLOGIES[topology],
        churn=ChurnConfig(arrivals_per_kcycle=rate,
                          mean_hold_cycles=250.0,
                          mix=(("cbr-high", 1.0),)),
        conns_per_router=4 if static else 0,
        drain=static,
        sample_stride=100,
        rng_mode="per-router",
    )


def assert_identical(report):
    assert report.ok, "\n".join(report.mismatches)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_identity_matrix_healthy_churn(workers, topology, seed):
    report = check_identity(
        make_fabric(topology), make_config(), seed=seed, cycles=250,
        shard=ShardSpec(workers=workers),
    )
    assert_identical(report)
    if workers > 1:
        assert report.crossing_flits > 0


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_identity_zero_churn_static_drain(topology):
    report = check_identity(
        make_fabric(topology, rate=0.0, static=True), make_config(),
        target_load=0.3, cycles=250, shard=ShardSpec(workers=2),
    )
    assert_identical(report)


@pytest.mark.parametrize("max_window", [1, 16])
def test_identity_holds_at_every_window_cap(max_window):
    report = check_identity(
        make_fabric("torus:3x3", rate=2.0), make_config(), cycles=400,
        shard=ShardSpec(workers=2, max_window=max_window),
    )
    assert_identical(report)
    if max_window == 1:
        # Every cycle is its own barrier window.
        assert report.windows == 400


def test_identity_static_load_with_churn():
    report = check_identity(
        make_fabric("torus:3x3", rate=4.0, static=True), make_config(),
        target_load=0.25, cycles=300, shard=ShardSpec(workers=3),
    )
    assert_identical(report)


def test_identity_explicit_partitioners():
    for partitioner in ("contiguous", "rows"):
        report = check_identity(
            make_fabric("torus:3x3"), make_config(), cycles=250,
            shard=ShardSpec(workers=3, partitioner=partitioner),
        )
        assert_identical(report)


def test_identity_real_process_backend():
    """The multiprocess backend produces the same bytes as inline."""
    report = check_identity(
        make_fabric("torus:3x3"), make_config(), cycles=300,
        shard=ShardSpec(workers=2), inline=False,
    )
    assert_identical(report)
    assert report.crossing_flits > 0
