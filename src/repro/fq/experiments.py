"""Cross-paradigm QoS comparison: biased-priority vs fair-queueing.

The paper's figures compare arbiters under one priority paradigm
(SIABP biasing).  This module reruns the fig-5/8/9-style sweeps with
the *scheduling paradigm* as the independent variable — SIABP-COA
against the fair-queueing family (WFQ, DRR, MCDRR) on the same COA
crossbar arbiter — and reduces each run to delivered QoS (delay,
jitter/deadline violations, utilization, Jain fairness over reserved
connections) plus the first-principles hardware cost of the link
scheduler (:func:`repro.core.hwcost.link_scheduler_cost`).  The last
table is the delivered-QoS-vs-hardware-cost frontier: what one buys,
in gates, for each point of fairness.

Everything executes through :func:`repro.campaign.run_campaign` with
telemetry enabled, so points are content-hash cached and a parallel
run is byte-identical to a serial one.

Imported lazily by ``repro.fq`` users (this module pulls in
``repro.campaign``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..analysis.fairness import jain_index, normalized_service
from ..analysis.tables import render_table
from ..campaign.executor import CampaignResult, run_campaign
from ..campaign.plan import CampaignPlan, PointSpec, WorkloadSpec
from ..campaign.store import ResultStore
from ..core.hwcost import link_scheduler_cost
from ..obs.export import TelemetryConfig
from ..router.config import RouterConfig
from ..sim.engine import RunControl

__all__ = [
    "FQ_REPORT_SCHEMA",
    "COMPARISON_SCHEMES",
    "FqPoint",
    "SchemeSummary",
    "comparison_plan",
    "run_comparison",
    "reduce_comparison",
    "summarize_schemes",
    "render_comparison_table",
    "render_frontier_table",
    "comparison_report",
    "validate_fq_report",
]

#: Versioned schema key stamped into every JSON report (CI validates it).
FQ_REPORT_SCHEMA = "repro/fq-comparison/v1"

#: The cross-paradigm line-up: the paper's biased-priority scheme and
#: the three fair-queueing schemes, all on the same COA arbiter.
COMPARISON_SCHEMES = ("siabp", "wfq", "drr", "mcdrr")


def comparison_plan(
    name: str,
    config: RouterConfig,
    schemes: Sequence[str] = COMPARISON_SCHEMES,
    loads: Sequence[float] = (0.5, 0.7, 0.85),
    seeds: Sequence[int] = (0,),
    *,
    control: RunControl = RunControl(cycles=6_000, warmup_cycles=500),
    workload: WorkloadSpec | None = None,
    arbiter: str = "coa",
) -> CampaignPlan:
    """Scheme × load × seed grid, all points on one arbiter.

    Schemes at the same (load, seed) share identical workloads — the
    fairness rule every sweep in this repo follows — so any delivered-
    QoS difference is attributable to the scheduling paradigm alone.
    """
    if not schemes or not loads or not seeds:
        raise ValueError("need at least one scheme, load, and seed")
    spec = workload if workload is not None else WorkloadSpec.cbr()
    points = tuple(
        PointSpec(
            config=config,
            arbiter=arbiter,
            scheme=scheme,
            target_load=load,
            seed=seed,
            workload=spec,
            cycles=control.cycles,
            warmup_cycles=control.warmup_cycles,
        )
        for scheme in schemes
        for load in loads
        for seed in seeds
    )
    return CampaignPlan(name=name, points=points)


@dataclass(frozen=True)
class FqPoint:
    """Delivered QoS of one (scheme, load, seed) point."""

    scheme: str
    target_load: float
    offered_load: float
    seed: int
    delay_us: float
    delay_p99_us: float
    utilization: float
    throughput: float
    #: Jain's index over ``flits / avg_slots`` of *reserved* (CBR/VBR)
    #: connections — 1.0 means service exactly proportional to every
    #: reservation.  NaN when the point had no reserved connections.
    jain: float
    deadline_violations: int
    jitter_violations: int


def _jain_from_telemetry(payload: Mapping[str, Any]) -> float:
    """Weighted-fairness index from a telemetry payload's QoS records."""
    records = payload.get("qos", {}).get("connections", [])
    service = []
    weights = []
    for rec in records:
        if not rec.get("reserved"):
            continue
        service.append(float(rec["flits"]))
        weights.append(float(rec["avg_slots"]))
    if not service:
        return float("nan")
    return jain_index(normalized_service(service, weights))


def _violations_from_telemetry(payload: Mapping[str, Any]) -> tuple[int, int]:
    deadline = jitter = 0
    for agg in payload.get("qos", {}).get("classes", {}).values():
        deadline += int(agg.get("violations", 0))
        jitter += int(agg.get("jitter_violations", 0))
    return deadline, jitter


def run_comparison(
    plan: CampaignPlan,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress=None,
    telemetry: TelemetryConfig | None = None,
) -> tuple[CampaignResult, list[FqPoint]]:
    """Execute a comparison plan (telemetry on) and reduce it."""
    result = run_campaign(
        plan,
        jobs=jobs,
        store=store,
        progress=progress,
        telemetry=telemetry if telemetry is not None else TelemetryConfig(),
    )
    return result, reduce_comparison(result)


def reduce_comparison(result: CampaignResult) -> list[FqPoint]:
    """One :class:`FqPoint` per campaign outcome (telemetry required)."""
    points = []
    for outcome in result.outcomes:
        if outcome.telemetry is None:
            raise ValueError(
                f"outcome {outcome.spec.describe()} has no telemetry payload; "
                "run the campaign with telemetry enabled"
            )
        r = outcome.result
        deadline, jitter = _violations_from_telemetry(outcome.telemetry)
        points.append(
            FqPoint(
                scheme=outcome.spec.scheme,
                target_load=outcome.spec.target_load,
                offered_load=r.offered_load,
                seed=outcome.spec.seed,
                delay_us=r.flit_delay_us.get("overall", float("nan")),
                delay_p99_us=r.flit_delay_p99_us.get("overall", float("nan")),
                utilization=r.utilization,
                throughput=r.throughput,
                jain=_jain_from_telemetry(outcome.telemetry),
                deadline_violations=deadline,
                jitter_violations=jitter,
            )
        )
    return points


@dataclass(frozen=True)
class SchemeSummary:
    """One scheme's QoS aggregate over all its loads/seeds, plus cost."""

    scheme: str
    points: int
    delay_us: float
    delay_p99_us: float
    utilization: float
    jain: float
    deadline_violations: int
    jitter_violations: int
    hw_area_ge: float
    hw_delay_levels: float


def _finite_mean(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    return sum(finite) / len(finite) if finite else float("nan")


def summarize_schemes(
    points: Sequence[FqPoint], config: RouterConfig
) -> list[SchemeSummary]:
    """Aggregate points per scheme and attach the link-scheduler cost.

    Order follows first appearance in ``points`` (i.e. plan order).  The
    hardware figure is one input link's scheduler — per-VC update logic
    × VC count plus the rank comparator tree — which is the part that
    differs across paradigms; the crossbar arbiter is common to all.
    """
    order: list[str] = []
    grouped: dict[str, list[FqPoint]] = {}
    for p in points:
        if p.scheme not in grouped:
            order.append(p.scheme)
        grouped.setdefault(p.scheme, []).append(p)
    out = []
    for scheme in order:
        group = grouped[scheme]
        hw = link_scheduler_cost(scheme, config.vcs_per_link)
        out.append(
            SchemeSummary(
                scheme=scheme,
                points=len(group),
                delay_us=_finite_mean([p.delay_us for p in group]),
                delay_p99_us=_finite_mean([p.delay_p99_us for p in group]),
                utilization=_finite_mean([p.utilization for p in group]),
                jain=_finite_mean([p.jain for p in group]),
                deadline_violations=sum(p.deadline_violations for p in group),
                jitter_violations=sum(p.jitter_violations for p in group),
                hw_area_ge=hw.area_ge,
                hw_delay_levels=hw.delay_levels,
            )
        )
    return out


def render_comparison_table(
    summaries: Sequence[SchemeSummary], title: str | None = None
) -> str:
    """The delay/jitter/fairness/hwcost table, one row per scheme."""
    if not summaries:
        raise ValueError("no scheme summaries to render")
    rows = [
        [
            s.scheme,
            f"{s.delay_us:.2f}",
            f"{s.delay_p99_us:.2f}",
            f"{s.utilization:.1%}",
            "n/a" if math.isnan(s.jain) else f"{s.jain:.4f}",
            s.deadline_violations,
            s.jitter_violations,
            f"{s.hw_area_ge:,.0f}",
            f"{s.hw_delay_levels:.1f}",
        ]
        for s in summaries
    ]
    return render_table(
        ["scheme", "delay us", "p99 us", "util", "jain",
         "deadline viol", "jitter viol", "area GE", "delay lvl"],
        rows,
        title=title,
    )


def render_frontier_table(
    summaries: Sequence[SchemeSummary], title: str | None = None
) -> str:
    """Delivered-QoS-vs-hardware-cost frontier, cheapest scheme first.

    A scheme is *dominated* when some other scheme is at least as fair
    and no more expensive — those rows are marked, the rest form the
    Pareto frontier a designer actually chooses from.
    """
    if not summaries:
        raise ValueError("no scheme summaries to render")
    ordered = sorted(summaries, key=lambda s: (s.hw_area_ge, s.scheme))

    def fairness(s: SchemeSummary) -> float:
        return -1.0 if math.isnan(s.jain) else s.jain

    rows = []
    for s in ordered:
        dominated = any(
            o is not s
            and o.hw_area_ge <= s.hw_area_ge
            and fairness(o) >= fairness(s)
            and (o.hw_area_ge < s.hw_area_ge or fairness(o) > fairness(s))
            for o in ordered
        )
        rows.append([
            s.scheme,
            f"{s.hw_area_ge:,.0f}",
            "n/a" if math.isnan(s.jain) else f"{s.jain:.4f}",
            f"{s.delay_us:.2f}",
            s.deadline_violations,
            "dominated" if dominated else "frontier",
        ])
    return render_table(
        ["scheme", "area GE", "jain", "delay us", "deadline viol", "pareto"],
        rows,
        title=title,
    )


# ----------------------------------------------------------------------
# JSON report (the fq-smoke CI artifact)
# ----------------------------------------------------------------------


def comparison_report(
    campaign: CampaignResult,
    points: Sequence[FqPoint],
    config: RouterConfig,
) -> dict[str, Any]:
    """Strict-JSON report of a comparison run (schema-stamped)."""

    def safe(value: float) -> float | None:
        return value if math.isfinite(value) else None

    return {
        "schema": FQ_REPORT_SCHEMA,
        "config": {
            "num_ports": config.num_ports,
            "vcs_per_link": config.vcs_per_link,
            "candidate_levels": config.candidate_levels,
        },
        "campaign": {
            "name": campaign.plan.name,
            "points": len(campaign.outcomes),
            "hits": campaign.hits,
            "misses": campaign.misses,
        },
        "points": [
            {
                "scheme": p.scheme,
                "target_load": p.target_load,
                "offered_load": safe(p.offered_load),
                "seed": p.seed,
                "delay_us": safe(p.delay_us),
                "delay_p99_us": safe(p.delay_p99_us),
                "utilization": safe(p.utilization),
                "throughput": safe(p.throughput),
                "jain_index": safe(p.jain),
                "deadline_violations": p.deadline_violations,
                "jitter_violations": p.jitter_violations,
            }
            for p in points
        ],
        "schemes": [
            {
                "scheme": s.scheme,
                "points": s.points,
                "delay_us": safe(s.delay_us),
                "delay_p99_us": safe(s.delay_p99_us),
                "utilization": safe(s.utilization),
                "jain_index": safe(s.jain),
                "deadline_violations": s.deadline_violations,
                "jitter_violations": s.jitter_violations,
                "hw_area_ge": s.hw_area_ge,
                "hw_delay_levels": s.hw_delay_levels,
            }
            for s in summarize_schemes(points, config)
        ],
    }


_POINT_KEYS = {
    "scheme", "target_load", "offered_load", "seed", "delay_us",
    "delay_p99_us", "utilization", "throughput", "jain_index",
    "deadline_violations", "jitter_violations",
}
_SCHEME_KEYS = {
    "scheme", "points", "delay_us", "delay_p99_us", "utilization",
    "jain_index", "deadline_violations", "jitter_violations",
    "hw_area_ge", "hw_delay_levels",
}


def validate_fq_report(data: Any) -> list[str]:
    """Schema problems in a comparison report; empty list means valid."""
    problems = []
    if not isinstance(data, dict):
        return ["report is not a JSON object"]
    if data.get("schema") != FQ_REPORT_SCHEMA:
        problems.append(
            f"schema is {data.get('schema')!r}, want {FQ_REPORT_SCHEMA!r}"
        )
    for section, keys in (("points", _POINT_KEYS), ("schemes", _SCHEME_KEYS)):
        entries = data.get(section)
        if not isinstance(entries, list) or not entries:
            problems.append(f"{section!r} must be a non-empty list")
            continue
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                problems.append(f"{section}[{i}] is not an object")
                continue
            missing = keys - entry.keys()
            if missing:
                problems.append(
                    f"{section}[{i}] missing keys: {', '.join(sorted(missing))}"
                )
            jain = entry.get("jain_index")
            if jain is not None and not (
                isinstance(jain, (int, float)) and 0.0 <= jain <= 1.0 + 1e-9
            ):
                problems.append(f"{section}[{i}] jain_index {jain!r} not in [0, 1]")
    for entry in data.get("schemes") or []:
        if isinstance(entry, dict):
            area = entry.get("hw_area_ge")
            if not (isinstance(area, (int, float)) and area > 0):
                problems.append(
                    f"scheme {entry.get('scheme')!r} hw_area_ge must be positive"
                )
    campaign = data.get("campaign")
    if not isinstance(campaign, dict) or not {
        "points", "hits", "misses"
    } <= campaign.keys():
        problems.append("'campaign' must carry points/hits/misses counts")
    return problems
