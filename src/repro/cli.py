"""Command-line interface: run, sweep, and reproduce from a shell.

Examples
--------

List what is available::

    python -m repro list

One simulation run, printed as a table::

    python -m repro run --traffic cbr --arbiter coa --load 0.8
    python -m repro run --traffic vbr --model BB --arbiter wfa --load 0.7

A load sweep comparing arbiters (the shape of the paper's figures)::

    python -m repro sweep --traffic cbr --arbiters coa,wfa \
        --loads 0.5,0.7,0.8,0.85

Regenerate a specific paper artifact::

    python -m repro reproduce table1
    python -m repro reproduce fig5
    python -m repro reproduce hwcost

A robustness run with fault injection (see docs/reproduction.md)::

    python -m repro faults --dead-port 2 --dead-port-cycle 2000
    python -m repro faults --corruption-rate 0.01 --credit-loss-rate 0.005

A cached, parallel campaign over an arbiter x load x seed grid (see
docs/architecture.md "Campaign orchestration")::

    python -m repro campaign --traffic cbr --arbiters coa,wfa \
        --loads 0.5,0.7,0.8 --n-seeds 3 --jobs 4 --store .repro-campaign

Observability (see docs/architecture.md "Observability")::

    python -m repro run --traffic cbr --load 0.8 --telemetry out/telemetry
    python -m repro obs --out out/obs-demo
    python -m repro obs --validate out/obs-demo/timeseries.jsonl
    python -m repro obs --bench --json BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from .analysis import render_series, render_table
from .core import ARBITER_NAMES, SCHEME_NAMES, hwcost
from .router.config import RouterConfig
from .sim.engine import RunControl
from .sim.experiments import (
    cbr_delay_experiment,
    default_config,
    get_scale,
    vbr_experiment,
)
from .sim.simulation import SingleRouterSim
from .traffic.mixes import build_cbr_workload, build_vbr_workload
from .traffic.mpeg import SEQUENCE_STATS, generate_trace, trace_statistics

__all__ = ["main", "build_parser"]


def _config_from_args(args: argparse.Namespace) -> RouterConfig:
    return default_config(
        num_ports=args.ports,
        vcs_per_link=args.vcs,
        candidate_levels=args.levels,
    )


def _parse_floats(text: str) -> list[float]:
    try:
        return [float(x) for x in text.split(",") if x]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a float list: {text!r}") from None


def _parse_ints(text: str) -> list[int]:
    try:
        return [int(x) for x in text.split(",") if x]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an int list: {text!r}") from None


def _parse_names(text: str) -> list[str]:
    return [x.strip() for x in text.split(",") if x.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MMR switch-scheduling reproduction (IPDPS 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_router_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--ports", type=int, default=4,
                       help="crossbar size (default 4)")
        p.add_argument("--vcs", type=int, default=64,
                       help="virtual channels per link (default 64)")
        p.add_argument("--levels", type=int, default=4,
                       help="candidate levels (default 4)")
        p.add_argument("--scheme", default="siabp", choices=SCHEME_NAMES,
                       help="priority biasing function")
        p.add_argument("--seed", type=int, default=0)

    def add_traffic_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--traffic", choices=("cbr", "vbr"), default="cbr")
        p.add_argument("--model", choices=("SR", "BB"), default="SR",
                       help="VBR injection model")
        p.add_argument("--cycles", type=int, default=0,
                       help="flit cycles to simulate (0 = scale default)")
        p.add_argument("--warmup", type=int, default=-1,
                       help="warmup cycles (-1 = scale default)")
        p.add_argument("--scale", default="ci", choices=("tiny", "ci", "paper"),
                       help="run-length profile")

    def add_telemetry_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--telemetry", default=None, metavar="DIR",
                       help="enable telemetry and write its artifacts "
                            "under DIR (see docs/architecture.md)")
        p.add_argument("--telemetry-stride", type=int, default=64,
                       help="cycles between time-series samples "
                            "(default 64)")

    p_list = sub.add_parser("list", help="list algorithms and sequences")
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="one simulation run")
    add_router_args(p_run)
    add_traffic_args(p_run)
    add_telemetry_args(p_run)
    p_run.add_argument("--arbiter", default="coa", choices=ARBITER_NAMES)
    p_run.add_argument("--load", type=float, default=0.7,
                       help="target offered load per input link (0-1)")
    p_run.set_defaults(func=cmd_run)

    def add_campaign_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes (1 = serial in-process, "
                            "0 = one per CPU core)")
        p.add_argument("--store", default=None, metavar="DIR",
                       help="result-store directory (caches points)")
        p.add_argument("--retries", type=int, default=3,
                       help="max attempts per point before failing (default 3)")

    p_sweep = sub.add_parser("sweep", help="load sweep over arbiters")
    add_router_args(p_sweep)
    add_traffic_args(p_sweep)
    add_campaign_args(p_sweep)
    add_telemetry_args(p_sweep)
    p_sweep.add_argument("--arbiters", type=_parse_names, default=["coa", "wfa"],
                         help="comma-separated arbiter names")
    p_sweep.add_argument("--loads", type=_parse_floats,
                         default=[0.3, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85],
                         help="comma-separated target loads (0-1)")
    p_sweep.add_argument(
        "--metric",
        choices=("delay", "frame-delay", "utilization", "jitter",
                 "throughput"),
        default="delay",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_campaign = sub.add_parser(
        "campaign",
        help="parallel, cached arbiter x load x seed campaign",
    )
    add_router_args(p_campaign)
    add_traffic_args(p_campaign)
    add_campaign_args(p_campaign)
    add_telemetry_args(p_campaign)
    p_campaign.add_argument("--name", default="campaign",
                            help="campaign name (manifest file prefix)")
    p_campaign.add_argument("--arbiters", type=_parse_names,
                            default=["coa", "wfa"],
                            help="comma-separated arbiter names")
    p_campaign.add_argument("--loads", type=_parse_floats,
                            default=[0.3, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85],
                            help="comma-separated target loads (0-1)")
    p_campaign.add_argument(
        "--seeds", type=_parse_ints, default=None,
        help="explicit comma-separated seeds (default: derive --n-seeds "
             "children from --seed via SeedSequence.spawn)",
    )
    p_campaign.add_argument("--n-seeds", type=int, default=1,
                            help="seeds per point when --seeds is not given")
    p_campaign.add_argument(
        "--metric",
        choices=("delay", "frame-delay", "utilization", "jitter",
                 "throughput"),
        default="delay",
    )
    p_campaign.add_argument("--summary-json", default=None, metavar="PATH",
                            help="write run accounting (points, hits, wall "
                                 "time) as JSON")
    p_campaign.add_argument("--quiet", action="store_true",
                            help="suppress progress telemetry on stderr")
    p_campaign.set_defaults(func=cmd_campaign)

    p_faults = sub.add_parser(
        "faults", help="robustness run with fault injection"
    )
    add_router_args(p_faults)
    p_faults.add_argument("--arbiter", default="coa", choices=ARBITER_NAMES)
    p_faults.add_argument("--load", type=float, default=0.7,
                          help="target CBR offered load per input link (0-1)")
    p_faults.add_argument("--be-load", type=float, default=0.15,
                          help="best-effort background load per port")
    p_faults.add_argument("--cycles", type=int, default=20000,
                          help="flit cycles to simulate")
    p_faults.add_argument("--warmup", type=int, default=2000)
    p_faults.add_argument("--corruption-rate", type=float, default=0.0,
                          help="per-forward flit corruption probability")
    p_faults.add_argument("--credit-loss-rate", type=float, default=0.0,
                          help="per-return credit loss probability")
    p_faults.add_argument("--credit-dup-rate", type=float, default=0.0,
                          help="per-return credit duplication probability")
    p_faults.add_argument("--stuck-rate", type=float, default=0.0,
                          help="per-cycle stuck-buffer-slot probability")
    p_faults.add_argument("--dead-port", type=int, default=None,
                          help="output port that dies mid-run")
    p_faults.add_argument("--dead-port-cycle", type=int, default=0,
                          help="cycle at which the dead port fails")
    p_faults.add_argument("--events", type=int, default=15,
                          help="fault-schedule tail lines to print")
    p_faults.set_defaults(func=cmd_faults)

    p_perf = sub.add_parser(
        "perf",
        help="benchmark the scheduling hot path (cycles/sec, per-stage)",
    )
    add_router_args(p_perf)
    p_perf.add_argument("--arbiter", default="coa", choices=ARBITER_NAMES)
    p_perf.add_argument("--load", type=float, default=0.7,
                        help="target CBR offered load per input link (0-1)")
    p_perf.add_argument("--cycles", type=int, default=0,
                        help="measured flit cycles (0 = profile default)")
    p_perf.add_argument("--quick", action="store_true",
                        help="short CI-sized measurement")
    p_perf.add_argument("--repeats", type=int, default=0,
                        help="interleaved timing repetitions per path, "
                             "best-of-N reported (0 = profile default)")
    p_perf.add_argument("--json", default=None, metavar="PATH",
                        help="write the report (BENCH_perf.json format)")
    p_perf.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed baseline to regress against")
    p_perf.add_argument("--max-regression", type=float, default=0.3,
                        help="tolerated cycles/sec drop vs baseline "
                             "(fraction, default 0.3)")
    p_perf.add_argument("--profile", action="store_true",
                        help="also print a cProfile of the fast path")
    p_perf.add_argument("--check-skip", action="store_true",
                        help="only run the idle-skip bit-identity gate "
                             "across an arbiter/seed matrix and exit")
    p_perf.set_defaults(func=cmd_perf)

    p_obs = sub.add_parser(
        "obs",
        help="observability: telemetry demo run, artifact validation, "
             "overhead bench",
    )
    add_router_args(p_obs)
    p_obs.add_argument("--arbiter", default="coa", choices=ARBITER_NAMES)
    p_obs.add_argument("--load", type=float, default=0.7,
                       help="target CBR offered load per input link (0-1)")
    p_obs.add_argument("--cycles", type=int, default=0,
                       help="flit cycles (0 = 4000 for the demo run, "
                            "20000 for --bench)")
    p_obs.add_argument("--stride", type=int, default=64,
                       help="cycles between time-series samples (default 64)")
    p_obs.add_argument("--out", default=None, metavar="DIR",
                       help="export the demo run's telemetry artifacts")
    p_obs.add_argument("--validate", default=None, metavar="PATH",
                       help="validate a timeseries.jsonl file and exit")
    p_obs.add_argument("--bench", action="store_true",
                       help="measure telemetry overhead (BENCH_obs.json)")
    p_obs.add_argument("--repeats", type=int, default=0,
                       help="interleaved bench repetitions per variant, "
                            "best-of-N reported (0 = default 5)")
    p_obs.add_argument("--json", default=None, metavar="PATH",
                       help="write the bench report (BENCH_obs.json format)")
    p_obs.add_argument("--max-overhead", type=float, default=0.05,
                       help="tolerated telemetry-enabled overhead "
                            "(fraction, default 0.05)")
    p_obs.add_argument("--max-disabled-overhead", type=float, default=0.01,
                       help="tolerated telemetry-disabled overhead "
                            "(fraction, default 0.01)")
    p_obs.set_defaults(func=cmd_obs)

    p_sessions = sub.add_parser(
        "sessions",
        help="dynamic session churn: blocking demo, determinism check, "
             "overhead bench",
    )
    add_router_args(p_sessions)
    p_sessions.add_argument("--arbiter", default="coa", choices=ARBITER_NAMES)
    p_sessions.add_argument("--load", type=float, default=0.1,
                            help="static background CBR load per input link "
                                 "(0-1, default 0.1)")
    p_sessions.add_argument("--cycles", type=int, default=0,
                            help="flit cycles (0 = 15000, or 20000 for "
                                 "--bench)")
    p_sessions.add_argument("--rate", type=float, default=2.0,
                            help="session arrivals per 1000 cycles per port")
    p_sessions.add_argument("--hold", type=float, default=3000.0,
                            help="mean session holding time (cycles)")
    p_sessions.add_argument("--hold-dist", choices=("exponential", "pareto"),
                            default="exponential",
                            help="holding-time distribution")
    p_sessions.add_argument("--policy", default="paper",
                            help="CAC policy name (see repro.sessions."
                                 "policies; default 'paper')")
    p_sessions.add_argument("--events", type=int, default=12,
                            help="session event-log tail lines to print")
    p_sessions.add_argument("--demo", action="store_true",
                            help="blocking-vs-offered-load table over CAC "
                                 "policies (campaign-executed)")
    p_sessions.add_argument("--rates", type=_parse_floats,
                            default=[4.0, 8.0, 12.0],
                            help="--demo arrival rates per kcycle per port")
    p_sessions.add_argument("--policies", type=_parse_names,
                            default=["paper", "util-cap"],
                            help="--demo comma-separated CAC policies")
    p_sessions.add_argument("-j", "--jobs", type=int, default=1,
                            help="--demo worker processes (0 = per core)")
    p_sessions.add_argument("--store", default=None, metavar="DIR",
                            help="--demo result-store directory")
    p_sessions.add_argument("--check-determinism", action="store_true",
                            help="run the same seed twice; exit 1 unless "
                                 "event logs and results are identical")
    p_sessions.add_argument("--bench", action="store_true",
                            help="measure session-layer overhead "
                                 "(BENCH_sessions.json)")
    p_sessions.add_argument("--repeats", type=int, default=0,
                            help="interleaved bench repetitions per variant "
                                 "(0 = default 5)")
    p_sessions.add_argument("--json", default=None, metavar="PATH",
                            help="write the bench report "
                                 "(BENCH_sessions.json format)")
    p_sessions.add_argument("--max-disabled-overhead", type=float,
                            default=0.01,
                            help="tolerated sessions-disabled overhead "
                                 "(fraction, default 0.01)")
    p_sessions.set_defaults(func=cmd_sessions)

    p_control = sub.add_parser(
        "control",
        help="closed-loop control plane: frontier demo, determinism check, "
             "overhead bench",
    )
    add_router_args(p_control)
    p_control.add_argument("--arbiter", default="coa", choices=ARBITER_NAMES)
    p_control.add_argument("--load", type=float, default=0.1,
                           help="static background CBR load per input link "
                                "(0-1, default 0.1)")
    p_control.add_argument("--cycles", type=int, default=0,
                           help="flit cycles (0 = 12000, or 20000 for "
                                "--bench)")
    p_control.add_argument("--demo", action="store_true",
                           help="blocking-vs-delivered-QoS frontier table "
                                "across CAC policies under churn + faults")
    p_control.add_argument("--rates", type=_parse_floats,
                           default=[1.0, 2.0, 4.0],
                           help="--demo arrival rates per kcycle per port "
                                "(>= 3 required)")
    p_control.add_argument("--policies", type=_parse_names,
                           default=["paper", "measurement", "adaptive"],
                           help="--demo comma-separated CAC policies")
    p_control.add_argument("--seeds", type=_parse_ints, default=[0, 1],
                           help="--demo comma-separated seeds (default 0,1)")
    p_control.add_argument("-j", "--jobs", type=int, default=1,
                           help="--demo worker processes (0 = per core)")
    p_control.add_argument("--store", default=None, metavar="DIR",
                           help="--demo result-store directory")
    p_control.add_argument("--check-determinism", action="store_true",
                           help="replay control-enabled runs and verify the "
                                "disabled path is bit-identical; exit 1 on "
                                "any divergence")
    p_control.add_argument("--bench", action="store_true",
                           help="measure control-plane overhead "
                                "(BENCH_control.json)")
    p_control.add_argument("--repeats", type=int, default=0,
                           help="interleaved bench repetitions per variant "
                                "(0 = default 5)")
    p_control.add_argument("--json", default=None, metavar="PATH",
                           help="write the bench report "
                                "(BENCH_control.json format)")
    p_control.add_argument("--max-disabled-overhead", type=float,
                           default=0.01,
                           help="tolerated control-disabled overhead "
                                "(fraction, default 0.01)")
    p_control.add_argument("--max-enabled-overhead", type=float,
                           default=0.05,
                           help="tolerated control-enabled overhead "
                                "(fraction, default 0.05)")
    p_control.set_defaults(func=cmd_control)

    p_fq = sub.add_parser(
        "fq",
        help="fair-queueing family: cross-paradigm QoS comparison "
             "(SIABP vs WFQ/DRR/MCDRR) with fairness and hardware cost",
    )
    add_router_args(p_fq)
    add_campaign_args(p_fq)
    p_fq.add_argument("--demo", action="store_true",
                      help="run the comparison at the paper 4x4/64-VC "
                           "config and print the QoS + frontier tables")
    p_fq.add_argument("--schemes", type=_parse_names,
                      default=["siabp", "wfq", "drr", "mcdrr"],
                      help="comma-separated priority schemes to compare")
    p_fq.add_argument("--loads", type=_parse_floats,
                      default=[0.5, 0.7, 0.85],
                      help="comma-separated target loads (0-1)")
    p_fq.add_argument("--seeds", type=_parse_ints, default=[0],
                      help="comma-separated seeds (default 0)")
    p_fq.add_argument("--arbiter", default="coa", choices=ARBITER_NAMES,
                      help="common crossbar arbiter (default coa)")
    p_fq.add_argument("--cycles", type=int, default=0,
                      help="flit cycles per point (0 = 6000)")
    p_fq.add_argument("--warmup", type=int, default=-1,
                      help="warmup cycles per point (-1 = cycles/12)")
    p_fq.add_argument("--json", default=None, metavar="PATH",
                      help="write the comparison report "
                           "(repro/fq-comparison/v1 schema)")
    p_fq.set_defaults(func=cmd_fq)

    p_sched = sub.add_parser(
        "sched",
        help="enumerate registered arbiters and priority schemes with "
             "their hardware-cost models",
    )
    p_sched.add_argument("--list", action="store_true",
                         help="list every registry name with modeled "
                              "area/delay (the default action)")
    p_sched.add_argument("--ports", type=int, default=4,
                         help="crossbar size for arbiter costs (default 4)")
    p_sched.add_argument("--vcs", type=int, default=64,
                         help="VCs per link for scheduler costs (default 64)")
    p_sched.add_argument("--levels", type=int, default=4,
                         help="candidate levels for COA cost (default 4)")
    p_sched.set_defaults(func=cmd_sched)

    p_fabric = sub.add_parser(
        "fabric",
        help="multi-router fabric: session churn over a topology with "
             "multi-hop CAC and alternate-path re-admission",
    )
    add_router_args(p_fabric)
    # Fabric defaults differ from the single-router ones: ports must
    # exceed the topology's max degree (mesh/torus/fat-tree reach 4) and
    # small VC counts keep reservation rounds short.
    p_fabric.set_defaults(ports=6, vcs=8)
    p_fabric.add_argument("--arbiter", default="coa", choices=ARBITER_NAMES)
    p_fabric.add_argument("--topology", default="mesh:3x3",
                          help="named topology: ring:8, mesh:3x3, "
                               "torus:3x3, fat-tree:4 (bare kind = "
                               "default size)")
    p_fabric.add_argument("--policy", default="first-fit",
                          help="path policy for single runs "
                               "(see --list-topologies)")
    p_fabric.add_argument("--cycles", type=int, default=0,
                          help="flit cycles (0 = 8000)")
    p_fabric.add_argument("--rate", type=float, default=2.0,
                          help="session arrivals per 1000 cycles per "
                               "host port")
    p_fabric.add_argument("--hold", type=float, default=3000.0,
                          help="mean session holding time (cycles)")
    p_fabric.add_argument("--load", type=float, default=0.0,
                          help="static background CBR load per source "
                               "router (0 disables the background)")
    p_fabric.add_argument("--attempts", type=int, default=2,
                          help="setup attempts per session: primary + "
                               "alternates (default 2)")
    p_fabric.add_argument("--events", type=int, default=12,
                          help="fabric event-log tail lines to print")
    p_fabric.add_argument("--demo", action="store_true",
                          help="blocking-vs-arrival-rate table over path "
                               "policies (campaign-executed)")
    p_fabric.add_argument("--rates", type=_parse_floats,
                          default=[1.0, 2.0, 4.0],
                          help="--demo arrival rates per kcycle per port")
    p_fabric.add_argument("--policies", type=_parse_names,
                          default=["first-fit", "ecmp", "wrr"],
                          help="--demo comma-separated path policies")
    p_fabric.add_argument("-j", "--jobs", type=int, default=1,
                          help="--demo worker processes (0 = per core)")
    p_fabric.add_argument("--store", default=None, metavar="DIR",
                          help="--demo result-store directory")
    p_fabric.add_argument("--check-determinism", action="store_true",
                          help="replay the same seed twice and verify the "
                               "zero-churn run is bit-identical to a plain "
                               "network loop; exit 1 on divergence")
    p_fabric.add_argument("--list-topologies", action="store_true",
                          help="list registered topology kinds and path "
                               "policies")
    p_fabric.add_argument("--bench", action="store_true",
                          help="fixed-point wall-time + blocking summary "
                               "per topology (BENCH_fabric.json)")
    p_fabric.add_argument("--json", default=None, metavar="PATH",
                          help="write the bench report")
    p_fabric.set_defaults(func=cmd_fabric)

    p_shard = sub.add_parser(
        "shard",
        help="sharded shared-nothing fabric execution: per-worker router "
             "groups with cycle-barrier boundary exchange, byte-identical "
             "to the serial reference",
    )
    add_router_args(p_shard)
    p_shard.set_defaults(ports=6, vcs=8)
    p_shard.add_argument("--arbiter", default="coa", choices=ARBITER_NAMES)
    p_shard.add_argument("--topology", default="torus:4x4",
                         help="named topology (see fabric "
                              "--list-topologies)")
    p_shard.add_argument("--workers", type=int, default=2,
                         help="worker shards (default 2)")
    p_shard.add_argument("--partitioner", default="auto",
                         help="router partitioner: auto, contiguous, "
                              "rows, pods")
    p_shard.add_argument("--max-window", type=int, default=0,
                         help="cap on the cycle-barrier window length "
                              "(0 = unbounded idle windows)")
    p_shard.add_argument("--inline", action="store_true",
                         help="drive all shards in-process (no worker "
                              "processes; same barrier protocol)")
    p_shard.add_argument("--cycles", type=int, default=0,
                         help="flit cycles (0 = 4000)")
    p_shard.add_argument("--rate", type=float, default=4.0,
                         help="session arrivals per 1000 cycles per "
                              "host port")
    p_shard.add_argument("--hold", type=float, default=1000.0,
                         help="mean session holding time (cycles)")
    p_shard.add_argument("--load", type=float, default=0.0,
                         help="static background CBR load per source "
                              "router (0 disables the background)")
    p_shard.add_argument("--check-identity", action="store_true",
                         help="run the serial reference and the sharded "
                              "run for each worker count and compare "
                              "byte-for-byte; exit 1 on divergence")
    p_shard.add_argument("--workers-list", type=_parse_ints,
                         default=[1, 2, 4], metavar="N,N,...",
                         help="worker counts for --check-identity / "
                              "--sweep / --bench (default 1,2,4)")
    p_shard.add_argument("--bench", action="store_true",
                         help="serial vs sharded cycles/sec "
                              "(BENCH_shard.json)")
    p_shard.add_argument("--sweep", default=None, metavar="TOPO,TOPO,...",
                         help="bench a comma-separated topology list "
                              "against --workers-list")
    p_shard.add_argument("--json", default=None, metavar="PATH",
                         help="write the bench report")
    p_shard.add_argument("--baseline", default=None, metavar="PATH",
                         help="gate the bench against a committed "
                              "baseline report; exit 1 on regression")
    p_shard.set_defaults(func=cmd_shard)

    p_repro = sub.add_parser("reproduce", help="regenerate a paper artifact")
    p_repro.add_argument(
        "artifact",
        choices=("table1", "fig5", "fig6", "fig8", "fig9", "jitter", "hwcost"),
    )
    p_repro.add_argument("--seed", type=int, default=2002)
    p_repro.add_argument("--scale", default="ci", choices=("tiny", "ci", "paper"))
    p_repro.add_argument("-j", "--jobs", type=int, default=1,
                         help="worker processes for sweep artifacts")
    p_repro.add_argument("--store", default=None, metavar="DIR",
                         help="result-store directory (cached re-runs)")
    p_repro.set_defaults(func=cmd_reproduce)

    return parser


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_list(args: argparse.Namespace) -> int:
    print(render_table(
        ["kind", "names"],
        [
            ["arbiters", ", ".join(ARBITER_NAMES)],
            ["priority schemes", ", ".join(SCHEME_NAMES)],
            ["MPEG-2 sequences", ", ".join(SEQUENCE_STATS)],
        ],
    ))
    return 0


def _build_and_run(args: argparse.Namespace, arbiter: str, load: float,
                   telemetry=None):
    config = _config_from_args(args)
    scale = get_scale(args.scale)
    sim = SingleRouterSim(config, arbiter=arbiter, scheme=args.scheme,
                          seed=args.seed)
    if args.traffic == "cbr":
        workload = build_cbr_workload(sim.router, load, sim.rng.workload)
        cycles = args.cycles or scale.cbr_cycles
        # Default warmup: the scale's, capped to a fifth of a short run.
        warmup = args.warmup if args.warmup >= 0 else min(
            scale.cbr_warmup, cycles // 5
        )
    else:
        workload = build_vbr_workload(
            sim.router, load, sim.rng.workload, model=args.model,
            frame_time_cycles=scale.vbr_frame_time_cycles,
            bandwidth_scale=scale.vbr_bandwidth_scale,
            num_gops=scale.vbr_num_gops,
        )
        cycles = args.cycles or scale.vbr_cycles
        warmup = args.warmup if args.warmup >= 0 else min(
            scale.vbr_warmup, cycles // 5
        )
    return sim.run(workload, RunControl(cycles=cycles, warmup_cycles=warmup),
                   telemetry=telemetry)


def _telemetry_config_from_args(args: argparse.Namespace):
    """A TelemetryConfig when ``--telemetry DIR`` was given, else None."""
    if not getattr(args, "telemetry", None):
        return None
    from .obs import TelemetryConfig

    return TelemetryConfig(stride=args.telemetry_stride)


def _telemetry_summary(payloads: list[dict]) -> dict:
    """Merge per-point telemetry payloads into one cross-point summary.

    Histograms are exact and mergeable, so the overall flit-delay
    distribution across all points is reconstructed losslessly from the
    per-point artifacts.
    """
    from .obs import TELEMETRY_SCHEMA, LogHistogram

    merged = None
    violations = jitter_violations = bursts = 0
    for payload in payloads:
        qos = payload.get("qos", {})
        bursts += qos.get("bursts", 0)
        for agg in qos.get("classes", {}).values():
            violations += agg.get("violations", 0)
            jitter_violations += agg.get("jitter_violations", 0)
        hist_dict = payload.get("histograms", {}).get(
            "flit_delay", {}
        ).get("overall")
        if hist_dict:
            hist = LogHistogram.from_dict(hist_dict)
            if merged is None:
                merged = hist
            else:
                merged.merge(hist)
    summary: dict = {
        "schema": TELEMETRY_SCHEMA,
        "points": len(payloads),
        "deadline_violations": violations,
        "jitter_violations": jitter_violations,
        "bursts": bursts,
    }
    if merged is not None and len(merged):
        summary["flit_delay_overall"] = {
            "n": len(merged),
            "p50_cycles": merged.percentile(50),
            "p99_cycles": merged.percentile(99),
            "max_cycles": merged.max,
            "histogram": merged.to_dict(),
        }
    return summary


def _write_telemetry_summary(args: argparse.Namespace,
                             payloads: list[dict], name: str) -> None:
    outdir = Path(args.telemetry)
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / name
    path.write_text(
        json.dumps(_telemetry_summary(payloads), indent=2, sort_keys=True,
                   allow_nan=False) + "\n",
        encoding="utf-8",
    )
    print(f"telemetry summary written to {path}")


def cmd_run(args: argparse.Namespace) -> int:
    session = None
    if args.telemetry:
        from .obs import TelemetrySession

        session = TelemetrySession(_telemetry_config_from_args(args))
    result = _build_and_run(args, args.arbiter, args.load, telemetry=session)
    rows = [
        ["arbiter / scheme", f"{result.arbiter} / {result.scheme}"],
        ["connections", result.connections],
        ["offered load", f"{result.offered_load:.1%}"],
        ["throughput", f"{result.throughput:.1%}"],
        ["crossbar utilization", f"{result.utilization:.1%}"],
        ["backlog at end (flits)", result.backlog],
    ]
    for label, value in sorted(result.flit_delay_us.items()):
        rows.append([f"flit delay [{label}] (us)", value])
    if result.frames.get("overall"):
        rows.append(["frame delay (us)", result.overall_frame_delay_us])
        rows.append(["frame jitter (us)", result.overall_jitter_us])
    print(render_table(["metric", "value"], rows,
                       title=f"{args.traffic.upper()} run, "
                             f"{result.cycles} cycles"))
    if session is not None:
        paths = session.export(args.telemetry)
        qos = session.qos
        print(f"\ntelemetry: {qos.total_violations()} deadline violations, "
              f"{qos.bursts} bursts; artifacts:")
        for name in sorted(paths):
            print(f"  {paths[name]}")
    return 0


_METRIC_PICKS = {
    "delay": lambda r: r.flit_delay_us["overall"],
    "frame-delay": lambda r: r.overall_frame_delay_us,
    "utilization": lambda r: r.utilization * 100,
    "jitter": lambda r: r.overall_jitter_us,
    "throughput": lambda r: r.throughput * 100,
}

_METRIC_UNITS = {"delay": "us", "frame-delay": "us", "jitter": "us",
                 "utilization": "%", "throughput": "%"}


def _workload_spec_from_args(args: argparse.Namespace):
    """(WorkloadSpec, RunControl) resolved exactly like ``cmd_run``."""
    from .campaign import WorkloadSpec

    scale = get_scale(args.scale)
    if args.traffic == "cbr":
        spec = WorkloadSpec.cbr()
        cycles = args.cycles or scale.cbr_cycles
        warmup = args.warmup if args.warmup >= 0 else min(
            scale.cbr_warmup, cycles // 5
        )
    else:
        spec = WorkloadSpec.vbr(
            model=args.model,
            frame_time_cycles=scale.vbr_frame_time_cycles,
            bandwidth_scale=scale.vbr_bandwidth_scale,
            num_gops=scale.vbr_num_gops,
        )
        cycles = args.cycles or scale.vbr_cycles
        warmup = args.warmup if args.warmup >= 0 else min(
            scale.vbr_warmup, cycles // 5
        )
    return spec, RunControl(cycles=cycles, warmup_cycles=warmup)


def _open_store(args: argparse.Namespace):
    from .campaign import ResultStore

    return ResultStore(args.store) if args.store else None


def _resolve_jobs(jobs: int) -> int:
    import os

    return jobs if jobs >= 1 else (os.cpu_count() or 1)


def cmd_sweep(args: argparse.Namespace) -> int:
    from .sim.sweep import run_load_sweep

    pick = _METRIC_PICKS[args.metric]
    for arbiter in args.arbiters:
        if arbiter not in ARBITER_NAMES:
            print(f"error: unknown arbiter {arbiter!r}", file=sys.stderr)
            return 2
    config = _config_from_args(args)
    spec, control = _workload_spec_from_args(args)
    store = _open_store(args)
    telemetry_cfg = _telemetry_config_from_args(args)
    series = {}
    payloads: list[dict] = []
    for arbiter in args.arbiters:
        sweep = run_load_sweep(
            args.loads, spec, config, arbiter, control,
            scheme=args.scheme, seed=args.seed,
            jobs=_resolve_jobs(args.jobs), store=store,
            telemetry=telemetry_cfg,
        )
        series[arbiter] = [
            (p.offered_load * 100, pick(p.result)) for p in sweep.points
        ]
        payloads.extend(p.telemetry for p in sweep.points if p.telemetry)
    unit = _METRIC_UNITS[args.metric]
    print(render_series(
        "load %", series,
        title=f"{args.traffic.upper()} sweep — {args.metric} ({unit})",
    ))
    if args.telemetry:
        _write_telemetry_summary(args, payloads, "sweep-telemetry.json")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import CampaignPlan, run_campaign
    from .sim.replication import spawn_seeds

    for arbiter in args.arbiters:
        if arbiter not in ARBITER_NAMES:
            print(f"error: unknown arbiter {arbiter!r}", file=sys.stderr)
            return 2
    seeds = args.seeds if args.seeds else spawn_seeds(args.seed, args.n_seeds)
    config = _config_from_args(args)
    spec, control = _workload_spec_from_args(args)
    plan = CampaignPlan.grid(
        args.name, config, args.arbiters, args.loads, seeds, spec, control,
        scheme=args.scheme,
    )
    jobs = _resolve_jobs(args.jobs)
    campaign = run_campaign(
        plan,
        jobs=jobs,
        store=_open_store(args),
        max_attempts=args.retries,
        progress=not args.quiet,
        telemetry=_telemetry_config_from_args(args),
    )

    # Per-arbiter series: metric averaged over seeds at each load.
    pick = _METRIC_PICKS[args.metric]
    groups: dict[tuple[str, float], list] = {}
    for outcome in campaign.outcomes:
        key = (outcome.spec.arbiter, outcome.spec.target_load)
        groups.setdefault(key, []).append(outcome.result)
    series = {}
    for arbiter in args.arbiters:
        points = []
        for load in args.loads:
            results = groups[(arbiter, load)]
            offered = sum(r.offered_load for r in results) / len(results)
            values = [pick(r) for r in results]
            finite = [v for v in values if v == v]
            mean = sum(finite) / len(finite) if finite else float("nan")
            points.append((offered * 100, mean))
        series[arbiter] = points
    unit = _METRIC_UNITS[args.metric]
    print(render_series(
        "load %", series,
        title=f"campaign {args.name!r} — {args.metric} ({unit}), "
              f"mean over {len(seeds)} seed(s)",
    ))

    summary = {
        "name": args.name,
        "points": len(campaign.outcomes),
        "hits": campaign.hits,
        "misses": campaign.misses,
        "wall_s": campaign.wall_s,
        "points_per_sec": campaign.points_per_sec,
        "jobs": jobs,
        "manifest": str(campaign.manifest_path) if campaign.manifest_path else None,
    }
    rows = [[k, v] for k, v in summary.items()]
    print(render_table(["field", "value"], rows, title="campaign summary"))
    if args.summary_json:
        with open(args.summary_json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
    if args.telemetry:
        payloads = [o.telemetry for o in campaign.outcomes if o.telemetry]
        _write_telemetry_summary(args, payloads, "campaign-telemetry.json")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from .faults import FaultConfig, FaultySingleRouterSim
    from .traffic.mixes import build_besteffort_workload

    config = _config_from_args(args)
    faults = FaultConfig(
        corruption_rate=args.corruption_rate,
        credit_loss_rate=args.credit_loss_rate,
        credit_dup_rate=args.credit_dup_rate,
        stuck_slot_rate=args.stuck_rate,
        dead_port=args.dead_port,
        dead_port_cycle=args.dead_port_cycle,
    )
    sim = FaultySingleRouterSim(config, arbiter=args.arbiter,
                                scheme=args.scheme, seed=args.seed,
                                faults=faults)
    workload = build_cbr_workload(sim.router, args.load, sim.rng.workload)
    if args.be_load > 0:
        for item in build_besteffort_workload(
            sim.router, args.be_load, sim.rng.workload
        ).loads:
            workload.add(item)
    warmup = min(args.warmup, args.cycles - 1)
    result = sim.run(workload, RunControl(cycles=args.cycles,
                                          warmup_cycles=warmup))
    rows = [
        ["arbiter / scheme", f"{result.arbiter} / {result.scheme}"],
        ["connections", result.connections],
        ["offered load", f"{result.offered_load:.1%}"],
        ["throughput", f"{result.throughput:.1%}"],
        ["backlog at end (flits)", result.backlog],
        ["peak degradation level", result.degradation_level],
    ]
    for label, value in sorted(result.flit_delay_us.items()):
        rows.append([f"flit delay [{label}] (us)", value])
    for name, count in result.fault.items():
        if count:
            rows.append([name, count])
    print(render_table(["metric", "value"], rows,
                       title=f"fault-injection run, {result.cycles} cycles"))
    if len(sim.schedule) and args.events > 0:
        print(f"\nfault schedule ({len(sim.schedule)} events, "
              f"last {min(args.events, len(sim.schedule))}):")
        print(sim.schedule.tail(args.events))
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from .perf import (
        check_regression,
        profile_fast_path,
        run_perf,
        run_skip_check,
        write_report,
    )

    if args.check_skip:
        # Determinism gate: the idle-skip engine must be bit-identical
        # to the plain loop for every arbiter family and several seeds.
        rows = []
        failed = False
        for arbiter in ("coa", "wfa", "islip", "pim", "greedy", "random"):
            for seed in (0, 1, 2):
                ok, _ = run_skip_check(
                    ports=args.ports, vcs=args.vcs, levels=args.levels,
                    arbiter=arbiter, scheme=args.scheme, seed=seed,
                )
                rows.append([arbiter, seed, "ok" if ok else "DIVERGED"])
                failed = failed or not ok
        print(render_table(["arbiter", "seed", "skip identity"], rows,
                           title="idle-skip bit-identity gate"))
        if failed:
            print("error: idle-skip run diverged from the reference loop",
                  file=sys.stderr)
            return 1
        return 0

    report = run_perf(
        ports=args.ports, vcs=args.vcs, levels=args.levels,
        arbiter=args.arbiter, scheme=args.scheme, load=args.load,
        seed=args.seed, cycles=args.cycles or None, quick=args.quick,
        repeats=args.repeats or None,
    )
    rows = [
        ["config", f"{report.ports}x{report.ports} ports, {report.vcs} VCs, "
                   f"{report.levels} levels"],
        ["arbiter / scheme", f"{report.arbiter} / {report.scheme}"],
        ["measured cycles", f"{report.cycles} x {report.repeats} reps"],
        ["fast path (cycles/sec)", f"{report.fast.cycles_per_sec:,.0f}"],
        ["reference path (cycles/sec)",
         f"{report.reference.cycles_per_sec:,.0f}"],
        ["speedup", f"{report.speedup:.2f}x"],
        ["grants identical", report.grants_identical],
    ]
    if report.low_load is not None:
        ll = report.low_load
        rows += [
            [f"skip path @ load {ll.load} (cycles/sec)",
             f"{ll.skip_cycles_per_sec:,.0f}"],
            [f"reference @ load {ll.load} (cycles/sec)",
             f"{ll.reference_cycles_per_sec:,.0f}"],
            ["idle-skip speedup", f"{ll.speedup:.2f}x"],
            ["skip identical", ll.skip_identical],
        ]
    fast_total = sum(report.fast.stages_ns.values()) or 1
    for stage, ns in report.fast.stages_ns.items():
        rows.append([f"fast stage [{stage}]", f"{ns / fast_total:.1%}"])
    print(render_table(["metric", "value"], rows,
                       title="scheduling hot-path benchmark"))
    if not report.grants_identical:
        print("error: fast and reference paths departed different flits",
              file=sys.stderr)
        return 1
    if report.low_load is not None and not report.low_load.skip_identical:
        print("error: idle-skip run diverged from the non-skipping run",
              file=sys.stderr)
        return 1
    if args.json:
        path = write_report(report, args.json)
        print(f"report written to {path}")
    if args.profile:
        print(profile_fast_path(
            ports=args.ports, vcs=args.vcs, levels=args.levels,
            arbiter=args.arbiter, scheme=args.scheme, load=args.load,
            seed=args.seed,
        ))
    if args.baseline:
        ok, message = check_regression(
            report, args.baseline, args.max_regression
        )
        print(message)
        if not ok:
            return 1
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    from .obs import (
        TelemetryConfig,
        TelemetrySession,
        check_obs_overhead,
        run_obs_bench,
        validate_timeseries_jsonl,
        write_obs_report,
    )

    if args.validate:
        try:
            text = Path(args.validate).read_text(encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot read {args.validate}: {exc}",
                  file=sys.stderr)
            return 1
        errors = validate_timeseries_jsonl(text)
        if errors:
            for problem in errors:
                print(f"error: {problem}", file=sys.stderr)
            print(f"{args.validate}: INVALID ({len(errors)} problem(s))",
                  file=sys.stderr)
            return 1
        print(f"{args.validate}: OK "
              f"({len(text.splitlines())} samples)")
        return 0

    if args.bench:
        report = run_obs_bench(
            ports=args.ports, vcs=args.vcs, levels=args.levels,
            arbiter=args.arbiter, scheme=args.scheme, load=args.load,
            seed=args.seed, cycles=args.cycles or 20_000,
            repeats=args.repeats or 5, stride=args.stride,
        )
        rows = [
            ["config", f"{report.ports}x{report.ports} ports, "
                       f"{report.vcs} VCs, {report.levels} levels"],
            ["measured cycles", f"{report.cycles} x {report.repeats} reps"],
            ["plain (cycles/sec)", f"{report.plain.cycles_per_sec:,.0f}"],
            ["disabled (cycles/sec)",
             f"{report.disabled.cycles_per_sec:,.0f}"],
            ["enabled (cycles/sec)", f"{report.enabled.cycles_per_sec:,.0f}"],
            ["overhead disabled", f"{report.overhead_disabled:+.2%}"],
            ["overhead enabled", f"{report.overhead_enabled:+.2%}"],
            ["results identical", report.results_identical],
            ["time-series samples", report.telemetry_samples],
            ["qos violations", report.qos_violations],
        ]
        print(render_table(["metric", "value"], rows,
                           title="telemetry overhead benchmark"))
        if args.json:
            path = write_obs_report(report, args.json)
            print(f"report written to {path}")
        ok, message = check_obs_overhead(
            report, args.max_disabled_overhead, args.max_overhead
        )
        print(message)
        return 0 if ok else 1

    # Default: a short telemetry-enabled CBR run with a QoS breakdown.
    config = _config_from_args(args)
    sim = SingleRouterSim(config, arbiter=args.arbiter, scheme=args.scheme,
                          seed=args.seed)
    workload = build_cbr_workload(sim.router, args.load, sim.rng.workload)
    cycles = args.cycles or 4_000
    session = TelemetrySession(TelemetryConfig(stride=args.stride))
    result = sim.run(
        workload,
        RunControl(cycles=cycles, warmup_cycles=min(cycles // 5, 500)),
        telemetry=session,
    )
    qos = session.qos.summary()
    rows = [
        ["arbiter / scheme", f"{result.arbiter} / {result.scheme}"],
        ["offered load", f"{result.offered_load:.1%}"],
        ["throughput", f"{result.throughput:.1%}"],
        ["time-series samples", session.timeseries.samples_taken],
        ["qos bursts", qos["bursts"]],
        ["flight dumps", len(session.flight.dumps)],
    ]
    for class_key, agg in sorted(qos["classes"].items()):
        rows.append([
            f"{class_key}: violations / jitter",
            f"{agg['violations']} / {agg['jitter_violations']} "
            f"(worst delay {agg['worst_delay_cycles']} cyc)",
        ])
    print(render_table(["metric", "value"], rows,
                       title=f"telemetry run, {result.cycles} cycles"))
    if args.out:
        paths = session.export(args.out)
        print("artifacts:")
        for name in sorted(paths):
            print(f"  {paths[name]}")
    return 0


def _sessions_run(args: argparse.Namespace, cycles: int):
    """One churn-enabled run; returns ``(result, engine, fingerprint)``."""
    import dataclasses

    from .sessions import ChurnConfig, SessionEngine, SessionsSpec

    config = _config_from_args(args)
    churn = dataclasses.replace(
        ChurnConfig(),
        arrivals_per_kcycle=args.rate,
        mean_hold_cycles=args.hold,
        hold_dist=args.hold_dist,
    )
    spec = SessionsSpec(churn=churn, policy=args.policy)
    sim = SingleRouterSim(config, arbiter=args.arbiter, scheme=args.scheme,
                          seed=args.seed)
    workload = build_cbr_workload(sim.router, args.load, sim.rng.workload)
    engine = SessionEngine.from_spec(config, spec, cycles, sim.rng.sessions)
    result = sim.run(workload, RunControl(cycles=cycles, warmup_cycles=0),
                     sessions=engine)
    return result, engine, sim.rng.state_fingerprint()


def cmd_sessions(args: argparse.Namespace) -> int:
    if args.bench:
        from .sessions.bench import (
            check_sessions_overhead,
            run_sessions_bench,
            write_sessions_report,
        )

        report = run_sessions_bench(
            ports=args.ports, vcs=args.vcs, levels=args.levels,
            arbiter=args.arbiter, scheme=args.scheme, load=args.load,
            seed=args.seed, cycles=args.cycles or 20_000,
            repeats=args.repeats or 5,
        )
        rows = [
            ["config", f"{report.ports}x{report.ports} ports, "
                       f"{report.vcs} VCs, {report.levels} levels"],
            ["measured cycles", f"{report.cycles} x {report.repeats} reps"],
            ["plain (cycles/sec)", f"{report.plain.cycles_per_sec:,.0f}"],
            ["disabled (cycles/sec)",
             f"{report.disabled.cycles_per_sec:,.0f}"],
            ["enabled (cycles/sec)", f"{report.enabled.cycles_per_sec:,.0f}"],
            ["overhead disabled", f"{report.overhead_disabled:+.2%}"],
            ["overhead enabled", f"{report.overhead_enabled:+.2%}"],
            ["disabled identical", report.disabled_identical],
            ["replay identical", report.replay_identical],
            ["sessions offered / blocked",
             f"{report.sessions_offered} / {report.sessions_blocked}"],
        ]
        print(render_table(["metric", "value"], rows,
                           title="session-layer overhead benchmark"))
        if args.json:
            path = write_sessions_report(report, args.json)
            print(f"report written to {path}")
        ok, message = check_sessions_overhead(
            report, args.max_disabled_overhead
        )
        print(message)
        return 0 if ok else 1

    if args.demo:
        from .analysis.blocking import render_blocking_table
        from .sessions.experiments import (
            blocking_sweep_plan,
            run_blocking_sweep,
        )

        if len(args.rates) < 3 or len(args.policies) < 2:
            print("error: --demo needs >= 3 rates and >= 2 policies",
                  file=sys.stderr)
            return 2
        plan = blocking_sweep_plan(
            "sessions-demo",
            _config_from_args(args),
            args.rates,
            args.policies,
            control=RunControl(cycles=args.cycles or 15_000,
                               warmup_cycles=0),
            background_load=args.load,
            seed=args.seed,
            arbiter=args.arbiter,
            scheme=args.scheme,
        )
        campaign, points = run_blocking_sweep(
            plan, jobs=_resolve_jobs(args.jobs), store=_open_store(args)
        )
        print(render_blocking_table(
            points,
            title="session blocking vs offered load "
                  f"({campaign.hits} cached / {len(campaign.outcomes)} "
                  "points)",
        ))
        return 0

    cycles = args.cycles or 15_000
    if args.check_determinism:
        first_result, first_engine, first_fp = _sessions_run(args, cycles)
        second_result, second_engine, second_fp = _sessions_run(args, cycles)
        identical = (
            first_engine.to_payload() == second_engine.to_payload()
            and first_result.to_dict() == second_result.to_dict()
            and first_fp == second_fp
        )
        n_events = len(first_engine.event_log)
        if not identical:
            print(f"DIVERGED: two seed={args.seed} runs differ",
                  file=sys.stderr)
            return 1
        print(f"deterministic: seed={args.seed} replayed identically "
              f"({n_events} session events, {cycles} cycles)")
        return 0

    result, engine, _ = _sessions_run(args, cycles)
    payload = engine.to_payload()
    low, high = payload["blocking_wilson_95"]
    p_block = payload["blocking_probability"]
    rows = [
        ["arbiter / scheme / policy",
         f"{result.arbiter} / {result.scheme} / {payload['policy']}"],
        ["offered sessions", payload["offered"]],
        ["admitted / blocked",
         f"{payload['admitted']} / {payload['blocked']}"],
        ["P(block) [wilson 95%]",
         f"{0.0 if p_block is None else p_block:.4f} "
         f"[{low:.3f}, {high:.3f}]"],
        ["offered / carried erlangs",
         f"{payload['offered_erlangs']:.2f} / "
         f"{payload['carried_erlangs']:.2f}"],
        ["renegotiations ok / rejected",
         f"{payload['reneg_ok']} / {payload['reneg_rejected']}"],
        ["still active at end", payload["expired_active"]],
        ["throughput", f"{result.throughput:.1%}"],
    ]
    for name, counters in sorted(payload["by_class"].items()):
        rows.append([
            f"class {name}: offered/blocked",
            f"{counters['offered']} / {counters['blocked']}",
        ])
    print(render_table(["metric", "value"], rows,
                       title=f"session churn run, {cycles} cycles"))
    if args.events > 0 and payload["event_log"]:
        tail = payload["event_log"][-args.events:]
        print(f"\nsession events ({len(payload['event_log'])} total, "
              f"last {len(tail)}):")
        for line in tail:
            print(f"  {line}")
    return 0


def _control_run(args: argparse.Namespace, cycles: int):
    """One control-enabled churn run on the faulty harness.

    Returns ``(result, engine, fingerprint)``.
    """
    from .control.experiments import (
        FRONTIER_CHURN,
        FRONTIER_CONTROL,
        FRONTIER_FAULTS,
    )
    from .faults.harness import FaultySingleRouterSim
    from .sessions import SessionEngine, SessionsSpec

    config = _config_from_args(args)
    spec = SessionsSpec(churn=FRONTIER_CHURN, policy="adaptive",
                        control=FRONTIER_CONTROL)
    sim = FaultySingleRouterSim(config, arbiter=args.arbiter,
                                scheme=args.scheme, seed=args.seed,
                                faults=FRONTIER_FAULTS)
    workload = build_cbr_workload(sim.router, args.load, sim.rng.workload)
    engine = SessionEngine.from_spec(config, spec, cycles, sim.rng.sessions)
    result = sim.run(workload, RunControl(cycles=cycles, warmup_cycles=0),
                     sessions=engine)
    return result, engine, sim.rng.state_fingerprint()


def cmd_control(args: argparse.Namespace) -> int:
    if args.bench:
        from .control.bench import (
            check_control_overhead,
            run_control_bench,
            write_control_report,
        )

        report = run_control_bench(
            ports=args.ports, vcs=args.vcs, levels=args.levels,
            arbiter=args.arbiter, scheme=args.scheme, load=args.load,
            seed=args.seed, cycles=args.cycles or 20_000,
            repeats=args.repeats or 5,
        )
        rows = [
            ["config", f"{report.ports}x{report.ports} ports, "
                       f"{report.vcs} VCs, {report.levels} levels"],
            ["measured cycles", f"{report.cycles} x {report.repeats} reps"],
            ["plain (cycles/sec)", f"{report.plain.cycles_per_sec:,.0f}"],
            ["disabled (cycles/sec)",
             f"{report.disabled.cycles_per_sec:,.0f}"],
            ["enabled (cycles/sec)", f"{report.enabled.cycles_per_sec:,.0f}"],
            ["overhead disabled", f"{report.overhead_disabled:+.2%}"],
            ["overhead enabled", f"{report.overhead_enabled:+.2%}"],
            ["disabled identical", report.disabled_identical],
            ["faulty disabled identical", report.faulty_disabled_identical],
            ["replay identical", report.replay_identical],
            ["setup timeouts / retries",
             f"{report.setup_timeouts} / {report.setup_retries}"],
            ["pressure samples", report.pressure_samples],
        ]
        print(render_table(["metric", "value"], rows,
                           title="control-plane overhead benchmark"))
        if args.json:
            path = write_control_report(report, args.json)
            print(f"report written to {path}")
        ok, message = check_control_overhead(
            report, args.max_disabled_overhead, args.max_enabled_overhead
        )
        print(message)
        return 0 if ok else 1

    if args.demo:
        from .control.experiments import frontier_plan, run_frontier

        if len(args.rates) < 3 or len(args.policies) < 2:
            print("error: --demo needs >= 3 rates and >= 2 policies",
                  file=sys.stderr)
            return 2
        plan = frontier_plan(
            "control-demo",
            _config_from_args(args),
            args.rates,
            args.policies,
            args.seeds,
            control=RunControl(cycles=args.cycles or 12_000,
                               warmup_cycles=0),
            background_load=args.load,
            arbiter=args.arbiter,
            scheme=args.scheme,
        )
        campaign, points = run_frontier(
            plan, jobs=_resolve_jobs(args.jobs), store=_open_store(args)
        )
        rows = []
        for p in points:
            p_block = p.blocking_probability
            rows.append([
                p.policy,
                f"{p.arrivals_per_kcycle:g}",
                p.offered,
                f"{p.blocked_cac} / {p.blocked_timeout}",
                "n/a" if p_block != p_block else f"{p_block:.4f}",
                f"{p.violation_rate_per_kcycle:.3f}",
                p.setup_retries,
                p.readmitted_alt,
                p.degradation_level,
            ])
        print(render_table(
            ["policy", "rate/kcyc", "offered", "blocked cac/timeout",
             "P(block)", "viol/kcyc", "retries", "readmit-alt", "deg"],
            rows,
            title="blocking vs delivered QoS under churn + faults "
                  f"({campaign.hits} cached / {len(campaign.outcomes)} "
                  "points)",
        ))
        return 0

    cycles = args.cycles or 12_000
    if args.check_determinism:
        from .control.bench import _check_faulty_identity

        first_result, first_engine, first_fp = _control_run(args, cycles)
        second_result, second_engine, second_fp = _control_run(args, cycles)
        replay_ok = (
            first_result.to_dict() == second_result.to_dict()
            and first_engine.to_payload() == second_engine.to_payload()
            and first_engine.control_payload()
            == second_engine.control_payload()
            and first_fp == second_fp
        )
        disabled_ok = _check_faulty_identity(
            args.ports, args.vcs, args.arbiter, args.scheme, args.load,
            args.seed, cycles,
        )
        if not replay_ok:
            print(f"DIVERGED: two seed={args.seed} control runs differ",
                  file=sys.stderr)
            return 1
        if not disabled_ok:
            print("DIVERGED: control-disabled engine perturbed the "
                  "faulty run", file=sys.stderr)
            return 1
        print(f"deterministic: seed={args.seed} control runs replayed "
              f"identically and the disabled path is bit-identical "
              f"({cycles} cycles)")
        return 0

    result, engine, _ = _control_run(args, cycles)
    sessions = engine.to_payload()
    control = engine.control_payload()
    band = control["band"]
    sig = control["signaling"]
    rows = [
        ["arbiter / scheme / policy",
         f"{result.arbiter} / {result.scheme} / {sessions['policy']}"],
        ["offered sessions", sessions["offered"]],
        ["admitted / blocked cac / blocked timeout",
         f"{sessions['admitted']} / {sessions['blocked_cac']} / "
         f"{sessions['blocked_timeout']}"],
        ["setup timeouts / retries",
         f"{sig['setup_timeouts']} / {sig['setup_retries']}"],
        ["readmitted on alternate port", sig["readmitted_alt"]],
        ["violation rate (per kcycle)",
         f"{control['violation_rate_per_kcycle']:.3f}"],
        ["occupancy EWMA (flits)", f"{control['occupancy_ewma']:.2f}"],
        ["pressure band", f"{band['state']} "
                          f"({len(band['transitions'])} transitions)"],
        ["degradation level (peak)", result.degradation_level],
        ["throughput", f"{result.throughput:.1%}"],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"closed-loop control run, {cycles} cycles"))
    return 0


def cmd_fq(args: argparse.Namespace) -> int:
    from .fq.experiments import (
        comparison_plan,
        comparison_report,
        render_comparison_table,
        render_frontier_table,
        run_comparison,
        summarize_schemes,
    )

    for scheme in args.schemes:
        if scheme not in SCHEME_NAMES:
            print(f"error: unknown scheme {scheme!r}", file=sys.stderr)
            return 2
    cycles = args.cycles or 6_000
    warmup = args.warmup if args.warmup >= 0 else cycles // 12
    config = _config_from_args(args)
    plan = comparison_plan(
        "fq-demo" if args.demo else "fq-comparison",
        config,
        args.schemes,
        args.loads,
        args.seeds,
        control=RunControl(cycles=cycles, warmup_cycles=warmup),
        arbiter=args.arbiter,
    )
    campaign, points = run_comparison(
        plan, jobs=_resolve_jobs(args.jobs), store=_open_store(args)
    )
    summaries = summarize_schemes(points, config)
    print(render_comparison_table(
        summaries,
        title=f"cross-paradigm QoS comparison on {args.arbiter} — "
              f"{config.num_ports}x{config.num_ports}, "
              f"{config.vcs_per_link} VCs, {cycles} cycles "
              f"({campaign.hits} cached / {len(campaign.outcomes)} points)",
    ))
    print()
    print(render_frontier_table(
        summaries, title="delivered QoS vs link-scheduler hardware cost"
    ))
    if args.json:
        report = comparison_report(campaign, points, config)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, allow_nan=False)
            fh.write("\n")
        print(f"report written to {args.json}")
    return 0


def cmd_sched(args: argparse.Namespace) -> int:
    rows = []
    for name in ARBITER_NAMES:
        cost = hwcost.arbiter_cost(name, args.ports, args.levels)
        if cost is None:
            rows.append(["arbiter", name, "n/a", "n/a", "n/a"])
        else:
            rows.append([
                "arbiter", name, f"{cost.area_ge:,.0f}",
                f"{cost.delay_levels:.1f}", "n/a",
            ])
    for name in SCHEME_NAMES:
        update = hwcost.scheme_cost(name)
        link = hwcost.link_scheduler_cost(name, args.vcs)
        rows.append([
            "scheme", name, f"{update.area_ge:,.0f}",
            f"{update.delay_levels:.1f}", f"{link.area_ge:,.0f}",
        ])
    print(render_table(
        ["kind", "name", "area GE", "delay lvl", f"link GE ({args.vcs} VCs)"],
        rows,
        title=f"registered algorithms and hardware models "
              f"({args.ports}x{args.ports} crossbar)",
    ))
    return 0


def _fabric_config(args: argparse.Namespace) -> RouterConfig:
    """Fabric-scale router config: small VC counts, short rounds."""
    return RouterConfig(
        num_ports=args.ports,
        vcs_per_link=args.vcs,
        candidate_levels=args.levels,
        vc_buffer_depth=2,
        flit_cycles_per_round=100 * args.vcs,
    )


def _fabric_run(args: argparse.Namespace, cycles: int):
    """One fabric churn run.  Returns ``(result, engine, fingerprint)``."""
    from .fabric import FabricSim, FabricSpec, parse_topology
    from .sessions.churn import ChurnConfig

    fabric = FabricSpec(
        topology=parse_topology(args.topology),
        churn=ChurnConfig(
            arrivals_per_kcycle=args.rate,
            mean_hold_cycles=args.hold,
            mix=(("cbr-high", 1.0),),
        ),
        path_policy=args.policy,
        max_path_attempts=args.attempts,
        conns_per_router=4 if args.load > 0 else 0,
        drain=args.load > 0,
    )
    sim = FabricSim(fabric, _fabric_config(args), arbiter=args.arbiter,
                    scheme=args.scheme, seed=args.seed)
    result = sim.run(args.load, cycles)
    return result, sim.engine, sim.fingerprint()


def _fabric_zero_churn_identical(args: argparse.Namespace,
                                 cycles: int) -> bool:
    """Zero-churn fabric run vs a plain MultiRouterNetwork loop.

    Both build the same topology, static CBR background, and arbiter
    stream; the fabric engine must add nothing — same delivered counts,
    same residue, same RNG fingerprints.
    """
    from .fabric import FabricSim, FabricSpec, build_static_load, parse_topology
    from .network import MultiRouterNetwork
    from .sessions.churn import ChurnConfig
    from .sim.engine import RngStreams

    config = _fabric_config(args)
    load = args.load if args.load > 0 else 0.3
    topo_spec = parse_topology(args.topology)
    fabric = FabricSpec(
        topology=topo_spec,
        churn=ChurnConfig(arrivals_per_kcycle=0.0),
        conns_per_router=4,
        drain=True,
    )
    sim = FabricSim(fabric, config, arbiter=args.arbiter,
                    scheme=args.scheme, seed=args.seed)
    fab_result = sim.run(load, cycles)

    rng = RngStreams(args.seed)
    net = MultiRouterNetwork(topo_spec.build(), config,
                             arbiter=args.arbiter, scheme=args.scheme)
    conns, schedules = build_static_load(net, 4, load, cycles, rng.workload)
    pointers = [0] * len(conns)
    arb = rng.arbiter
    for now in range(cycles):
        for idx, conn in enumerate(conns):
            times = schedules[idx]
            ptr = pointers[idx]
            while ptr < len(times) and times[ptr] <= now:
                net.inject(conn, gen_cycle=now)
                ptr += 1
            pointers[idx] = ptr
        net.step(now, arb)
    now = cycles
    while net.total_buffered() > 0 and now < cycles * 3:
        net.step(now, arb)
        now += 1
    plain_stat = net.end_to_end_delay
    fab_net = sim.net
    fab_stat = fab_net.end_to_end_delay
    return (
        fab_net.delivered == net.delivered
        and fab_net.total_buffered() == net.total_buffered()
        and fab_net.lost_flits == net.lost_flits
        and (fab_stat.n, fab_stat.mean, fab_stat.max)
        == (plain_stat.n, plain_stat.mean, plain_stat.max)
        and sim.fingerprint() == rng.state_fingerprint()
        and fab_result.to_dict()["flits"]["overall"] == net.delivered
    )


def cmd_fabric(args: argparse.Namespace) -> int:
    from .fabric.paths import PATH_POLICIES
    from .fabric.spec import TOPOLOGY_KINDS

    if args.list_topologies:
        rows = []
        for kind, (_builder, required, defaults) in sorted(
            TOPOLOGY_KINDS.items()
        ):
            default = ",".join(f"{n}={v}" for n, v in sorted(defaults.items()))
            rows.append(["topology", kind, ",".join(required), default])
        for policy in PATH_POLICIES:
            rows.append(["path policy", policy, "-", "-"])
        print(render_table(
            ["kind", "name", "params", "default"], rows,
            title="registered fabric topologies and path policies",
        ))
        return 0

    if args.policy not in PATH_POLICIES:
        print(f"error: unknown path policy {args.policy!r}; known: "
              f"{', '.join(PATH_POLICIES)}", file=sys.stderr)
        return 2

    if args.bench:
        report = _fabric_bench(args)
        rows = [
            [name, f"{t['wall_s']:.2f}", t["offered"], t["blocked"],
             f"{t['blocking_probability']:.3f}",
             f"{t['mean_hops']:.2f}", f"{t['balance_jain']:.3f}"]
            for name, t in sorted(report["topologies"].items())
        ]
        print(render_table(
            ["topology", "wall s", "offered", "blocked", "P(block)",
             "hops", "jain"],
            rows,
            title=f"fabric bench: {report['cycles']} cycles, rate "
                  f"{report['arrival_rate']}/kcycle, policy "
                  f"{report['path_policy']}",
        ))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True,
                          allow_nan=False)
                fh.write("\n")
            print(f"report written to {args.json}")
        return 0

    if args.demo:
        from .fabric.experiments import (
            fabric_blocking_plan,
            render_fabric_blocking_table,
            run_fabric_blocking,
        )
        from .fabric.spec import parse_topology

        for policy in args.policies:
            if policy not in PATH_POLICIES:
                print(f"error: unknown path policy {policy!r}",
                      file=sys.stderr)
                return 2
        import dataclasses

        from .fabric.experiments import DEMO_FABRIC_CHURN

        cycles = args.cycles or 8_000
        plan = fabric_blocking_plan(
            "fabric-demo",
            _fabric_config(args),
            parse_topology(args.topology),
            args.rates,
            args.policies,
            base_churn=dataclasses.replace(
                DEMO_FABRIC_CHURN, mean_hold_cycles=args.hold
            ),
            control=RunControl(cycles=cycles, warmup_cycles=0),
            max_path_attempts=args.attempts,
            seed=args.seed,
            arbiter=args.arbiter,
            scheme=args.scheme,
        )
        campaign, points = run_fabric_blocking(
            plan, jobs=_resolve_jobs(args.jobs), store=_open_store(args)
        )
        print(f"fabric blocking on {args.topology} — {cycles} cycles, "
              f"{campaign.hits} cached / {len(campaign.outcomes)} points")
        print(render_fabric_blocking_table(points))
        return 0

    cycles = args.cycles or 8_000
    if args.check_determinism:
        first_result, first_engine, first_fp = _fabric_run(args, cycles)
        second_result, second_engine, second_fp = _fabric_run(args, cycles)
        identical = (
            first_engine.to_payload() == second_engine.to_payload()
            and first_result.to_dict() == second_result.to_dict()
            and first_fp == second_fp
        )
        if not identical:
            print(f"DIVERGED: two seed={args.seed} fabric runs differ",
                  file=sys.stderr)
            return 1
        if not _fabric_zero_churn_identical(args, min(cycles, 4_000)):
            print("DIVERGED: zero-churn fabric run differs from the plain "
                  "network loop", file=sys.stderr)
            return 1
        n_events = len(first_engine.event_log)
        print(f"deterministic: seed={args.seed} replayed identically "
              f"({n_events} fabric events, {cycles} cycles); zero-churn "
              f"run bit-identical to the plain network loop")
        return 0

    result, engine, _ = _fabric_run(args, cycles)
    payload = engine.to_payload()
    low, high = payload["blocking_wilson_95"]
    p_block = payload["blocking_probability"]
    hops_mean = payload["hops"]["mean"]
    net_stats = payload["network"]
    rows = [
        ["topology / policy",
         f"{args.topology} / {payload['path_policy']}"],
        ["arbiter / scheme",
         f"{result.arbiter} / {result.scheme}"],
        ["offered sessions", payload["offered"]],
        ["admitted / blocked",
         f"{payload['admitted']} / {payload['blocked']}"],
        ["P(block) [wilson 95%]",
         f"{0.0 if p_block is None else p_block:.4f} "
         f"[{low:.3f}, {high:.3f}]"],
        ["re-admitted on alternate",
         payload["path_attempts"]["readmitted_alt"]],
        ["mean hops (links)",
         "n/a" if hops_mean is None else f"{hops_mean:.2f}"],
        ["blocked at hop",
         ", ".join(f"{h}:{n}" for h, n in
                   sorted(payload["blocked_at_hop"].items(),
                          key=lambda kv: int(kv[0]))) or "-"],
        ["reserved-load jain index",
         f"{payload['path_balance']['final']['jain']:.3f}"],
        ["flits delivered / lost",
         f"{net_stats['delivered']} / {net_stats['lost_flits']}"],
        ["released connections", net_stats["released_connections"]],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"fabric churn run, {cycles} cycles"))
    if args.events > 0 and payload["event_log"]:
        tail = payload["event_log"][-args.events:]
        print(f"\nfabric events ({len(payload['event_log'])} total, "
              f"last {len(tail)}):")
        for line in tail:
            print(f"  {line}")
    return 0


def _fabric_bench(args: argparse.Namespace) -> dict:
    """One fixed fabric point per registered topology kind, timed."""
    import dataclasses
    import time

    from .fabric.experiments import (
        DEMO_FABRIC_CHURN,
        fabric_blocking_plan,
        run_fabric_blocking,
    )
    from .fabric.spec import TOPOLOGY_KINDS, TopologySpec

    config = _fabric_config(args)
    cycles = args.cycles or 8_000
    topologies: dict[str, dict] = {}
    for kind in sorted(TOPOLOGY_KINDS):
        _builder, _required, defaults = TOPOLOGY_KINDS[kind]
        spec = TopologySpec(kind, tuple(sorted(defaults.items())))
        plan = fabric_blocking_plan(
            f"fabric-bench-{kind}", config, spec, [args.rate],
            [args.policy],
            base_churn=dataclasses.replace(
                DEMO_FABRIC_CHURN, mean_hold_cycles=args.hold
            ),
            control=RunControl(cycles=cycles, warmup_cycles=0),
            max_path_attempts=args.attempts,
            seed=args.seed,
            arbiter=args.arbiter,
            scheme=args.scheme,
        )
        t0 = time.monotonic()
        _campaign, points = run_fabric_blocking(plan, jobs=1)
        wall_s = time.monotonic() - t0
        point = points[0]
        p_block = point.blocking_probability
        topologies[point.topology] = {
            "wall_s": wall_s,
            "offered": point.offered_sessions,
            "blocked": point.blocked_sessions,
            "blocking_probability": (
                0.0 if p_block != p_block else p_block
            ),
            "readmitted_alt": point.readmitted_alt,
            "mean_hops": (
                0.0 if point.mean_hops != point.mean_hops
                else point.mean_hops
            ),
            "balance_jain": point.balance_jain,
        }
    return {
        "schema": "repro/fabric-bench/v1",
        "ports": args.ports,
        "vcs": args.vcs,
        "levels": args.levels,
        "arbiter": args.arbiter,
        "scheme": args.scheme,
        "seed": args.seed,
        "cycles": cycles,
        "arrival_rate": args.rate,
        "hold_cycles": args.hold,
        "path_policy": args.policy,
        "topologies": topologies,
    }


def _shard_fabric(args: argparse.Namespace):
    """The shard CLI's fabric point (always per-router RNG)."""
    from .fabric.spec import FabricSpec, parse_topology
    from .sessions.churn import ChurnConfig

    return FabricSpec(
        topology=parse_topology(args.topology),
        churn=ChurnConfig(
            arrivals_per_kcycle=args.rate,
            mean_hold_cycles=args.hold,
            mix=(("cbr-high", 1.0),),
        ),
        conns_per_router=4 if args.load > 0 else 0,
        drain=args.load > 0,
        sample_stride=500,
        rng_mode="per-router",
    )


def cmd_shard(args: argparse.Namespace) -> int:
    from .shard import ShardSpec, ShardedFabricSim, check_identity
    from .shard.bench import (
        check_shard_regression,
        run_shard_bench,
        write_report,
    )

    cycles = args.cycles or 4_000
    config = _fabric_config(args)

    if args.bench or args.sweep:
        topologies = (
            _parse_names(args.sweep) if args.sweep else [args.topology]
        )
        worker_counts = sorted({w for w in args.workers_list if w > 1})
        report = run_shard_bench(
            topologies,
            worker_counts or [2, 4],
            cycles=cycles,
            seed=args.seed,
            rate=args.rate,
            inline=args.inline,
        )
        rows = []
        for name, entry in sorted(report["topologies"].items()):
            rows.append([name, entry["routers"], "serial",
                         f"{entry['serial']['wall_s']:.2f}",
                         f"{entry['serial']['cycles_per_sec']:,.0f}",
                         "-", "-", "yes"])
            for workers, stats in sorted(entry["workers"].items(),
                                         key=lambda kv: int(kv[0])):
                rows.append([
                    name, entry["routers"], f"{workers}w",
                    f"{stats['wall_s']:.2f}",
                    f"{stats['cycles_per_sec']:,.0f}",
                    f"{stats['speedup']:.2f}x",
                    stats["crossing_flits"],
                    "yes" if stats["identity_ok"] else "NO",
                ])
        print(render_table(
            ["topology", "routers", "mode", "wall s", "cyc/s", "speedup",
             "x-flits", "identical"],
            rows,
            title=f"shard scale bench: {report['cycles']} cycles, "
                  f"{report['cpu_count']} CPUs"
                  + (", inline" if report["inline"] else ""),
        ))
        if args.json:
            write_report(report, args.json)
            print(f"report written to {args.json}")
        if args.baseline:
            try:
                ok, msg = check_shard_regression(report, args.baseline)
            except FileNotFoundError:
                print(f"error: baseline {args.baseline!r} not found",
                      file=sys.stderr)
                return 2
            print(msg)
            if not ok:
                return 1
        return 0

    fabric = _shard_fabric(args)
    if args.check_identity:
        failed = False
        for workers in args.workers_list:
            shard = ShardSpec(workers=workers,
                              partitioner=args.partitioner,
                              max_window=args.max_window)
            rep = check_identity(
                fabric, config, arbiter=args.arbiter, scheme=args.scheme,
                seed=args.seed, target_load=args.load, cycles=cycles,
                shard=shard, inline=args.inline or workers == 1,
            )
            verdict = "identical" if rep.ok else "DIVERGED"
            print(f"{args.topology} x {shard.describe()}: {verdict} "
                  f"({rep.windows} windows, {rep.crossing_flits} boundary "
                  f"flits, {rep.crossing_credits} credits)")
            for line in rep.mismatches:
                print(f"  {line}", file=sys.stderr)
            failed = failed or not rep.ok
        return 1 if failed else 0

    shard = ShardSpec(workers=args.workers, partitioner=args.partitioner,
                      max_window=args.max_window)
    sim = ShardedFabricSim(fabric, config, arbiter=args.arbiter,
                           scheme=args.scheme, seed=args.seed,
                           shard=shard, inline=args.inline)
    result = sim.run(args.load, cycles)
    payload = sim.payload
    net_stats = payload["network"]
    group_sizes = ", ".join(str(len(p)) for p in sim.parts)
    rows = [
        ["topology / shard", f"{args.topology} / {shard.describe()}"],
        ["router groups", group_sizes],
        ["backend", "inline" if args.inline else "processes"],
        ["barrier windows", sim.windows],
        ["boundary flits / credits",
         f"{sim.crossing_flits} / {sim.crossing_credits}"],
        ["idle cycles skipped", sim.skipped_cycles],
        ["offered sessions", payload["offered"]],
        ["admitted / blocked",
         f"{payload['admitted']} / {payload['blocked']}"],
        ["flits delivered / lost",
         f"{net_stats['delivered']} / {net_stats['lost_flits']}"],
        ["backlog", result.to_dict()["backlog"]],
    ]
    print(render_table(["metric", "value"], rows,
                       title=f"sharded fabric run, {cycles} cycles"))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    if args.artifact == "table1":
        rows = []
        for name, stats in SEQUENCE_STATS.items():
            trace = generate_trace(stats, 40, np.random.default_rng(args.seed))
            got = trace_statistics(trace)
            rows.append([name, got.max_bits, got.min_bits, got.avg_bits])
        print(render_table(
            ["sequence", "max bits", "min bits", "avg bits"], rows,
            title="Table 1 — MPEG-2 sequence statistics (synthetic)",
        ))
        return 0
    if args.artifact == "fig6":
        from .traffic.mpeg import FRAME_PERIOD_SECONDS
        from .analysis import sparkline

        stats = SEQUENCE_STATS["flower_garden"]
        trace = generate_trace(stats, 4, np.random.default_rng(args.seed))
        mbps = trace / FRAME_PERIOD_SECONDS / 1e6
        print("Fig. 6 — Flower Garden bitrate over time (Mbit/s)")
        print(sparkline(mbps))
        print(f"mean {mbps.mean():.1f}  min {mbps.min():.1f}  "
              f"max {mbps.max():.1f}")
        return 0
    if args.artifact == "hwcost":
        iabp, siabp = hwcost.iabp_cost(), hwcost.siabp_cost()
        print(render_table(
            ["block", "area (GE)", "delay (levels)"],
            [["IABP", iabp.area_ge, iabp.delay_levels],
             ["SIABP", siabp.area_ge, siabp.delay_levels],
             ["ratio", iabp.area_ge / siabp.area_ge,
              iabp.delay_levels / siabp.delay_levels]],
            title="H1 — priority-update hardware cost",
        ))
        return 0
    if args.artifact == "fig5":
        result = cbr_delay_experiment(seed=args.seed, scale=args.scale,
                                      jobs=_resolve_jobs(args.jobs),
                                      store=_open_store(args))
        for label in ("low", "medium", "high"):
            print(render_series(
                "load %",
                {a: result.class_series(a, label) for a in ("coa", "wfa")},
                title=f"Fig. 5 — {label} class, avg flit delay (us)",
            ))
        return 0
    if args.artifact in ("fig8", "fig9", "jitter"):
        for model in ("SR", "BB"):
            result = vbr_experiment(model=model, seed=args.seed,
                                    scale=args.scale,
                                    jobs=_resolve_jobs(args.jobs),
                                    store=_open_store(args))
            if args.artifact == "fig8":
                series = {a: result.utilization_series(a)
                          for a in ("coa", "wfa")}
                title = f"Fig. 8 ({model}) — crossbar utilization (%)"
            elif args.artifact == "fig9":
                series = {a: result.frame_delay_series(a)
                          for a in ("coa", "wfa")}
                title = f"Fig. 9 ({model}) — avg frame delay (us)"
            else:
                series = {a: result.jitter_series(a) for a in ("coa", "wfa")}
                title = f"§5.2 ({model}) — avg frame jitter (us)"
            print(render_series("load %", series, title=title))
        return 0
    raise AssertionError(f"unhandled artifact {args.artifact}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
