"""Flit and phit data types.

The MMR's flow-control unit is the *flit*; physical transfer happens one
*phit* (physical transfer unit, the link width) per link clock.  Flits are
large (1024 bits) so that arbitration and crossbar reconfiguration can be
hidden behind flit transmission; latency is recovered by pipelining flit
transfer at the phit level.

The cycle-accurate hot path of the simulator does not allocate ``Flit``
objects (it keeps flit metadata in preallocated ring buffers, see
:mod:`repro.router.vc_memory`); this module provides the object form used
by the connection-setup machinery, the multi-router network extension, the
examples, and the tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["FlitType", "Flit", "FRAME_NONE"]

#: Frame id used for flits that do not belong to an application frame
#: (CBR flits, best-effort packets, control flits).
FRAME_NONE = -1


class FlitType(enum.IntEnum):
    """Kinds of flits that traverse the MMR.

    ``PROBE``/``ACK`` implement pipelined circuit switching (PCS) used to
    set up multimedia connections; ``HEAD``/``BODY``/``TAIL`` carry
    best-effort packets under virtual cut-through; ``DATA`` carries the
    payload of an established multimedia connection (a stream, so it has
    no packet framing of its own — application frames are tracked by
    ``frame_id``/``frame_last``).
    """

    DATA = 0
    HEAD = 1
    BODY = 2
    TAIL = 3
    PROBE = 4
    ACK = 5


@dataclass(slots=True)
class Flit:
    """One flow-control unit.

    Attributes
    ----------
    conn_id:
        Global id of the connection the flit belongs to.
    ftype:
        Flit kind (see :class:`FlitType`).
    gen_cycle:
        Flit cycle at which the source generated the flit (used for
        latency-since-generation metrics, as in the paper).
    frame_id:
        Application frame (e.g. one MPEG-2 picture) this flit belongs to,
        or :data:`FRAME_NONE`.
    frame_last:
        True if this is the last flit of its application frame.  Frame
        delay in the paper is the delay of the last flit of the frame.
    dest_port:
        Output port requested at the current router (single-router runs),
        or the final destination node id (network runs).
    payload:
        Free-form payload used by tests and the network extension.
    """

    conn_id: int
    ftype: FlitType = FlitType.DATA
    gen_cycle: int = 0
    frame_id: int = FRAME_NONE
    frame_last: bool = False
    dest_port: int = 0
    payload: object = None

    def is_control(self) -> bool:
        """True for PCS control flits (probe/ack)."""
        return self.ftype in (FlitType.PROBE, FlitType.ACK)

    def is_packet_boundary(self) -> bool:
        """True for flits that begin or end a best-effort packet."""
        return self.ftype in (FlitType.HEAD, FlitType.TAIL)
