"""Topology partitioners: carve router ids into per-worker groups.

A partition assigns every router of a :class:`~repro.fabric.spec.
TopologySpec` to exactly one worker.  Because the sharded run is
byte-identical to the serial reference for *any* partition, the choice
only affects performance: a good partition minimises boundary links
(flits crossing worker boundaries pay a barrier exchange) and balances
router counts.  Three strategies are provided:

* ``contiguous`` — split ``range(num_routers)`` into near-equal runs.
  Always applicable; matches row-major locality on grid topologies.
* ``rows`` — mesh/torus only: assign whole grid rows (router id
  ``r * cols + c``) to workers, so the only boundary links are the
  vertical (and wrap) links between row groups.
* ``pods`` — fat-tree only: the core stage is one block and each pod
  (aggregation + edge routers) is another; blocks are dealt out in
  contiguous runs, so pod-internal links never cross a boundary.

``auto`` picks ``rows``/``pods`` when the worker count fits that
structure and falls back to ``contiguous``.
"""

from __future__ import annotations

from ..fabric.spec import TopologySpec
from ..network.topology import Topology

__all__ = [
    "partition_routers",
    "boundary_links",
    "partition_summary",
]


def _split_contiguous(n: int, workers: int) -> list[list[int]]:
    """Split ``range(n)`` into ``workers`` near-equal contiguous runs."""
    base, extra = divmod(n, workers)
    parts: list[list[int]] = []
    start = 0
    for rank in range(workers):
        size = base + (1 if rank < extra else 0)
        parts.append(list(range(start, start + size)))
        start += size
    return parts


def _split_blocks(blocks: list[list[int]], workers: int) -> list[list[int]]:
    """Deal contiguous runs of blocks to workers, balancing router counts."""
    parts: list[list[int]] = []
    remaining_blocks = len(blocks)
    remaining_routers = sum(len(b) for b in blocks)
    idx = 0
    for rank in range(workers):
        want = remaining_routers / (workers - rank)
        part: list[int] = []
        # Leave at least one block for every remaining worker.
        while idx < len(blocks) and (
            not part
            or (
                remaining_blocks > workers - rank - 1
                and len(part) + len(blocks[idx]) / 2 <= want
            )
        ):
            part.extend(blocks[idx])
            remaining_blocks -= 1
            idx += 1
        remaining_routers -= len(part)
        parts.append(part)
    return parts


def _grid_shape(spec: TopologySpec) -> tuple[int, int] | None:
    if spec.kind in ("mesh", "torus"):
        params = spec.params_dict
        return params["rows"], params["cols"]
    return None


def _rows_partition(spec: TopologySpec, workers: int) -> list[list[int]]:
    shape = _grid_shape(spec)
    if shape is None:
        raise ValueError(
            f"partitioner 'rows' needs a mesh or torus topology, "
            f"got {spec.kind!r}"
        )
    rows, cols = shape
    if workers > rows:
        raise ValueError(
            f"partitioner 'rows' cannot split {rows} rows across "
            f"{workers} workers"
        )
    row_groups = _split_contiguous(rows, workers)
    return [
        [r * cols + c for r in group for c in range(cols)]
        for group in row_groups
    ]


def _pods_partition(spec: TopologySpec, workers: int) -> list[list[int]]:
    if spec.kind != "fat-tree":
        raise ValueError(
            f"partitioner 'pods' needs a fat-tree topology, got {spec.kind!r}"
        )
    k = spec.params_dict["k"]
    half = k // 2
    num_cores = half * half
    blocks = [list(range(num_cores))]
    for pod in range(k):
        base = num_cores + pod * k
        blocks.append(list(range(base, base + k)))
    if workers > len(blocks):
        raise ValueError(
            f"partitioner 'pods' has {len(blocks)} blocks (cores + {k} "
            f"pods) for {workers} workers"
        )
    return _split_blocks(blocks, workers)


def partition_routers(
    spec: TopologySpec, workers: int, partitioner: str = "auto"
) -> tuple[tuple[int, ...], ...]:
    """Partition a topology's routers into ``workers`` owned groups.

    Returns one sorted router-id tuple per worker rank.  Groups are
    disjoint, cover every router, and each is non-empty.  Raises
    :class:`ValueError` when the worker count exceeds the router count
    or the named partitioner does not fit the topology.
    """
    num_routers = spec.build().num_routers
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers > num_routers:
        raise ValueError(
            f"cannot split {num_routers} routers across {workers} workers"
        )
    if partitioner == "auto":
        shape = _grid_shape(spec)
        if shape is not None and workers <= shape[0]:
            partitioner = "rows"
        elif spec.kind == "fat-tree" and workers <= spec.params_dict["k"] + 1:
            partitioner = "pods"
        else:
            partitioner = "contiguous"
    if partitioner == "contiguous":
        parts = _split_contiguous(num_routers, workers)
    elif partitioner == "rows":
        parts = _rows_partition(spec, workers)
    elif partitioner == "pods":
        parts = _pods_partition(spec, workers)
    else:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; "
            "known: auto, contiguous, rows, pods"
        )
    seen: set[int] = set()
    for part in parts:
        if not part:
            raise ValueError(
                f"partitioner {partitioner!r} produced an empty worker group"
            )
        seen.update(part)
    if seen != set(range(num_routers)):  # pragma: no cover - defensive
        raise ValueError(f"partitioner {partitioner!r} did not cover all routers")
    return tuple(tuple(sorted(part)) for part in parts)


def boundary_links(
    topology: Topology, parts: tuple[tuple[int, ...], ...]
) -> list[tuple[int, int]]:
    """Directed inter-router links whose endpoints live in different parts."""
    owner: dict[int, int] = {}
    for rank, part in enumerate(parts):
        for rid in part:
            owner[rid] = rank
    return sorted(
        (u, v) for u, v in topology.edges if owner[u] != owner[v]
    )


def partition_summary(
    spec: TopologySpec, parts: tuple[tuple[int, ...], ...]
) -> dict:
    """Plain-data description of one partition (bench/docs reporting)."""
    topo = spec.build()
    cut = boundary_links(topo, parts)
    return {
        "topology": spec.describe(),
        "workers": len(parts),
        "group_sizes": [len(p) for p in parts],
        "boundary_links": len(cut),
        "total_links": len(topo.edges),
    }
