"""Tests for repro.traffic.mpeg (GOP model + synthetic trace calibration)."""

import numpy as np
import pytest

from repro.traffic.mpeg import (
    FRAME_PERIOD_SECONDS,
    GOP_LENGTH,
    GOP_PATTERN,
    FrameKind,
    SEQUENCE_STATS,
    SequenceStats,
    frame_kinds,
    generate_trace,
    mean_type_sizes,
    trace_bitrate_bps,
    trace_statistics,
)


class TestGOPStructure:
    def test_pattern_is_the_papers(self):
        assert GOP_PATTERN == "IBBPBBPBBPBBPBB"
        assert GOP_LENGTH == 15

    def test_frame_kinds_tile_pattern(self):
        kinds = frame_kinds(2 * GOP_LENGTH + 3)
        assert kinds[0] == FrameKind.I
        assert kinds[GOP_LENGTH] == FrameKind.I
        assert kinds[1] == FrameKind.B
        assert kinds[3] == FrameKind.P
        assert len(kinds) == 33

    def test_composition_counts(self):
        assert GOP_PATTERN.count("I") == 1
        assert GOP_PATTERN.count("P") == 4
        assert GOP_PATTERN.count("B") == 10


class TestSequenceStats:
    def test_all_seven_paper_sequences(self):
        assert set(SEQUENCE_STATS) == {
            "ayersroc", "hook", "martin", "flower_garden",
            "mobile_calendar", "table_tennis", "football",
        }

    def test_stats_internally_consistent(self):
        for stats in SEQUENCE_STATS.values():
            assert stats.min_bits <= stats.avg_bits <= stats.max_bits

    def test_rates_in_mpeg2_range(self):
        """Sequences should code at roughly 3-10 Mbps at 30 fps."""
        for stats in SEQUENCE_STATS.values():
            assert 2e6 < stats.avg_rate_bps < 12e6, stats.name

    def test_rejects_inconsistent(self):
        with pytest.raises(ValueError):
            SequenceStats("bad", max_bits=10, min_bits=20, avg_bits=15)


class TestMeanTypeSizes:
    def test_weighted_mean_matches_average(self):
        stats = SEQUENCE_STATS["flower_garden"]
        means = mean_type_sizes(stats)
        weighted = (means[FrameKind.I] + 4 * means[FrameKind.P]
                    + 10 * means[FrameKind.B]) / GOP_LENGTH
        assert weighted == pytest.approx(stats.avg_bits)

    def test_i_larger_than_p_larger_than_b(self):
        means = mean_type_sizes(SEQUENCE_STATS["football"])
        assert means[FrameKind.I] > means[FrameKind.P] > means[FrameKind.B]


class TestGenerateTrace:
    def test_length_and_bounds(self):
        stats = SEQUENCE_STATS["hook"]
        trace = generate_trace(stats, 4, np.random.default_rng(0))
        assert len(trace) == 4 * GOP_LENGTH
        assert trace.min() >= stats.min_bits
        assert trace.max() <= stats.max_bits

    def test_mean_calibrated(self):
        stats = SEQUENCE_STATS["mobile_calendar"]
        trace = generate_trace(stats, 40, np.random.default_rng(1))
        assert trace.mean() == pytest.approx(stats.avg_bits, rel=0.02)

    def test_i_frames_biggest_on_average(self):
        stats = SEQUENCE_STATS["table_tennis"]
        trace = generate_trace(stats, 20, np.random.default_rng(2))
        kinds = frame_kinds(len(trace))
        i_mean = trace[kinds == FrameKind.I].mean()
        p_mean = trace[kinds == FrameKind.P].mean()
        b_mean = trace[kinds == FrameKind.B].mean()
        assert i_mean > p_mean > b_mean

    def test_rejects_zero_gops(self):
        with pytest.raises(ValueError):
            generate_trace(SEQUENCE_STATS["hook"], 0, np.random.default_rng(0))

    def test_deterministic_per_seed(self):
        stats = SEQUENCE_STATS["martin"]
        a = generate_trace(stats, 2, np.random.default_rng(3))
        b = generate_trace(stats, 2, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_gop_periodicity_visible(self):
        """Autocovariance of the trace peaks at the GOP period — the
        burst structure Fig. 6 displays."""
        stats = SEQUENCE_STATS["flower_garden"]
        trace = generate_trace(stats, 30, np.random.default_rng(4)).astype(float)
        x = trace - trace.mean()
        def autocov(lag):
            return float((x[:-lag] * x[lag:]).mean())
        assert autocov(GOP_LENGTH) > 2 * abs(autocov(GOP_LENGTH // 2))


class TestMeasurement:
    def test_trace_statistics_roundtrip(self):
        stats = SEQUENCE_STATS["ayersroc"]
        trace = generate_trace(stats, 30, np.random.default_rng(5))
        measured = trace_statistics(trace)
        assert measured.min_bits >= stats.min_bits
        assert measured.max_bits <= stats.max_bits
        assert measured.avg_bits == pytest.approx(stats.avg_bits, rel=0.05)

    def test_bitrate(self):
        trace = np.full(30, 330_000)
        assert trace_bitrate_bps(trace) == pytest.approx(
            330_000 / FRAME_PERIOD_SECONDS
        )
