"""Link scheduling: candidate selection.

Per physical input link, the link scheduler ranks the head flits of all
occupied virtual channels by their biased priority (see
:mod:`repro.core.priorities`) and forwards the top ``candidate_levels``
of them — the *candidates* — to the switch scheduler.  Level 0 holds the
highest-priority candidate of each link, level 1 the next, and so on;
these levels are the row blocks of the selection matrix.

Best-effort subordination: the MMR "allocates the remaining bandwidth to
best-effort traffic" (paper §1), so a reserved (CBR/VBR) head flit must
outrank *any* best-effort head flit regardless of how the biasing
function scores them.  The ranking rule, per link, is therefore the
lexicographic order (reserved tier desc, biased priority desc, VC index
asc); the tie-break on VC index mirrors a fixed-priority encoder in
hardware.

**Exact integer keys.**  Integer-valued schemes (SIABP, static, fifo)
are ranked on their int64 keys directly, with the tier as a separate
lexsort key folded into bit 62 of the sort key — never through float64,
whose 53-bit mantissa silently merges distinct priorities above 2**53
and breaks the biased order SIABP exists to preserve.  Only the
float-valued IABP path keeps the classic exact power-of-two tier
multiply (:data:`RESERVED_SCALE`).

Three selection entry points share that ranking rule:

* :meth:`LinkScheduler.select_port` — one port, object path (reference);
* :meth:`LinkScheduler.select_batch` — all ports vectorized, object path;
* :meth:`LinkScheduler.select_into` — all ports vectorized into a
  preallocated :class:`~repro.core.candidates.CandidateBuffer` with no
  per-cycle Python object allocation (the hot path).

The differential tests pin all three to identical candidates.

Stateful schemes (the fair-queueing family in :mod:`repro.fq`) are
ranked through ``scheme.keys()`` / ``scheme.keys_port()`` instead of
``compute``; they produce int64 keys in ``[1, 2**62)`` so the same tier
folding, tie-breaks and CandidateBuffer fast path apply unchanged.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .candidates import TIER_SHIFT, CandidateBuffer
from .matching import Candidate
from .priorities import MAX_INTEGER_KEY, PriorityScheme

if TYPE_CHECKING:  # imported lazily to avoid a core <-> router cycle
    from ..router.config import RouterConfig
    from ..router.vc_memory import HeadView

__all__ = ["LinkScheduler", "RESERVED_SCALE"]

#: Multiplier that lifts every reserved (CBR/VBR) candidate above every
#: best-effort candidate on the float-valued (IABP) path.  A power of
#: two, so the float multiply is *exact* and preserves the biased
#: ordering within the reserved tier bit for bit.  Integer-valued
#: schemes use the exact ``1 << 200`` integer twin instead.
RESERVED_SCALE = 2.0**200

#: Integer twin of :data:`RESERVED_SCALE` for exact object-path
#: priorities of reserved candidates under integer-valued schemes.
_RESERVED_FACTOR = 1 << 200

#: Sort key for the sparse fill's (key, vc, out) tuples.
_KEY0 = operator.itemgetter(0)


class LinkScheduler:
    """Selects each input link's candidate VCs for switch scheduling."""

    def __init__(self, config: RouterConfig, scheme: PriorityScheme) -> None:
        self.config = config
        self.scheme = scheme
        n, v = config.num_ports, config.vcs_per_link
        self._num_vcs = v
        # Preallocated scratch for the vectorized paths (select_batch /
        # select_into).  All (n, v)-shaped; refilled in place each cycle.
        self._delay = np.zeros((n, v), dtype=np.int64)
        self._key_f = np.zeros((n, v), dtype=np.float64)
        self._rows = np.arange(n)[:, None]
        # Per-port accumulation lists for the sparse integer fill; the
        # list objects persist, only their contents turn over per cycle.
        self._per_port: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
        # Occupancy scratch for stateful schemes on the sparse path
        # (their keys() wants the boolean head-occupancy matrix).
        self._occ_scratch = np.zeros((n, v), dtype=bool)
        self._stateful = bool(getattr(scheme, "stateful", False))
        # Python-list mirrors of the (slow-changing) connection arrays,
        # reused across cycles while the caller-supplied state_version is
        # unchanged — connection state only moves on setup/teardown.
        self._mirror_version: int | None = None
        self._mirror: tuple[list[int], list[int], list[bool] | None] | None = None

    # ------------------------------------------------------------------
    # Ranking helpers (shared by all three selection entry points)
    # ------------------------------------------------------------------

    @staticmethod
    def _folded_int_keys(
        prio: np.ndarray, reserved: np.ndarray | None, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Fold the tier bit into exact int64 sort keys.

        ``folded = (tier << 62) | key`` where ``tier`` is set only for
        reserved candidates with a non-zero key — matching the multiply
        semantics of the reference path, where ``0 * scale == 0`` keeps a
        zero-key reserved flit tied with a zero-key best-effort one.
        """
        if prio.size and int(prio.max()) >= MAX_INTEGER_KEY:
            raise OverflowError(
                "integer priority key >= 2**62: no headroom left for the "
                "reserved-tier bit in the int64 sort key"
            )
        if prio.size and int(prio.min()) < 0:
            raise ValueError("integer priority keys must be non-negative")
        if reserved is None:
            if out is None:
                return prio.copy()
            np.copyto(out, prio)
            return out
        tier = (reserved & (prio != 0)).astype(np.int64)
        if out is None:
            return prio + (tier << TIER_SHIFT)
        np.left_shift(tier, TIER_SHIFT, out=out)
        np.add(out, prio, out=out)
        return out

    @staticmethod
    def _object_priority(key: int, is_reserved: bool) -> int:
        """Exact object-path priority: reserved tier folds in as << 200."""
        return key * _RESERVED_FACTOR if is_reserved else key

    # ------------------------------------------------------------------
    # Object paths (reference implementations)
    # ------------------------------------------------------------------

    def select_port(
        self,
        port: int,
        heads: HeadView,
        slots: np.ndarray,
        dests: np.ndarray,
        now: int,
        tier_scale: np.ndarray | None = None,
    ) -> list[Candidate]:
        """Candidates for one input port, ordered by level.

        Parameters
        ----------
        port:
            Input port index.
        heads:
            Head-flit view of this port's VC memory.
        slots:
            (vcs,) reserved slots per round for each VC (0 where no
            connection is established).
        dests:
            (vcs,) output port of each VC's connection (-1 where none).
        now:
            Current flit cycle; queuing delay = ``now - arrival``.
        tier_scale:
            Optional (vcs,) per-VC tier vector implementing the
            reserved/best-effort hierarchy (:data:`RESERVED_SCALE` for
            reserved VCs, 1.0 for best-effort).  ``None`` treats every
            VC as one tier.  Float schemes multiply by it; integer
            schemes use it only as the reserved mask (entries > 1).
        """
        occ = heads.occupancy
        eligible = np.flatnonzero(occ > 0)
        if eligible.size == 0:
            return []
        if self._stateful:
            prio = np.asarray(
                self.scheme.keys_port(port, occ > 0), dtype=np.int64
            )[eligible]
        else:
            delay = now - heads.arrival_cycle[eligible]
            prio = self.scheme.compute(slots[eligible], delay)
        c = min(self.config.candidate_levels, eligible.size)
        reserved = None if tier_scale is None else tier_scale[eligible] > 1.0

        if self.scheme.integer_valued:
            prio = np.asarray(prio, dtype=np.int64)
            folded = self._folded_int_keys(prio, reserved)
            # Descending key, ties by ascending VC index (stable argsort
            # over indices already in VC order).
            ranked = np.argsort(-folded, kind="stable")[:c]
            out: list[Candidate] = []
            for level, k in enumerate(ranked):
                vc = int(eligible[k])
                out.append(
                    Candidate(
                        in_port=port,
                        vc=vc,
                        out_port=int(dests[vc]),
                        priority=self._object_priority(
                            int(prio[k]),
                            bool(reserved[k]) if reserved is not None else False,
                        ),
                        level=level,
                    )
                )
            return out

        prio = prio.astype(np.float64)
        if tier_scale is not None:
            prio = prio * tier_scale[eligible]
        if eligible.size > c:
            # Top-C by priority; stable ordering resolved by the sort below.
            top = np.argpartition(-prio, c - 1)[:c]
        else:
            top = np.arange(eligible.size)
        # Order the winners by descending priority; break ties by VC index
        # (deterministic, mirrors a fixed-priority encoder in hardware).
        order = np.lexsort((eligible[top], -prio[top]))
        ranked = top[order]
        out = []
        for level, k in enumerate(ranked):
            vc = int(eligible[k])
            out.append(
                Candidate(
                    in_port=port,
                    vc=vc,
                    out_port=int(dests[vc]),
                    priority=float(prio[k]),
                    level=level,
                )
            )
        return out

    def select_all(
        self,
        heads_per_port: Sequence[HeadView],
        slots: np.ndarray,
        dests: np.ndarray,
        now: int,
        tier_scale: np.ndarray | None = None,
    ) -> list[list[Candidate]]:
        """Candidates for every input port (per-port reference path).

        ``slots``/``dests`` are the (ports, vcs) connection-table arrays.
        """
        return [
            self.select_port(
                p,
                heads_per_port[p],
                slots[p],
                dests[p],
                now,
                tier_scale[p] if tier_scale is not None else None,
            )
            for p in range(self.config.num_ports)
        ]

    def select_batch(
        self,
        heads: HeadView,
        slots: np.ndarray,
        dests: np.ndarray,
        now: int,
        tier_scale: np.ndarray | None = None,
    ) -> list[list[Candidate]]:
        """Candidates for every input port in one vectorized pass.

        ``heads`` is the (ports, vcs)-shaped view from
        :meth:`repro.router.VCMemory.heads_all`.  Produces exactly the
        same candidates as :meth:`select_all` (a property the test suite
        asserts); it exists because evaluating the whole router in one
        numpy call chain is several times faster than per-port calls.
        """
        occ = heads.occupancy
        n, _v = occ.shape
        c = self.config.candidate_levels
        occupied = occ > 0
        if self._stateful:
            prio = self.scheme.keys(occupied)
        else:
            delay = np.where(occupied, now - heads.arrival_cycle, 0)
            prio = self.scheme.compute(slots, delay)
        counts = np.minimum(occupied.sum(axis=1), c)
        reserved = None if tier_scale is None else tier_scale > 1.0

        if self.scheme.integer_valued:
            prio = np.asarray(prio, dtype=np.int64)
            folded = self._folded_int_keys(prio, reserved)
            # Empty VCs sort last: -1 is below every real key (keys >= 0).
            masked = np.where(occupied, folded, -1)
            order = np.argsort(-masked, axis=1, kind="stable")[:, :c]
            out: list[list[Candidate]] = []
            for p in range(n):
                port_cands: list[Candidate] = []
                for level in range(int(counts[p])):
                    vc = int(order[p, level])
                    port_cands.append(
                        Candidate(
                            in_port=p,
                            vc=vc,
                            out_port=int(dests[p, vc]),
                            priority=self._object_priority(
                                int(prio[p, vc]),
                                bool(reserved[p, vc])
                                if reserved is not None
                                else False,
                            ),
                            level=level,
                        )
                    )
                out.append(port_cands)
            return out

        prio = prio.astype(np.float64)
        if tier_scale is not None:
            prio = prio * tier_scale
        # Mask out empty VCs with -inf so argsort never selects them.
        masked = np.where(occupied, prio, -np.inf)
        # Order each row by (-priority, vc); vc tie-break falls out of
        # stable argsort on the negated priorities.
        order = np.argsort(-masked, axis=1, kind="stable")[:, :c]
        out = []
        for p in range(n):
            port_cands = []
            for level in range(int(counts[p])):
                vc = int(order[p, level])
                port_cands.append(
                    Candidate(
                        in_port=p,
                        vc=vc,
                        out_port=int(dests[p, vc]),
                        priority=float(prio[p, vc]),
                        level=level,
                    )
                )
            out.append(port_cands)
        return out

    # ------------------------------------------------------------------
    # Buffer path (the hot path)
    # ------------------------------------------------------------------

    def select_into(
        self,
        buf: CandidateBuffer,
        heads: HeadView,
        slots: np.ndarray,
        dests: np.ndarray,
        now: int,
        reserved: np.ndarray | None = None,
        state_version: int | None = None,
    ) -> CandidateBuffer:
        """Fill ``buf`` with this cycle's candidates; no object churn.

        Produces the same candidate set, order and priority keys as
        :meth:`select_batch` (``buf.to_candidates()`` equality is pinned
        by the tests), writing into the preallocated buffer arrays.
        ``reserved`` is the boolean (ports, vcs) reserved-VC mask — the
        buffer twin of ``tier_scale``.  ``state_version``, when given,
        identifies the content of ``slots``/``dests``/``reserved``: the
        sparse path caches Python-list mirrors of those arrays and reuses
        them while the version is unchanged (the caller must bump it on
        every connection setup or teardown).

        Integer-valued schemes take a *sparse* path: only the occupied
        VCs are evaluated, with Python ints and ``int.bit_length`` — the
        exact arithmetic is native there, and at realistic occupancies a
        short scalar loop beats ~30 numpy dispatches on (ports, vcs)
        arrays by a wide margin.  The float (IABP) path stays vectorized.
        """
        if self.scheme.integer_valued:
            flat = np.flatnonzero(heads.occupancy)
            arrivals = heads.arrival_cycle.ravel()
            mask = 0
            heads_q: list[list[int]] = [[] for _ in range(arrivals.size)]
            for f in flat.tolist():
                mask |= 1 << f
                heads_q[f].append(int(arrivals[f]))
            return self.select_into_sparse(
                buf,
                mask,
                heads_q,
                slots,
                dests,
                now,
                reserved,
                state_version=state_version,
            )

        occ = heads.occupancy
        c = buf.levels
        occupied = occ > 0
        buf.mark_array_filled(integer_keys=False)
        np.subtract(now, heads.arrival_cycle, out=self._delay)
        self._delay[~occupied] = 0
        prio = self.scheme.compute(slots, self._delay)
        np.minimum(occupied.sum(axis=1), c, out=buf.count)
        rows = self._rows
        w = min(c, occ.shape[1])
        np.copyto(self._key_f, prio)
        if reserved is not None:
            np.multiply(
                self._key_f, RESERVED_SCALE, out=self._key_f, where=reserved
            )
        self._key_f[~occupied] = -np.inf
        order = np.argsort(-self._key_f, axis=1, kind="stable")[:, :w]
        buf.vc[:, :w] = order
        buf.out_port[:, :w] = dests[rows, order]
        buf.prio_float[:, :w] = self._key_f[rows, order]
        return buf

    def select_into_sparse(
        self,
        buf: CandidateBuffer,
        occ_mask: int,
        heads_q: Sequence[Sequence[int]],
        slots: np.ndarray,
        dests: np.ndarray,
        now: int,
        reserved: np.ndarray | None = None,
        state_version: int | None = None,
    ) -> CandidateBuffer:
        """Sparse exact-integer fill from an occupancy snapshot.

        ``occ_mask``/``heads_q`` are the zero-copy occupancy view from
        :meth:`repro.router.VCMemory.occupancy_state`: bit
        ``f = port * vcs_per_link + vc`` of the mask marks an occupied
        VC, and ``heads_q[f][0]`` is its head flit's arrival cycle.
        Integer-valued schemes only; the produced buffer is identical to
        :meth:`select_into` over the dense head view.  Only the
        Python-native ``buf.sparse`` rows are written eagerly; the
        candidate arrays materialize lazily from them on first access
        (see :class:`CandidateBuffer`).
        """
        sparse = buf.sparse
        if not occ_mask:
            for lst in sparse:
                lst.clear()
            buf.mark_sparse_filled()
            return buf
        v = self._num_vcs
        c = buf.levels
        if state_version is not None and state_version == self._mirror_version:
            assert self._mirror is not None
            slot_l, dest_l, rsv_l = self._mirror
        else:
            # Full-length mirrors, indexed by the flat (port * vcs + vc)
            # position directly — amortized to setup/teardown frequency
            # when the caller versions its connection state.
            slot_l = slots.ravel().tolist()
            dest_l = dests.ravel().tolist()
            rsv_l = reserved.ravel().tolist() if reserved is not None else None
            if state_version is not None:
                self._mirror = (slot_l, dest_l, rsv_l)
                self._mirror_version = state_version
        per_port = self._per_port
        for lst in per_port:
            lst.clear()
        tier_bit = 1 << TIER_SHIFT
        max_key = MAX_INTEGER_KEY
        if self._stateful:
            # Stateful schemes rank on scheduler state, not (slots,
            # delay): reconstruct the occupancy matrix from the mask and
            # ask the scheme for the whole cycle's keys in one call.
            occ_arr = self._occ_scratch
            occ_arr[:] = False
            flats: list[int] = []
            m = occ_mask
            while m:
                low = m & -m
                f = low.bit_length() - 1
                m ^= low
                flats.append(f)
                occ_arr[f // v, f % v] = True
            key_l = self.scheme.keys(occ_arr).ravel().tolist()
            for f in flats:
                key = key_l[f]
                if key >= max_key:
                    raise OverflowError(
                        "integer priority key >= 2**62: no headroom left "
                        "for the reserved-tier bit in the int64 sort key"
                    )
                if key < 0:
                    raise ValueError(
                        "integer priority keys must be non-negative"
                    )
                if rsv_l is not None and key and rsv_l[f]:
                    key += tier_bit
                per_port[f // v].append((key, f % v, dest_l[f]))
        else:
            key_fn = self.scheme.key_scalar
            m = occ_mask
            while m:
                low = m & -m
                f = low.bit_length() - 1
                m ^= low
                key = key_fn(slot_l[f], now - heads_q[f][0])
                if key >= max_key:
                    raise OverflowError(
                        "integer priority key >= 2**62: no headroom left "
                        "for the reserved-tier bit in the int64 sort key"
                    )
                if key < 0:
                    raise ValueError(
                        "integer priority keys must be non-negative"
                    )
                # Fold the tier bit exactly like _folded_int_keys:
                # reserved candidates with a non-zero key jump above
                # every best-effort key; a zero key stays zero (multiply
                # semantics).
                if rsv_l is not None and key and rsv_l[f]:
                    key += tier_bit
                per_port[f // v].append((key, f % v, dest_l[f]))

        for p, cands in enumerate(per_port):
            if len(cands) > 1:
                # Stable descending sort keeps ascending-VC tie order
                # (entries were appended in VC order).
                cands.sort(key=_KEY0, reverse=True)
                del cands[c:]
            # Buffer-owned copy: per_port is scheduler scratch and turns
            # over next cycle, but buf.sparse must stay valid (and feed
            # the lazy array sync) until the next fill of this buffer.
            sparse[p][:] = cands
        buf.mark_sparse_filled()
        return buf
