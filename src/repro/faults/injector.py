"""Deterministic fault injector driven by the ``"faults"`` RNG role.

The injector owns every random draw of a robustness run.  Draws happen in
a fixed order at fixed decision points (per scheduled credit return, per
NIC forward attempt, once per cycle for stuck slots), so two runs with
the same seed and :class:`~repro.faults.FaultConfig` make bit-identical
decisions — the foundation of the reproducibility contract the
:class:`~repro.faults.FaultSchedule` asserts.
"""

from __future__ import annotations

import numpy as np

from ..sim.metrics import FaultCounters
from . import integrity
from .degradation import DegradationPolicy
from .models import FaultConfig, FaultKind
from .schedule import FaultSchedule

__all__ = ["FaultInjector"]

#: Credit-return fates returned by :meth:`FaultInjector.credit_fate`.
CREDIT_OK, CREDIT_LOST, CREDIT_DUP = "ok", "lost", "dup"


class FaultInjector:
    """Draws faults and records the injected events."""

    def __init__(
        self,
        config: FaultConfig,
        rng: np.random.Generator,
        schedule: FaultSchedule,
        counters: FaultCounters,
        degradation: DegradationPolicy,
    ) -> None:
        self.config = config
        self.rng = rng
        self.schedule = schedule
        self.counters = counters
        self.degradation = degradation
        #: (port, vc) -> cycle at which the stuck slot releases.
        self._stuck: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Credit-path faults
    # ------------------------------------------------------------------

    def credit_fate(self, now: int, port: int, vc: int) -> str:
        """Decide what happens to the credit a departure returns."""
        cfg = self.config
        if cfg.credit_loss_rate == 0 and cfg.credit_dup_rate == 0:
            return CREDIT_OK
        u = float(self.rng.random())
        where = f"port={port} vc={vc}"
        if u < cfg.credit_loss_rate:
            self.schedule.record(now, FaultKind.CREDIT_LOSS, where)
            self.counters.injected_credit_loss += 1
            self.degradation.note_fault(now)
            return CREDIT_LOST
        if u < cfg.credit_loss_rate + cfg.credit_dup_rate:
            self.schedule.record(now, FaultKind.CREDIT_DUP, where)
            self.counters.injected_credit_dup += 1
            self.degradation.note_fault(now)
            return CREDIT_DUP
        return CREDIT_OK

    # ------------------------------------------------------------------
    # Link corruption (CRC-detected)
    # ------------------------------------------------------------------

    def corrupts(
        self, now: int, port: int, vc: int, flit: tuple[int, int, bool]
    ) -> bool:
        """Decide whether the flit the NIC is forwarding is corrupted.

        When it is, the corruption is materialised (one bit of the flit's
        CRC codeword flips), verified to be CRC-detectable, and both the
        injection and the detection are recorded.  The caller then runs
        the NACK-and-retransmit recovery.
        """
        if self.config.corruption_rate == 0:
            return False
        if float(self.rng.random()) >= self.config.corruption_rate:
            return False
        gen_cycle, frame_id, frame_last = flit
        words = integrity.flit_words(port, vc, gen_cycle, frame_id, frame_last)
        crc = integrity.crc8(words)
        bit = int(self.rng.integers(len(words) * 64))
        damaged = integrity.corrupt_word(words, bit)
        where = f"port={port} vc={vc}"
        self.schedule.record(now, FaultKind.CORRUPT_FLIT, where, f"bit={bit}")
        self.counters.injected_corruption += 1
        self.degradation.note_fault(now)
        if integrity.verify(damaged, crc):  # pragma: no cover - CRC-8 HD>=2
            raise AssertionError("single-bit corruption escaped the CRC")
        self.schedule.record(now, FaultKind.CRC_MISMATCH, where)
        self.counters.crc_detected += 1
        return True

    # ------------------------------------------------------------------
    # Stuck VC buffer slots
    # ------------------------------------------------------------------

    def step_stuck(self, now: int, occupancy: np.ndarray) -> None:
        """Release expired stuck slots; maybe pin a new one this cycle."""
        for key in [k for k, until in self._stuck.items() if until <= now]:
            del self._stuck[key]
            self.schedule.record(
                now, FaultKind.SLOT_RELEASED, f"port={key[0]} vc={key[1]}"
            )
        cfg = self.config
        if cfg.stuck_slot_rate == 0:
            return
        if float(self.rng.random()) >= cfg.stuck_slot_rate:
            return
        ports, vcs = occupancy.shape
        port = int(self.rng.integers(ports))
        vc = int(self.rng.integers(vcs))
        if occupancy[port, vc] == 0 or (port, vc) in self._stuck:
            return  # nothing to pin; the draw is spent either way
        self._stuck[(port, vc)] = now + cfg.stuck_duration
        self.schedule.record(
            now,
            FaultKind.STUCK_SLOT,
            f"port={port} vc={vc}",
            f"duration={cfg.stuck_duration}",
        )
        self.counters.injected_stuck_slot += 1
        self.degradation.note_fault(now)

    def is_stuck(self, port: int, vc: int) -> bool:
        return (port, vc) in self._stuck

    @property
    def has_stuck(self) -> bool:
        """True while any slot is pinned (hot-path guard)."""
        return bool(self._stuck)

    @property
    def stuck_slots(self) -> set[tuple[int, int]]:
        return set(self._stuck)
