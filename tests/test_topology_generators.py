"""Property tests for the torus and fat-tree topology generators.

Three structural invariants every generated topology must satisfy:

* degree and edge counts match the closed-form formulas of each family;
* the port map is bidirectionally symmetric — every directed edge has
  its reverse, and each router's ports are exactly ``0..degree-1``;
* the graph is connected (all-pairs reachability), so every (src, dst)
  fabric session has at least one candidate path.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.topology import (
    fat_tree,
    fat_tree_edge_routers,
    ring,
    torus,
)


def assert_port_map_symmetric(topo):
    """Every directed edge has a reverse, and ports are dense per router."""
    for (u, v) in topo.port_map:
        assert (v, u) in topo.port_map, f"missing reverse of ({u}, {v})"
    ports_of: dict[int, list[int]] = {}
    for (u, _v), port in topo.port_map.items():
        ports_of.setdefault(u, []).append(port)
    for router, ports in ports_of.items():
        assert sorted(ports) == list(range(len(ports))), (
            f"router {router} ports not dense: {sorted(ports)}"
        )
        assert topo.degree(router) == len(ports)


def assert_connected(topo):
    graph = topo.graph()
    assert graph.number_of_nodes() == topo.num_routers
    if graph.is_directed():
        assert nx.is_strongly_connected(graph)
    else:
        assert nx.is_connected(graph)


class TestTorus:
    @settings(max_examples=30, deadline=None)
    @given(rows=st.integers(2, 6), cols=st.integers(2, 6))
    def test_structure(self, rows, cols):
        topo = torus(rows, cols)
        assert topo.num_routers == rows * cols
        # mesh edges plus one wrap per row/column where the wrap is not a
        # duplicate of an existing mesh edge (dimension size > 2).
        expected = rows * (cols - 1) + cols * (rows - 1)
        expected += rows if cols > 2 else 0
        expected += cols if rows > 2 else 0
        assert len(topo.edges) == 2 * expected  # directed edges
        assert_port_map_symmetric(topo)
        assert_connected(topo)

    @settings(max_examples=20, deadline=None)
    @given(rows=st.integers(3, 6), cols=st.integers(3, 6))
    def test_regular_degree_four(self, rows, cols):
        topo = torus(rows, cols)
        for r in range(topo.num_routers):
            assert topo.degree(r) == 4

    @pytest.mark.parametrize("n", [3, 4, 5, 8])
    def test_degenerate_row_is_a_ring(self, n):
        assert set(torus(1, n).edges) == set(ring(n).edges)
        assert set(torus(n, 1).edges) == set(ring(n).edges)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            torus(0, 3)
        with pytest.raises(ValueError):
            torus(3, -1)


class TestFatTree:
    @settings(max_examples=10, deadline=None)
    @given(k=st.sampled_from([2, 4, 6, 8]))
    def test_structure(self, k):
        topo = fat_tree(k)
        half = k // 2
        assert topo.num_routers == half * half + k * k
        # Per pod: half aggs with half core uplinks each, plus a full
        # agg x edge bipartite stage.
        assert len(topo.edges) == 2 * (k * half * half * 2)
        assert_port_map_symmetric(topo)
        assert_connected(topo)

    @settings(max_examples=10, deadline=None)
    @given(k=st.sampled_from([2, 4, 6]))
    def test_stage_degrees(self, k):
        topo = fat_tree(k)
        half = k // 2
        num_cores = half * half
        for core in range(num_cores):
            assert topo.degree(core) == k  # one link per pod
        for pod in range(k):
            base = num_cores + pod * k
            for agg in range(base, base + half):
                assert topo.degree(agg) == k  # half up + half down
            for edge in range(base + half, base + k):
                assert topo.degree(edge) == half  # uplinks only

    @settings(max_examples=10, deadline=None)
    @given(k=st.sampled_from([2, 4, 6]))
    def test_edge_routers(self, k):
        topo = fat_tree(k)
        hosts = fat_tree_edge_routers(k)
        assert len(hosts) == k * (k // 2)
        assert len(set(hosts)) == len(hosts)
        half = k // 2
        for router in hosts:
            assert topo.degree(router) == half

    def test_rejects_odd_or_small(self):
        for bad in (0, 1, 3, 5):
            with pytest.raises(ValueError):
                fat_tree(bad)
            with pytest.raises(ValueError):
                fat_tree_edge_routers(bad)
