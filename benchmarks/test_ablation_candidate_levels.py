"""A2 — ablation: number of candidate levels.

The paper fixes four candidate levels ("the link/switch scheduling
algorithm is implemented with four levels of candidates").  This ablation
sweeps C ∈ {1, 2, 4, 8}: with a single level the COA degenerates to a
priority-aware head-of-line arbiter and inherits the same blocking that
sinks the WFA; additional levels recover the lost matchings, with
diminishing returns past the paper's choice of four.
"""

import pytest

from conftest import BENCH_SEED
from repro.analysis import render_table
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload

LEVELS = (1, 2, 4, 8)
LOAD = 0.85


def _run():
    scale = get_scale("ci")
    control = RunControl(scale.cbr_cycles, scale.cbr_warmup)
    out = {}
    for levels in LEVELS:
        config = default_config(candidate_levels=levels)
        sim = SingleRouterSim(config, arbiter="coa", seed=BENCH_SEED)
        workload = build_cbr_workload(sim.router, LOAD, sim.rng.workload)
        out[levels] = sim.run(workload, control)
    return out


@pytest.mark.benchmark(group="ablation-levels")
def test_ablation_candidate_levels(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    rows = [
        [levels, r.offered_load * 100, r.throughput * 100,
         r.flit_delay_us["overall"], r.backlog]
        for levels, r in results.items()
    ]
    print(render_table(
        ["candidate levels", "offered %", "throughput %", "mean delay us",
         "backlog"],
        rows,
        title=f"A2 — candidate levels under COA at {LOAD:.0%} CBR load",
    ))
    # One level: head-of-line blocking caps throughput well below offered.
    assert results[1].normalized_throughput < 0.9
    # The paper's four levels deliver the offered load.
    assert results[4].normalized_throughput > 0.97
    # Monotone recovery with more levels (up to noise at saturation).
    assert results[2].throughput > results[1].throughput
    assert results[4].throughput > results[2].throughput
    # Diminishing returns: eight levels buy little over four.
    assert results[8].throughput == pytest.approx(
        results[4].throughput, rel=0.05
    )
