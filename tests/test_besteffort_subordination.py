"""Best-effort subordination: reserved traffic strictly outranks it.

The MMR "should satisfy the QoS requirements of a large number of
multimedia connections while allocating the remaining bandwidth to
best-effort traffic" (paper §1).  These tests pin the mechanism — the
link scheduler's reserved tier — and the end-to-end behaviour: adding
best-effort background load leaves reserved-class delays essentially
untouched while best-effort soaks up the leftover bandwidth.
"""

import numpy as np
import pytest

from repro.core.link_scheduler import RESERVED_SCALE
from repro.router import MMRouter, RouterConfig, TrafficClass
from repro.sim.engine import RunControl
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_besteffort_workload, build_cbr_workload


def make_router(**kw) -> MMRouter:
    base = dict(num_ports=2, vcs_per_link=4, vc_buffer_depth=2,
                candidate_levels=2, flit_cycles_per_round=400)
    base.update(kw)
    return MMRouter(RouterConfig(**base))


class TestTierMechanism:
    def test_scale_is_exact_power_of_two(self):
        # Power-of-two multiplication is exact in float64, so ordering
        # inside the reserved tier is preserved bit for bit.
        assert RESERVED_SCALE == 2.0**200
        for prio in (1.0, 3.0, 12345.0, 2.0**53 - 1):
            assert (prio * RESERVED_SCALE) / RESERVED_SCALE == prio

    def test_reserved_candidate_outranks_aged_best_effort(self):
        router = make_router()
        be = router.establish(0, 1, TrafficClass.BEST_EFFORT, 1).connection
        cbr = router.establish(0, 1, TrafficClass.CBR, 1).connection
        # The best-effort flit has aged 4096 cycles (SIABP priority
        # 1 << 13 = 8192); the reserved flit is brand new (priority 1).
        # The tier must still rank the reserved flit first.
        router.vc_memory.push(0, be.vc, 0, -1, False, now=0)
        router.vc_memory.push(0, cbr.vc, 4096, -1, False, now=4096)
        port0 = router._link_schedule(4096)[0]
        assert [c.vc for c in port0[:2]] == [cbr.vc, be.vc]
        assert port0[0].priority > port0[1].priority

    def test_teardown_resets_tier(self):
        router = make_router()
        conn = router.establish(0, 1, TrafficClass.CBR, 1).connection
        assert router._tier[0, conn.vc] == RESERVED_SCALE
        router.teardown(conn.conn_id)
        assert router._tier[0, conn.vc] == 1.0

    def test_best_effort_still_served_when_alone(self):
        router = make_router()
        rng = np.random.default_rng(1)
        be = router.establish(0, 1, TrafficClass.BEST_EFFORT, 1).connection
        router.nics[0].inject(be.vc, gen_cycle=0)
        deps = []
        for t in range(4):
            deps += router.step(t, rng)
        assert len(deps) == 1


class TestEndToEndProtection:
    @pytest.mark.parametrize("arbiter", ["coa"])
    def test_background_load_does_not_degrade_cbr(self, arbiter):
        """CBR at 60% with and without 30% best-effort background: the
        reserved classes' delays must stay within a small factor, and
        best-effort must actually deliver flits (work conservation)."""
        config = RouterConfig(num_ports=4, vcs_per_link=64,
                              candidate_levels=4)
        control = RunControl(cycles=12_000, warmup_cycles=2_000)

        def run(with_background: bool):
            sim = SingleRouterSim(config, arbiter=arbiter, seed=31)
            workload = build_cbr_workload(sim.router, 0.6, sim.rng.workload)
            if with_background:
                extra = build_besteffort_workload(
                    sim.router, 0.3, sim.rng.workload
                )
                for item in extra.loads:
                    workload.add(item)
            return sim.run(workload, control)

        clean = run(False)
        mixed = run(True)
        # Reserved classes barely notice the background.
        for label in ("medium", "high"):
            assert mixed.flit_delay_us[label] <= \
                3.0 * clean.flit_delay_us[label] + 2.0, label
        # Best-effort flits do flow (leftover bandwidth is used).
        assert mixed.flits.get("best-effort", 0) > 0
        # And total delivered work grew accordingly.
        assert mixed.throughput > clean.throughput * 1.2
