"""Tests for MPEG trace CSV I/O and the p99 delay reporting."""

import numpy as np
import pytest

from repro.sim.engine import RunControl
from repro.sim.simulation import SingleRouterSim
from repro.sim.experiments import default_config
from repro.traffic.mixes import build_cbr_workload
from repro.traffic.mpeg import (
    SEQUENCE_STATS,
    generate_trace,
    load_trace_csv,
    save_trace_csv,
)


class TestTraceCSV:
    def test_roundtrip(self, tmp_path):
        trace = generate_trace(SEQUENCE_STATS["hook"], 3,
                               np.random.default_rng(0))
        path = tmp_path / "hook.csv"
        save_trace_csv(path, trace)
        loaded = load_trace_csv(path)
        np.testing.assert_array_equal(loaded, trace)

    def test_file_format(self, tmp_path):
        trace = np.array([100, 200, 300])
        path = tmp_path / "t.csv"
        save_trace_csv(path, trace)
        lines = path.read_text().splitlines()
        assert lines[0] == "frame_index,frame_type,size_bits"
        assert lines[1] == "0,I,100"
        assert lines[2] == "1,B,200"  # GOP pattern: I B B P ...

    def test_save_validation(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace_csv(tmp_path / "x.csv", np.array([]))
        with pytest.raises(ValueError):
            save_trace_csv(tmp_path / "x.csv", np.array([10, 0]))

    def test_load_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n0,I,10\n")
        with pytest.raises(ValueError, match="header"):
            load_trace_csv(path)

    def test_load_rejects_out_of_order(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("frame_index,frame_type,size_bits\n1,I,10\n")
        with pytest.raises(ValueError, match="out of order"):
            load_trace_csv(path)

    def test_load_rejects_bad_size(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("frame_index,frame_type,size_bits\n0,I,-5\n")
        with pytest.raises(ValueError, match="non-positive"):
            load_trace_csv(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("frame_index,frame_type,size_bits\n")
        with pytest.raises(ValueError, match="no frames"):
            load_trace_csv(path)

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("frame_index,frame_type,size_bits\n0,I,10\n\n1,B,20\n")
        np.testing.assert_array_equal(load_trace_csv(path), [10, 20])


class TestP99Reporting:
    def test_p99_at_least_mean(self):
        sim = SingleRouterSim(
            default_config(vcs_per_link=32), arbiter="coa", seed=4
        )
        wl = build_cbr_workload(sim.router, 0.6, sim.rng.workload)
        res = sim.run(wl, RunControl(cycles=5_000, warmup_cycles=500))
        for label, mean in res.flit_delay_us.items():
            p99 = res.flit_delay_p99_us[label]
            if mean == mean:  # skip NaN groups
                assert p99 >= mean * 0.99, label
