"""JSON round-trip serialization of SimResult (repro.sim.simulation)."""

import json
import math

from repro.campaign import canonical_json
from repro.router import RouterConfig
from repro.sim import RunControl, SingleRouterSim
from repro.traffic.mixes import build_cbr_workload


def run_once(seed: int = 3):
    cfg = RouterConfig(num_ports=4, vcs_per_link=32, candidate_levels=4)
    sim = SingleRouterSim(cfg, arbiter="coa", seed=seed)
    wl = build_cbr_workload(sim.router, 0.5, sim.rng.workload)
    return sim.run(wl, RunControl(cycles=1_500, warmup_cycles=300))


class TestSimResultRoundTrip:
    def test_to_dict_is_json_serializable(self):
        result = run_once()
        text = json.dumps(result.to_dict())
        assert "coa" in text

    def test_round_trip_preserves_every_field(self):
        result = run_once()
        clone = type(result).from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        # NaN != NaN breaks dataclass ==; canonical JSON is the equality
        # the campaign store relies on.
        assert canonical_json(clone.to_dict()) == canonical_json(result.to_dict())
        assert clone.config == result.config
        assert isinstance(clone.config, RouterConfig)
        assert clone.arbiter == result.arbiter
        assert clone.seed == result.seed
        assert clone.flits == result.flits
        assert clone.backlog == result.backlog

    def test_nan_metrics_survive(self):
        result = run_once()
        # Force a NaN like a class that saw no frames would produce.
        result.jitter_us["overall"] = float("nan")
        clone = type(result).from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert math.isnan(clone.jitter_us["overall"])

    def test_non_finite_aggregates_serialize_as_strict_json(self):
        """Empty groups produce NaN/inf aggregates; the dict form must
        normalize them to null so strict parsers never choke."""
        result = run_once()
        result.jitter_us["overall"] = float("nan")
        result.flit_delay_us["ghost"] = float("inf")
        result.flit_delay_p99_us["ghost"] = float("-inf")
        result.utilization = float("nan")
        data = result.to_dict()
        # Strict JSON round trip: allow_nan=False must not raise.
        text = json.dumps(data, allow_nan=False)
        back = json.loads(text)
        assert back["jitter_us"]["overall"] is None
        assert back["flit_delay_us"]["ghost"] is None
        assert back["flit_delay_p99_us"]["ghost"] is None
        assert back["utilization"] is None
        # And from_dict maps the nulls back to non-finite floats.
        clone = type(result).from_dict(back)
        assert math.isnan(clone.jitter_us["overall"])
        assert math.isnan(clone.flit_delay_us["ghost"])
        assert math.isnan(clone.utilization)

    def test_finite_values_unaffected_by_normalization(self):
        result = run_once()
        data = result.to_dict()
        assert data["throughput"] == result.throughput
        assert data["flit_delay_us"]["overall"] == (
            result.flit_delay_us["overall"]
        )
        json.dumps(data, allow_nan=False)

    def test_counts_come_back_as_ints(self):
        result = run_once()
        clone = type(result).from_dict(result.to_dict())
        assert all(isinstance(v, int) for v in clone.flits.values())
        assert all(isinstance(v, int) for v in clone.frames.values())

    def test_derived_properties_work_after_round_trip(self):
        result = run_once()
        clone = type(result).from_dict(result.to_dict())
        assert clone.overall_flit_delay_us == result.overall_flit_delay_us
        assert clone.normalized_throughput == result.normalized_throughput
