"""Registry edge cases: error quality and universal runnability.

Two contracts for the name-based factories: an unknown name must fail
with an error that lists *every* valid name (the CLI surfaces these
verbatim), and every registered name — arbiter or scheme, stateless or
stateful — must construct and complete a short smoke run at the paper
configuration without tripping any invariant.
"""

import numpy as np
import pytest

from repro.core.registry import (
    ARBITER_NAMES,
    SCHEME_NAMES,
    make_arbiter,
    make_scheme,
)
from repro.router.config import RouterConfig
from repro.sim.engine import RunControl
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload


class TestUnknownNameErrors:
    def test_arbiter_error_lists_every_valid_name(self):
        with pytest.raises(ValueError) as excinfo:
            make_arbiter("definitely-not-real", RouterConfig())
        message = str(excinfo.value)
        assert "definitely-not-real" in message
        for name in ARBITER_NAMES:
            assert name in message

    def test_scheme_error_lists_every_valid_name(self):
        with pytest.raises(ValueError) as excinfo:
            make_scheme("definitely-not-real", RouterConfig())
        message = str(excinfo.value)
        assert "definitely-not-real" in message
        for name in SCHEME_NAMES:
            assert name in message


def _smoke(arbiter: str, scheme: str) -> None:
    """200-cycle paper-config (4x4, 64 VC) run; invariants must hold."""
    config = RouterConfig()
    sim = SingleRouterSim(config, arbiter=arbiter, scheme=scheme, seed=7)
    workload = build_cbr_workload(sim.router, 0.6, sim.rng.workload)
    result = sim.run(workload, RunControl(cycles=200, warmup_cycles=0))
    sim.router.check_flow_control_invariant()
    assert result.cycles == 200
    assert result.throughput >= 0.0
    assert np.isfinite(result.offered_load)


class TestEveryNameRuns:
    @pytest.mark.parametrize("arbiter", ARBITER_NAMES)
    def test_every_arbiter_smokes(self, arbiter):
        _smoke(arbiter, "siabp")

    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_every_scheme_smokes(self, scheme):
        _smoke("coa", scheme)
