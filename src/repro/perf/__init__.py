"""Performance harness: cycles/sec baselines for the scheduling hot path.

``python -m repro perf`` measures the simulator's end-to-end cycle rate on
both pipelines — the zero-allocation candidate-buffer hot path and the
object-based reference path — verifies they depart the same flits, breaks
the cycle down per stage, and emits ``BENCH_perf.json`` so CI can fail on
cycles/sec regressions against the committed baseline.

The fabric-scale companion lives in :mod:`repro.shard.bench` (re-exported
here as :func:`run_shard_bench` / :func:`check_shard_regression`): serial
vs sharded cycles/sec over topology × worker-count grids, emitting
``BENCH_shard.json`` under the same committed-baseline regression gate.
"""

from .harness import (
    PathStats,
    PerfReport,
    SkipStats,
    check_regression,
    profile_fast_path,
    run_perf,
    run_skip_check,
    write_report,
)


def run_shard_bench(*args, **kwargs):
    """Lazy alias for :func:`repro.shard.bench.run_shard_bench` (keeps
    ``repro.perf`` import-light; the shard package pulls in fabric)."""
    from ..shard.bench import run_shard_bench as _run

    return _run(*args, **kwargs)


def check_shard_regression(*args, **kwargs):
    """Lazy alias for :func:`repro.shard.bench.check_shard_regression`."""
    from ..shard.bench import check_shard_regression as _check

    return _check(*args, **kwargs)


__all__ = [
    "PathStats",
    "PerfReport",
    "SkipStats",
    "check_regression",
    "check_shard_regression",
    "profile_fast_path",
    "run_perf",
    "run_shard_bench",
    "run_skip_check",
    "write_report",
]
