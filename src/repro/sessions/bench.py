"""Session-layer overhead benchmark and determinism checks.

Produces the ``BENCH_sessions.json`` artifact: the cost of the
``sessions=None`` dispatch branch in :meth:`SingleRouterSim.run` must be
indistinguishable from the plain loop (CI gates it below 1%), a
churn-enabled run is timed for context, and two same-seed churn runs
must be byte-identical (event log, stats payload, result, RNG
fingerprints).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from time import perf_counter_ns
from typing import Any

from ..sim.engine import RunControl
from .churn import ChurnConfig
from .signaling import SessionEngine, SessionsSpec

__all__ = [
    "SessionsBenchStats",
    "SessionsBenchReport",
    "run_sessions_bench",
    "check_sessions_overhead",
    "write_sessions_report",
]

#: Churn profile the enabled variant and the determinism check run:
#: moderate load, mixed classes, renegotiating VBR in the mix.
BENCH_CHURN = ChurnConfig(
    arrivals_per_kcycle=2.0,
    mean_hold_cycles=3_000.0,
    mix=(("cbr-low", 0.4), ("cbr-medium", 0.3), ("vbr", 0.2),
         ("best-effort", 0.1)),
)


@dataclass
class SessionsBenchStats:
    """One variant's timing (best of the interleaved repetitions)."""

    cycles_per_sec: float
    wall_s: float
    wall_s_all: list[float] = field(default_factory=list)


@dataclass
class SessionsBenchReport:
    """Everything ``BENCH_sessions.json`` records."""

    ports: int
    vcs: int
    levels: int
    arbiter: str
    scheme: str
    load: float
    seed: int
    cycles: int
    repeats: int
    plain: SessionsBenchStats
    disabled: SessionsBenchStats
    enabled: SessionsBenchStats
    #: (disabled - plain) / plain: cost of the dispatch branch alone.
    overhead_disabled: float
    #: (enabled - disabled) / disabled: cost of full churn handling.
    overhead_enabled: float
    #: Disabled run is bit-identical to plain (results + RNG states).
    disabled_identical: bool
    #: Two same-seed enabled runs replayed byte-identically (event log,
    #: stats payload, SimResult, RNG fingerprints).
    replay_identical: bool
    #: Session volume context for the enabled run.
    sessions_offered: int
    sessions_blocked: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def run_sessions_bench(
    *,
    ports: int = 4,
    vcs: int = 64,
    levels: int = 4,
    arbiter: str = "coa",
    scheme: str = "siabp",
    load: float = 0.7,
    seed: int = 0,
    cycles: int = 20_000,
    repeats: int = 5,
) -> SessionsBenchReport:
    """Measure session-layer overhead on the paper config, best-of-N.

    Three variants are timed with interleaved repetitions so background
    load hits all of them: *plain* calls ``run`` without the sessions
    argument, *disabled* passes ``sessions=None`` explicitly (same code
    path — the delta is pure measurement noise and is the
    disabled-overhead bound), *enabled* runs a full
    :class:`SessionEngine` under :data:`BENCH_CHURN`.
    """
    from ..perf.harness import make_cbr_sim

    control = RunControl(cycles=cycles, warmup_cycles=0)
    spec = SessionsSpec(churn=BENCH_CHURN)

    def timed(mode: str):
        sim, workload = make_cbr_sim(
            ports, vcs, levels, arbiter, scheme, load, seed, True
        )
        engine = None
        t0 = perf_counter_ns()
        if mode == "plain":
            result = sim.run(workload, control)
        elif mode == "disabled":
            result = sim.run(workload, control, sessions=None)
        else:
            engine = SessionEngine.from_spec(
                sim.router.config, spec, cycles, sim.rng.sessions
            )
            result = sim.run(workload, control, sessions=engine)
        wall = (perf_counter_ns() - t0) / 1e9
        return wall, result, sim.rng.state_fingerprint(), engine

    plain_walls: list[float] = []
    disabled_walls: list[float] = []
    enabled_walls: list[float] = []
    plain_result = disabled_result = None
    plain_fp = disabled_fp = None
    enabled_runs: list[tuple[Any, Any, Any]] = []
    for _ in range(repeats):
        wall, plain_result, plain_fp, _ = timed("plain")
        plain_walls.append(wall)
        wall, disabled_result, disabled_fp, _ = timed("disabled")
        disabled_walls.append(wall)
        wall, result, fp, engine = timed("enabled")
        enabled_walls.append(wall)
        enabled_runs.append((result, fp, engine))

    def stats(walls: list[float]) -> SessionsBenchStats:
        best = min(walls)
        return SessionsBenchStats(
            cycles_per_sec=cycles / best if best > 0 else float("inf"),
            wall_s=best,
            wall_s_all=walls,
        )

    plain = stats(plain_walls)
    disabled = stats(disabled_walls)
    enabled = stats(enabled_walls)
    disabled_identical = (
        plain_result is not None
        and disabled_result is not None
        and plain_result.to_dict() == disabled_result.to_dict()
        and plain_fp == disabled_fp
    )
    # Every enabled repetition ran the same seed: all must replay
    # byte-identically (the determinism acceptance gate).
    first_result, first_fp, first_engine = enabled_runs[0]
    first_payload = first_engine.to_payload()
    replay_identical = all(
        r.to_dict() == first_result.to_dict()
        and fp == first_fp
        and e.to_payload() == first_payload
        for r, fp, e in enabled_runs[1:]
    )
    return SessionsBenchReport(
        ports=ports,
        vcs=vcs,
        levels=levels,
        arbiter=arbiter,
        scheme=scheme,
        load=load,
        seed=seed,
        cycles=cycles,
        repeats=repeats,
        plain=plain,
        disabled=disabled,
        enabled=enabled,
        overhead_disabled=(disabled.wall_s - plain.wall_s) / plain.wall_s,
        overhead_enabled=(enabled.wall_s - disabled.wall_s) / disabled.wall_s,
        disabled_identical=disabled_identical,
        replay_identical=replay_identical,
        sessions_offered=first_payload["offered"],
        sessions_blocked=first_payload["blocked"],
    )


def check_sessions_overhead(
    report: SessionsBenchReport, max_disabled: float = 0.01
) -> tuple[bool, str]:
    """Gate the disabled-path overhead and determinism (CI).

    Negative measured overhead (timing noise) counts as zero.  The
    enabled-path cost is reported, not gated: churn handling does real
    work proportional to the arrival rate.
    """
    problems = []
    disabled = max(0.0, report.overhead_disabled)
    if disabled > max_disabled:
        problems.append(
            f"sessions-disabled overhead {disabled:.2%} > {max_disabled:.2%}"
        )
    if not report.disabled_identical:
        problems.append(
            "sessions-disabled run diverged from the plain run "
            "(results or RNG state differ)"
        )
    if not report.replay_identical:
        problems.append(
            "same-seed churn runs did not replay identically"
        )
    if problems:
        return False, "; ".join(problems)
    return True, (
        f"sessions overhead OK: disabled {disabled:.2%} "
        f"(max {max_disabled:.2%}), enabled "
        f"{max(0.0, report.overhead_enabled):.2%} (informational), "
        f"replay identical over {report.repeats} runs"
    )


def write_sessions_report(
    report: SessionsBenchReport, path: str | Path
) -> Path:
    """Serialize the report to JSON (the ``BENCH_sessions.json`` format)."""
    path = Path(path)
    path.write_text(
        json.dumps(report.to_dict(), indent=2, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return path
