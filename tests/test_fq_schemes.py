"""Fair-queueing scheme unit + router-integration tests.

Covers the stateful PriorityScheme lifecycle (setup/service/teardown),
key-range contracts that make the int64 tier folding safe, DRR/MCDRR
ring mechanics, best-effort subordination under the fq schemes, and the
fast-vs-reference path identity on the full router.
"""

import numpy as np
import pytest

from repro.core.link_scheduler import MAX_INTEGER_KEY
from repro.core.registry import make_scheme
from repro.fq.schemes import DRR, MCDRR, WFQ, WFQ_HORIZON, WFQ_SCALE
from repro.router import MMRouter, RouterConfig, TrafficClass
from repro.sim.engine import RunControl
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload

FQ_SCHEMES = ("wfq", "drr", "mcdrr")


def occ(v, *active):
    mask = np.zeros(v, dtype=bool)
    for vc in active:
        mask[vc] = True
    return mask


class TestStatefulProtocol:
    @pytest.mark.parametrize("name", FQ_SCHEMES)
    def test_registry_builds_with_router_shape(self, name):
        cfg = RouterConfig(num_ports=3, vcs_per_link=5, candidate_levels=2)
        scheme = make_scheme(name, cfg)
        assert scheme.stateful
        assert scheme.integer_valued
        assert scheme.shape == (3, 5)

    @pytest.mark.parametrize("name", FQ_SCHEMES)
    def test_compute_raises(self, name):
        scheme = make_scheme(name, RouterConfig())
        with pytest.raises(NotImplementedError):
            scheme.compute(np.array([1]), np.array([0]))

    def test_router_rejects_mismatched_shape(self):
        cfg = RouterConfig(num_ports=2, vcs_per_link=4, candidate_levels=2)
        with pytest.raises(ValueError, match="shape"):
            MMRouter(cfg, scheme=WFQ(4, 64))

    @pytest.mark.parametrize("name", FQ_SCHEMES)
    def test_keys_within_tier_fold_range(self, name):
        cfg = RouterConfig(num_ports=2, vcs_per_link=8, candidate_levels=2)
        scheme = make_scheme(name, cfg)
        for vc in range(8):
            scheme.on_setup(0, vc, vc % 2, 1 + vc, True)
        mask = occ(8, *range(8))
        for t in range(50):
            keys = scheme.keys_port(0, mask)
            assert keys.dtype == np.int64
            assert (keys[mask] >= 1).all()
            assert (keys[mask] < MAX_INTEGER_KEY).all()
            scheme.on_service(0, int(np.argmax(keys)), t % 2, t)
        assert (scheme.keys_port(0, occ(8)) == 0).all()

    @pytest.mark.parametrize("name", FQ_SCHEMES)
    def test_keys_stacks_keys_port(self, name):
        cfg = RouterConfig(num_ports=2, vcs_per_link=4, candidate_levels=2)
        scheme = make_scheme(name, cfg)
        scheme.on_setup(0, 1, 0, 2, True)
        scheme.on_setup(1, 3, 1, 5, True)
        occupied = np.zeros((2, 4), dtype=bool)
        occupied[0, 1] = occupied[1, 3] = True
        stacked = scheme.keys(occupied)
        assert stacked.shape == (2, 4)
        for p in range(2):
            np.testing.assert_array_equal(
                stacked[p], scheme.keys_port(p, occupied[p])
            )


class TestWfq:
    def test_setup_derives_weight_and_increment(self):
        wfq = WFQ(1, 4)
        wfq.on_setup(0, 0, 0, 8, True)
        assert wfq._weight[0][0] == 8
        assert wfq._inc[0][0] == WFQ_SCALE // 8

    def test_heavier_flow_ranks_first_and_chains(self):
        wfq = WFQ(1, 2)
        wfq.on_setup(0, 0, 0, 1, True)
        wfq.on_setup(0, 1, 0, 4, True)
        mask = occ(2, 0, 1)
        keys = wfq.keys_port(0, mask)
        assert keys[1] > keys[0]  # smaller finish tag = larger key
        # The heavy flow's 4th flit finishes exactly when the light
        # flow's 1st does: after three services its head tag levels.
        for t in range(3):
            wfq.on_service(0, 1, 0, t)
            keys = wfq.keys_port(0, mask)
        assert wfq.finish_tag(0, 1) == wfq.finish_tag(0, 0) == WFQ_SCALE

    def test_teardown_resets_state(self):
        wfq = WFQ(1, 2)
        wfq.on_setup(0, 0, 0, 4, True)
        wfq.keys_port(0, occ(2, 0))
        wfq.on_service(0, 0, 0, 0)
        wfq.on_teardown(0, 0)
        assert wfq._weight[0][0] == 0
        assert wfq._last_finish[0][0] == 0
        assert wfq.finish_tag(0, 0) is None

    def test_horizon_overflow_raises(self):
        wfq = WFQ(1, 1)
        wfq.on_setup(0, 0, 0, 1, True)
        wfq._last_finish[0][0] = WFQ_HORIZON
        with pytest.raises(OverflowError, match="horizon"):
            wfq.keys_port(0, occ(1, 0))

    def test_ports_are_independent(self):
        wfq = WFQ(2, 2)
        wfq.on_setup(0, 0, 0, 1, True)
        wfq.on_setup(1, 0, 0, 1, True)
        for t in range(5):
            wfq.keys_port(0, occ(2, 0))
            wfq.on_service(0, 0, 0, t)
        assert wfq.virtual_time(0) > 0
        assert wfq.virtual_time(1) == 0


class TestDrr:
    def test_round_robin_rotation_with_quantum(self):
        drr = DRR(1, 4)
        for vc in (0, 1, 2):
            drr.on_setup(0, vc, 0, 2, True)
        mask = occ(4, 0, 1, 2)
        # All deficits exhausted, cur=0: the ring front is vc 1.
        assert int(np.argmax(drr.keys_port(0, mask))) == 1
        drr.on_service(0, 1, 0, 0)  # deficit[1]: 0 -> 1
        # Front keeps serving while its deficit lasts...
        assert int(np.argmax(drr.keys_port(0, mask))) == 1
        drr.on_service(0, 1, 0, 1)  # deficit[1]: 1 -> 0
        # ...then rotates to the next backlogged VC.
        assert int(np.argmax(drr.keys_port(0, mask))) == 2

    def test_empty_queue_forfeits_deficit(self):
        drr = DRR(1, 4)
        drr.on_setup(0, 0, 0, 4, True)
        drr.on_service(0, 0, 0, 0)
        assert drr.deficits[0, 0] == 3
        drr.keys_port(0, occ(4, 1))  # vc 0 went idle
        assert drr.deficits[0, 0] == 0

    def test_teardown_resets(self):
        drr = DRR(1, 2)
        drr.on_setup(0, 0, 0, 5, True)
        drr.on_service(0, 0, 0, 0)
        drr.on_teardown(0, 0)
        assert drr.quanta[0, 0] == 1
        assert drr.deficits[0, 0] == 0

    def test_inspection_views_read_only(self):
        drr = DRR(1, 2)
        with pytest.raises(ValueError):
            drr.deficits[0, 0] = 9


class TestMcdrr:
    def test_candidates_are_channel_diverse(self):
        mc = MCDRR(2, 4)
        mc.on_setup(0, 0, 0, 1, True)  # channel 0
        mc.on_setup(0, 1, 0, 1, True)  # channel 0
        mc.on_setup(0, 2, 1, 1, True)  # channel 1
        keys = mc.keys_port(0, occ(4, 0, 1, 2))
        ranked = sorted((vc for vc in (0, 1, 2)), key=lambda vc: -keys[vc])
        # Depth 0 of both channels outranks depth 1 of channel 0.
        assert ranked[0] == 1  # chan 0 ring front (cur=0 -> anchor=1)
        assert ranked[1] == 2  # chan 1's front interleaves next
        assert ranked[2] == 0

    def test_outer_ring_advances_past_served_channel(self):
        mc = MCDRR(2, 4)
        mc.on_setup(0, 0, 0, 1, True)
        mc.on_setup(0, 2, 1, 1, True)
        mask = occ(4, 0, 2)
        keys = mc.keys_port(0, mask)
        first = int(np.argmax(keys))
        mc.on_service(0, first, 0 if first == 0 else 1, 0)
        keys = mc.keys_port(0, mask)
        second = int(np.argmax(keys))
        assert {first, second} == {0, 2}  # alternates across channels

    def test_teardown_clears_channel(self):
        mc = MCDRR(2, 4)
        mc.on_setup(0, 3, 1, 6, True)
        mc.on_teardown(0, 3)
        assert mc._out_of[0][3] == -1
        assert mc.quanta[0, 3] == 1


class TestBestEffortSubordination:
    @pytest.mark.parametrize("name", FQ_SCHEMES)
    def test_reserved_outranks_best_effort(self, name):
        cfg = RouterConfig(num_ports=2, vcs_per_link=4, vc_buffer_depth=2,
                           candidate_levels=2, flit_cycles_per_round=400)
        router = MMRouter(cfg, scheme=name)
        be = router.establish(0, 1, TrafficClass.BEST_EFFORT, 1).connection
        cbr = router.establish(0, 1, TrafficClass.CBR, 1).connection
        router.vc_memory.push(0, be.vc, 0, -1, False, now=0)
        router.vc_memory.push(0, cbr.vc, 4096, -1, False, now=4096)
        port0 = router._link_schedule(4096)[0]
        assert [c.vc for c in port0[:2]] == [cbr.vc, be.vc]
        assert port0[0].priority > port0[1].priority


class TestRouterIntegration:
    @pytest.mark.parametrize("name", FQ_SCHEMES)
    def test_fast_and_reference_paths_identical(self, name):
        cfg = RouterConfig(num_ports=2, vcs_per_link=8, candidate_levels=2)
        control = RunControl(cycles=600, warmup_cycles=100)
        results = []
        for fast in (True, False):
            sim = SingleRouterSim(cfg, arbiter="coa", scheme=name, seed=3,
                                  fast_path=fast)
            workload = build_cbr_workload(sim.router, 0.7, sim.rng.workload)
            results.append(sim.run(workload, control).to_dict())
        assert results[0] == results[1]

    @pytest.mark.parametrize("name", FQ_SCHEMES)
    def test_full_run_conserves_flow_control(self, name):
        cfg = RouterConfig(num_ports=2, vcs_per_link=8, candidate_levels=2)
        sim = SingleRouterSim(cfg, arbiter="coa", scheme=name, seed=1)
        workload = build_cbr_workload(sim.router, 0.8, sim.rng.workload)
        result = sim.run(workload, RunControl(cycles=500, warmup_cycles=0))
        sim.router.check_flow_control_invariant()
        assert result.throughput > 0

    def test_teardown_notifies_scheme(self):
        cfg = RouterConfig(num_ports=2, vcs_per_link=4, candidate_levels=2)
        router = MMRouter(cfg, scheme="drr")
        conn = router.establish(0, 1, TrafficClass.CBR, 3).connection
        assert router.scheme.quanta[0, conn.vc] == 3
        router.teardown(conn.conn_id)
        assert router.scheme.quanta[0, conn.vc] == 1
