"""J1 — §5.2 (text): frame jitter of the MPEG-2 connections under COA.

The paper reports, without a figure, that average jitter (the variation
in delay between adjacent frames of a connection) stays below ~8 us for
the SR injection model and ~100 us for BB — "quite encouraging results,
because the jitter allowed in MPEG-2 video transmission is around
several milliseconds" (absorbable at the receiver).

Shape claims asserted, for COA below its saturation knee:
  * SR jitter is far below BB jitter (smooth pacing wins);
  * both are orders of magnitude below the several-millisecond MPEG
    tolerance the paper cites.
"""

import pytest

from conftest import vbr_result
from repro.analysis import render_series

#: The MPEG-2 receiver tolerance the paper cites (several milliseconds).
MPEG_TOLERANCE_US = 3_000.0
#: Pre-saturation band for COA (its knee is >= ~80%).
PRESAT_LOAD = 75.0


@pytest.mark.benchmark(group="jitter")
def test_jitter_vbr_under_coa(benchmark):
    sr, bb = benchmark.pedantic(
        lambda: (vbr_result("SR"), vbr_result("BB")), rounds=1, iterations=1
    )
    series = {
        "SR/coa": sr.jitter_series("coa"),
        "SR/wfa": sr.jitter_series("wfa"),
        "BB/coa": bb.jitter_series("coa"),
        "BB/wfa": bb.jitter_series("wfa"),
    }
    print()
    print(render_series(
        "load %", series,
        title="§5.2 — avg adjacent-frame jitter (us) "
              "(paper: <~8 us SR, <~100 us BB, tolerance ~ms)",
    ))

    sr_presat = [v for load, v in series["SR/coa"] if load <= PRESAT_LOAD]
    bb_presat = [v for load, v in series["BB/coa"] if load <= PRESAT_LOAD]
    worst_sr, worst_bb = max(sr_presat), max(bb_presat)
    print(f"Worst pre-saturation COA jitter: SR {worst_sr:.1f} us, "
          f"BB {worst_bb:.1f} us")

    # SR pacing keeps jitter well below BB's bursty injection.
    assert worst_sr < worst_bb
    # Both stay orders of magnitude inside the MPEG tolerance.
    assert worst_sr < MPEG_TOLERANCE_US / 10
    assert worst_bb < MPEG_TOLERANCE_US
