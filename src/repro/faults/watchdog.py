"""Simulation-loop watchdog: flit conservation + stall/livelock detection.

The MMR substrate is loss-free by construction, so any flit that goes
missing — or any run that stops making progress — indicates either an
injected fault the recovery machinery failed to contain or a genuine bug.
Rather than hanging (livelock) or silently producing corrupt metrics
(conservation violation), the watchdog aborts the run with a diagnostic
snapshot rendered by :func:`repro.sim.tracing.dump_router_state`.
"""

from __future__ import annotations

from typing import Callable

from ..router.router import MMRouter
from ..sim.tracing import dump_router_state
from .models import FaultKind
from .schedule import FaultSchedule

__all__ = ["WatchdogError", "SimWatchdog"]


class WatchdogError(RuntimeError):
    """Raised when the watchdog detects a stall or a conservation hole.

    ``diagnostics`` carries the router-state dump taken at detection
    time, so the failure is debuggable from the exception alone.
    """

    def __init__(self, message: str, diagnostics: str) -> None:
        super().__init__(f"{message}\n{diagnostics}")
        self.diagnostics = diagnostics


class SimWatchdog:
    """Periodic invariant checks over one router's cycle loop."""

    def __init__(
        self,
        router: MMRouter,
        schedule: FaultSchedule,
        stall_limit: int = 4096,
        check_interval: int = 64,
    ) -> None:
        if stall_limit <= 0 or check_interval <= 0:
            raise ValueError("stall_limit and check_interval must be positive")
        self.router = router
        self.schedule = schedule
        self.stall_limit = stall_limit
        self.check_interval = check_interval
        self._last_progress = 0
        #: Called as ``on_trip(now, kind, dump)`` with ``kind`` one of
        #: ``"conservation"`` / ``"livelock"`` just before the watchdog
        #: raises — the telemetry flight recorder's dump hook.
        self.on_trip: Callable[[int, str, str], None] | None = None

    def note_progress(self, now: int) -> None:
        """Record that at least one flit departed this cycle."""
        self._last_progress = now

    def check(self, now: int, injected: int, departed: int, dropped: int) -> None:
        """Run the invariant sweep if a check interval has elapsed.

        ``injected`` counts flits deposited into the NICs, ``departed``
        flits that left through the crossbar, ``dropped`` flits discarded
        by fault handling (teardown drains, dead connections).
        """
        if now % self.check_interval != 0:
            return
        router = self.router
        conserved = router.buffered_flits() + router.nic_backlog()
        if injected != departed + dropped + conserved:
            dump = dump_router_state(router, now)
            self.schedule.record(
                now,
                FaultKind.STALL,
                "conservation",
                f"injected={injected} departed={departed} "
                f"dropped={dropped} held={conserved}",
            )
            if self.on_trip is not None:
                self.on_trip(now, "conservation", dump)
            raise WatchdogError(
                f"flit conservation violated at cycle {now}: "
                f"injected({injected}) != departed({departed}) + "
                f"dropped({dropped}) + held({conserved})",
                dump,
            )
        stalled_for = now - self._last_progress
        if router.buffered_flits() > 0 and stalled_for >= self.stall_limit:
            dump = dump_router_state(router, now)
            self.schedule.record(
                now, FaultKind.STALL, "livelock", f"stalled_for={stalled_for}"
            )
            if self.on_trip is not None:
                self.on_trip(now, "livelock", dump)
            raise WatchdogError(
                f"no departure for {stalled_for} cycles with flits buffered "
                f"(cycle {now}): livelock",
                dump,
            )
