"""Validation against published queueing theory (paper ref [10]).

The strongest correctness check a switch simulator can pass: drive the
conventional single-request arbiter into saturation and compare the
measured ceiling against Karol-Hluchyj-Morgan's published input-queueing
saturation throughput for the same port count.
"""

import math

import pytest

from repro.analysis.theory import (
    KAROL_HLUCHYJ_TABLE,
    fresh_uniform_matching_limit,
    hol_asymptote,
    karol_hluchyj_limit,
)
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload


class TestClosedForms:
    def test_table_values(self):
        assert karol_hluchyj_limit(2) == 0.75
        assert karol_hluchyj_limit(4) == pytest.approx(0.6553)

    def test_asymptote(self):
        assert hol_asymptote() == pytest.approx(2 - math.sqrt(2))
        assert karol_hluchyj_limit(1000) == pytest.approx(2 - math.sqrt(2))

    def test_table_decreases_toward_asymptote(self):
        values = [KAROL_HLUCHYJ_TABLE[n] for n in sorted(KAROL_HLUCHYJ_TABLE)]
        assert values == sorted(values, reverse=True)
        assert values[-1] > hol_asymptote()

    def test_fresh_matching_exceeds_hol_limit(self):
        # Coincides exactly at N=2; strictly above for larger switches.
        assert fresh_uniform_matching_limit(2) == karol_hluchyj_limit(2)
        for n in (3, 4, 8):
            assert fresh_uniform_matching_limit(n) > karol_hluchyj_limit(n)

    def test_fresh_matching_values(self):
        assert fresh_uniform_matching_limit(1) == 1.0
        assert fresh_uniform_matching_limit(4) == pytest.approx(
            1 - (3 / 4) ** 4
        )

    def test_validation_args(self):
        with pytest.raises(ValueError):
            karol_hluchyj_limit(0)
        with pytest.raises(ValueError):
            fresh_uniform_matching_limit(0)


class TestSimulatorMatchesTheory:
    @pytest.mark.parametrize("ports,seed", [(4, 17), (4, 23)])
    def test_wfa_saturation_matches_karol_hluchyj(self, ports, seed):
        """Overdrive a WFA-arbitrated router: the delivered throughput
        must settle at the published HOL-blocking ceiling.

        The match is approximate: Karol-Hluchyj assumes each *new* HOL
        cell draws a fresh uniform destination, while MMR connections
        have *fixed* destinations and SIABP picks which VC is head — at
        saturation the head's destination gets sticky and the random
        per-workload destination mix is not perfectly balanced, both of
        which pull the ceiling a few points below the iid theory.  ±0.07
        absolute covers that modelling gap at N=4 while still pinning
        the ceiling far below full load and far above pathological.
        """
        config = default_config(num_ports=ports)
        sim = SingleRouterSim(config, arbiter="wfa", seed=seed)
        workload = build_cbr_workload(sim.router, 0.95, sim.rng.workload)
        result = sim.run(workload, RunControl(cycles=20_000, warmup_cycles=4_000))
        theory = karol_hluchyj_limit(ports)
        assert result.throughput == pytest.approx(theory, abs=0.07)
        # And the ceiling is a real ceiling: far below the offered load.
        assert result.throughput < result.offered_load - 0.15

    def test_coa_exceeds_the_hol_ceiling(self):
        """The COA's whole point: multi-candidate selection beats the
        single-request ceiling decisively."""
        config = default_config()
        sim = SingleRouterSim(config, arbiter="coa", seed=17)
        workload = build_cbr_workload(sim.router, 0.85, sim.rng.workload)
        result = sim.run(workload, RunControl(cycles=20_000, warmup_cycles=4_000))
        assert result.throughput > karol_hluchyj_limit(4) + 0.1
