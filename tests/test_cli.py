"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.arbiter == "coa"
        assert args.traffic == "cbr"
        assert args.scale == "ci"

    def test_rejects_unknown_arbiter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--arbiter", "bogus"])

    def test_loads_parsing(self):
        args = build_parser().parse_args(["sweep", "--loads", "0.4,0.8"])
        assert args.loads == [0.4, 0.8]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--loads", "a,b"])

    def test_arbiters_parsing(self):
        args = build_parser().parse_args(["sweep", "--arbiters", "coa, wfa"])
        assert args.arbiters == ["coa", "wfa"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "coa" in out and "wfa" in out
        assert "siabp" in out
        assert "flower_garden" in out

    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "football" in out

    def test_reproduce_hwcost(self, capsys):
        assert main(["reproduce", "hwcost"]) == 0
        out = capsys.readouterr().out
        assert "IABP" in out and "SIABP" in out

    def test_reproduce_fig6(self, capsys):
        assert main(["reproduce", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "Flower Garden" in out
        assert "mean" in out

    def test_run_cbr_small(self, capsys):
        code = main([
            "run", "--traffic", "cbr", "--load", "0.4",
            "--cycles", "3000", "--vcs", "16", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "offered load" in out
        assert "coa / siabp" in out
        assert "flit delay" in out

    def test_run_vbr_small(self, capsys):
        code = main([
            "run", "--traffic", "vbr", "--model", "BB", "--load", "0.4",
            "--cycles", "3000", "--vcs", "16", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "frame delay" in out

    def test_sweep_small(self, capsys):
        code = main([
            "sweep", "--traffic", "cbr", "--arbiters", "coa,wfa",
            "--loads", "0.3,0.5", "--cycles", "2000", "--vcs", "16",
            "--metric", "throughput",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "coa" in out and "wfa" in out
        assert "throughput" in out

    def test_sweep_unknown_arbiter_fails_cleanly(self, capsys):
        code = main([
            "sweep", "--arbiters", "coa,hypothetical",
            "--loads", "0.3", "--cycles", "500", "--vcs", "8",
        ])
        assert code == 2
        assert "unknown arbiter" in capsys.readouterr().err
