"""S1-R — robustness of the headline saturation claim across seeds.

The paper's central result — WFA saturates near 70% offered load, COA
holds well past 80% — is asserted by F5/F8/F9 on one seed.  This bench
replicates the CBR throughput measurement over independent seeds
(independent connection mixes, destinations, phases) and requires the
claim to hold for *every* replication, not on average: the mechanism
(head-of-line blocking vs multi-candidate priority matching) is
structural, so no lucky workload should rescue the WFA.
"""

import pytest

from repro.analysis import render_table
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.replication import replicate
from repro.traffic.mixes import build_cbr_workload

SEEDS = (101, 202, 303)
LOADS = (0.7, 0.85)


def _builder(router, rng, load):
    return build_cbr_workload(router, load, rng)


def _run():
    scale = get_scale("ci")
    control = RunControl(scale.cbr_cycles, scale.cbr_warmup)
    out = {}
    for arbiter in ("coa", "wfa"):
        for load in LOADS:
            out[(arbiter, load)] = replicate(
                _builder, default_config(), arbiter, control, load, SEEDS
            )
    return out


@pytest.mark.benchmark(group="s1-robustness")
def test_s1_saturation_claim_across_seeds(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    rows = []
    for (arbiter, load), point in results.items():
        thr = point.throughput
        rows.append([
            arbiter, f"{load:.0%}", point.n,
            f"{thr.mean:.1%} ± {thr.half_width:.1%}",
            f"{min(r.normalized_throughput for r in point.results):.3f}",
        ])
    print(render_table(
        ["arbiter", "target load", "seeds", "throughput (95% CI)",
         "worst delivered/offered"],
        rows,
        title="S1-R — saturation claim replicated over "
              f"{len(SEEDS)} independent workloads",
    ))

    # COA delivers the offered load at every seed and load — including
    # 85%, past the paper's ~83% reading.
    for load in LOADS:
        for r in results[("coa", load)].results:
            assert r.normalized_throughput > 0.97, (load, r.seed)

    # 70% is the WFA's knee itself: individual workloads land on either
    # side of it (the paper says "around 70%"), so the claim there is the
    # mean, not every seed.
    wfa_70 = results[("wfa", 0.7)]
    assert wfa_70.throughput.mean < results[("coa", 0.7)].throughput.mean + 0.01

    # 85% is decisively past the knee: every seed must show saturation,
    # and the throughput CIs must separate cleanly.
    coa_85 = results[("coa", 0.85)]
    wfa_85 = results[("wfa", 0.85)]
    for r in wfa_85.results:
        assert r.normalized_throughput < 0.9, r.seed
    assert coa_85.throughput.low > wfa_85.throughput.high
