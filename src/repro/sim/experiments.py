"""One entry point per paper experiment (DESIGN.md §4 index).

Each function reproduces the data behind one table or figure and returns
plain structures the benches print and assert on.  Experiment-scale knobs
(cycle counts, router size) default to CI-scale values that preserve the
curves' shape; pass ``scale="paper"`` for longer runs closer to the
paper's operating points (see EXPERIMENTS.md for the recorded settings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..router.config import RouterConfig
from .engine import RunControl
from .sweep import LoadSweep, run_load_sweep

__all__ = [
    "ExperimentScale",
    "CBR_LOADS",
    "VBR_LOADS",
    "cbr_delay_experiment",
    "vbr_experiment",
    "default_config",
]

#: Offered-load grids (fractions of link bandwidth), as in the figures.
CBR_LOADS: tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9)
VBR_LOADS: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9)


@dataclass(frozen=True)
class ExperimentScale:
    """Run-length profile for the experiments."""

    name: str
    cbr_cycles: int
    cbr_warmup: int
    vbr_frame_time_cycles: int
    vbr_num_gops: int
    vbr_bandwidth_scale: float

    @property
    def vbr_cycles(self) -> int:
        from ..traffic.mpeg import GOP_LENGTH

        return self.vbr_frame_time_cycles * GOP_LENGTH * self.vbr_num_gops

    @property
    def vbr_warmup(self) -> int:
        # One frame time of fill-up; frame accounting already excludes
        # frames truncated by the horizon.
        return self.vbr_frame_time_cycles


_SCALES = {
    # Tiny: seconds; for unit tests and interactive smoke runs.  Curves
    # are noisy at this scale — use "ci" or "paper" for real numbers.
    "tiny": ExperimentScale(
        "tiny",
        cbr_cycles=4_000,
        cbr_warmup=800,
        vbr_frame_time_cycles=400,
        vbr_num_gops=1,
        vbr_bandwidth_scale=8.0,
    ),
    # CI-scale: minutes for the full bench suite.
    "ci": ExperimentScale(
        "ci",
        cbr_cycles=30_000,
        cbr_warmup=5_000,
        vbr_frame_time_cycles=1_500,
        vbr_num_gops=2,
        vbr_bandwidth_scale=8.0,
    ),
    # Paper-scale: longer runs, finer granularity (still far below the
    # paper's 6M cycles; the curves are stable well before that).
    "paper": ExperimentScale(
        "paper",
        cbr_cycles=120_000,
        cbr_warmup=20_000,
        vbr_frame_time_cycles=2_500,
        vbr_num_gops=4,
        vbr_bandwidth_scale=8.0,
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return _SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; known: {', '.join(_SCALES)}"
        ) from None


def default_config(**overrides) -> RouterConfig:
    """The experiments' router: 4x4, 64 VCs/link, 4 candidate levels."""
    base = RouterConfig(num_ports=4, vcs_per_link=64, candidate_levels=4)
    return base.with_overrides(**overrides) if overrides else base


# ----------------------------------------------------------------------
# F5 — CBR flit delay vs offered load, per bandwidth class
# ----------------------------------------------------------------------


@dataclass
class CBRDelayResult:
    """Data behind Fig. 5 (a: low, b: medium, c: high)."""

    sweeps: dict[str, LoadSweep]
    scale: ExperimentScale

    def class_series(self, arbiter: str, label: str) -> list[tuple[float, float]]:
        """(load %, mean flit delay µs) for one class and arbiter."""
        return self.sweeps[arbiter].series(
            lambda r: r.flit_delay_us.get(label, float("nan"))
        )

    def saturation_load(self, arbiter: str, threshold: float = 0.97) -> float:
        """First load (%) where throughput stops tracking offered load."""
        for point in self.sweeps[arbiter].points:
            if point.result.normalized_throughput < threshold:
                return point.offered_load * 100.0
        return float("inf")


def cbr_delay_experiment(
    arbiters: Sequence[str] = ("coa", "wfa"),
    loads: Sequence[float] = CBR_LOADS,
    config: RouterConfig | None = None,
    scheme: str = "siabp",
    seed: int = 0,
    scale: str | ExperimentScale = "ci",
    *,
    jobs: int = 1,
    store=None,
) -> CBRDelayResult:
    """Reproduce Fig. 5: average flit delay since generation, CBR mix.

    The workload is declarative, so points fan out over ``jobs`` worker
    processes and are served from the campaign result cache when a
    ``store`` is given (see :mod:`repro.campaign`).
    """
    from ..campaign.plan import WorkloadSpec

    sc = get_scale(scale)
    cfg = config or default_config()
    control = RunControl(cycles=sc.cbr_cycles, warmup_cycles=sc.cbr_warmup)
    workload = WorkloadSpec.cbr()
    sweeps = {
        arbiter: run_load_sweep(
            loads, workload, cfg, arbiter, control, scheme, seed,
            jobs=jobs, store=store,
        )
        for arbiter in arbiters
    }
    return CBRDelayResult(sweeps=sweeps, scale=sc)


# ----------------------------------------------------------------------
# F8 / F9 / J1 — VBR utilization, frame delay, jitter
# ----------------------------------------------------------------------


@dataclass
class VBRResult:
    """Data behind Figs. 8-9 and the §5.2 jitter numbers."""

    model: str  # "SR" or "BB"
    sweeps: dict[str, LoadSweep]
    scale: ExperimentScale

    def utilization_series(self, arbiter: str) -> list[tuple[float, float]]:
        """(generated load %, crossbar utilization %) — Fig. 8."""
        return self.sweeps[arbiter].series(lambda r: r.utilization * 100.0)

    def frame_delay_series(self, arbiter: str) -> list[tuple[float, float]]:
        """(generated load %, mean frame delay µs) — Fig. 9 (log y)."""
        return self.sweeps[arbiter].series(lambda r: r.overall_frame_delay_us)

    def jitter_series(self, arbiter: str) -> list[tuple[float, float]]:
        """(generated load %, mean adjacent-frame jitter µs) — §5.2."""
        return self.sweeps[arbiter].series(lambda r: r.overall_jitter_us)

    def saturation_load(self, arbiter: str, threshold: float = 0.95) -> float:
        """First load (%) where utilization stops tracking generated load."""
        for point in self.sweeps[arbiter].points:
            r = point.result
            if r.offered_load > 0 and r.utilization / r.offered_load < threshold:
                return point.offered_load * 100.0
        return float("inf")


def vbr_experiment(
    model: str = "SR",
    arbiters: Sequence[str] = ("coa", "wfa"),
    loads: Sequence[float] = VBR_LOADS,
    config: RouterConfig | None = None,
    scheme: str = "siabp",
    seed: int = 0,
    scale: str | ExperimentScale = "ci",
    *,
    jobs: int = 1,
    store=None,
) -> VBRResult:
    """Reproduce Figs. 8-9: MPEG-2 VBR under the SR or BB model.

    Routes through the campaign executor like
    :func:`cbr_delay_experiment`; ``jobs``/``store`` enable parallel and
    cached execution.
    """
    from ..campaign.plan import WorkloadSpec

    sc = get_scale(scale)
    cfg = config or default_config()
    control = RunControl(cycles=sc.vbr_cycles, warmup_cycles=sc.vbr_warmup)
    workload = WorkloadSpec.vbr(
        model=model,
        frame_time_cycles=sc.vbr_frame_time_cycles,
        bandwidth_scale=sc.vbr_bandwidth_scale,
        num_gops=sc.vbr_num_gops,
    )
    sweeps = {
        arbiter: run_load_sweep(
            loads, workload, cfg, arbiter, control, scheme, seed,
            jobs=jobs, store=store,
        )
        for arbiter in arbiters
    }
    return VBRResult(model=model, sweeps=sweeps, scale=sc)
