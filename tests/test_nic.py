"""Tests for repro.router.nic (NIC buffers + demand-driven RR link control)."""

import numpy as np
import pytest

from repro.router.config import RouterConfig
from repro.router.nic import NIC


def make_nic(vcs=4) -> NIC:
    cfg = RouterConfig(num_ports=2, vcs_per_link=vcs, candidate_levels=1)
    return NIC(cfg, port=0)


ALL = (1 << 64) - 1  # every VC has credits


class TestQueues:
    def test_inject_pop_fifo(self):
        nic = make_nic()
        nic.inject(1, gen_cycle=5, frame_id=2, frame_last=False)
        nic.inject(1, gen_cycle=6, frame_id=2, frame_last=True)
        assert nic.pop(1) == (5, 2, False)
        assert nic.pop(1) == (6, 2, True)

    def test_pop_empty_raises(self):
        nic = make_nic()
        with pytest.raises(IndexError):
            nic.pop(0)

    def test_counters(self):
        nic = make_nic()
        nic.inject(0, 0)
        nic.inject(1, 0)
        assert nic.accepted == 2
        assert nic.backlog() == 2
        nic.pop(0)
        assert nic.forwarded == 1
        assert nic.backlog() == 1

    def test_queue_lengths_view_readonly(self):
        nic = make_nic()
        with pytest.raises(ValueError):
            nic.queue_lengths[0] = 3

    def test_oldest_gen_cycle(self):
        nic = make_nic()
        assert nic.oldest_gen_cycle(2) is None
        nic.inject(2, gen_cycle=17)
        assert nic.oldest_gen_cycle(2) == 17


class TestSelect:
    def test_no_flits_returns_minus_one(self):
        nic = make_nic()
        assert nic.select(ALL) == -1

    def test_no_credits_returns_minus_one(self):
        nic = make_nic()
        nic.inject(0, 0)
        assert nic.select(0) == -1

    def test_respects_credit_mask(self):
        nic = make_nic()
        nic.inject(0, 0)
        nic.inject(2, 0)
        # Only VC 2 has a credit.
        assert nic.select(0b0100) == 2

    def test_round_robin_over_eligible(self):
        nic = make_nic(vcs=4)
        for vc in (0, 1, 3):
            nic.inject(vc, 0)
            nic.inject(vc, 1)
        order = []
        for _ in range(6):
            vc = nic.select(ALL)
            order.append(vc)
            nic.pop(vc)
        # Demand-driven RR cycles through the backlogged VCs fairly.
        assert order == [0, 1, 3, 0, 1, 3]

    def test_wraparound(self):
        nic = make_nic(vcs=4)
        nic.inject(3, 0)
        nic.inject(0, 0)
        vc = nic.select(ALL)
        assert vc == 0  # pointer starts at 0
        nic.pop(vc)     # pointer -> 1; only VC 3 remains
        assert nic.select(ALL) == 3
        nic.pop(3)      # pointer -> 0 (wrap)
        nic.inject(2, 0)
        assert nic.select(ALL) == 2

    def test_select_does_not_dequeue(self):
        nic = make_nic()
        nic.inject(1, 0)
        assert nic.select(ALL) == 1
        assert nic.select(ALL) == 1
        assert nic.backlog() == 1

    def test_mask_consistency_random_ops(self):
        rng = np.random.default_rng(11)
        nic = make_nic(vcs=6)
        for _ in range(400):
            if rng.random() < 0.55:
                nic.inject(int(rng.integers(6)), 0)
            else:
                credit_mask = int(rng.integers(0, 64))
                vc = nic.select(credit_mask)
                if vc >= 0:
                    assert credit_mask & (1 << vc)
                    assert nic.queue_lengths[vc] > 0
                    nic.pop(vc)
                else:
                    # No eligible VC: every VC fails on flits or credits.
                    for cand in range(6):
                        assert (
                            nic.queue_lengths[cand] == 0
                            or not (credit_mask & (1 << cand))
                        )
