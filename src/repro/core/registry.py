"""Name-based factories for arbiters and priority schemes.

The experiment harness, the benches and the examples refer to algorithms
by name ("coa", "wfa", ...); this module is the single place those names
are resolved, so adding an algorithm automatically exposes it everywhere.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .coa import CandidateOrderArbiter
from .islip import ISLIP
from .matching import Arbiter
from .pim import PIM
from .priorities import FIFOPriority, IABP, PriorityScheme, SIABP, StaticPriority
from .rr import GreedyPriorityMatcher, RandomMatcher
from .wfa import WaveFrontArbiter
from ..fq.schemes import DRR, MCDRR, WFQ

if TYPE_CHECKING:  # type-only: avoids a core <-> router import cycle
    from ..router.config import RouterConfig

__all__ = [
    "ARBITER_NAMES",
    "SCHEME_NAMES",
    "make_arbiter",
    "make_scheme",
]

_ARBITERS: dict[str, Callable[[RouterConfig], Arbiter]] = {
    "coa": lambda cfg: CandidateOrderArbiter(cfg.num_ports, cfg.candidate_levels),
    "coa-level-only": lambda cfg: CandidateOrderArbiter(
        cfg.num_ports, cfg.candidate_levels, ordering="level_only"
    ),
    "coa-conflict-only": lambda cfg: CandidateOrderArbiter(
        cfg.num_ports, cfg.candidate_levels, ordering="conflict_only"
    ),
    "coa-random-order": lambda cfg: CandidateOrderArbiter(
        cfg.num_ports, cfg.candidate_levels, ordering="random"
    ),
    "coa-random-arb": lambda cfg: CandidateOrderArbiter(
        cfg.num_ports, cfg.candidate_levels, arbitration="random"
    ),
    "wfa": lambda cfg: WaveFrontArbiter(cfg.num_ports, wrapped=True),
    "wfa-plain": lambda cfg: WaveFrontArbiter(cfg.num_ports, wrapped=False),
    "wfa-multi": lambda cfg: WaveFrontArbiter(
        cfg.num_ports, wrapped=True, max_levels=None
    ),
    "islip": lambda cfg: ISLIP(cfg.num_ports),
    "islip-1": lambda cfg: ISLIP(cfg.num_ports, iterations=1),
    "islip-multi": lambda cfg: ISLIP(cfg.num_ports, max_levels=None),
    "pim": lambda cfg: PIM(cfg.num_ports),
    "pim-1": lambda cfg: PIM(cfg.num_ports, iterations=1),
    "pim-multi": lambda cfg: PIM(cfg.num_ports, max_levels=None),
    "greedy": lambda cfg: GreedyPriorityMatcher(),
    "random": lambda cfg: RandomMatcher(),
}

_SCHEMES: dict[str, Callable[[RouterConfig], PriorityScheme]] = {
    "siabp": lambda cfg: SIABP(),
    "iabp": lambda cfg: IABP(cfg.round_cycles),
    "static": lambda cfg: StaticPriority(),
    "fifo": lambda cfg: FIFOPriority(),
    # Fair-queueing family (stateful; see repro.fq.schemes).
    "wfq": lambda cfg: WFQ(cfg.num_ports, cfg.vcs_per_link),
    "drr": lambda cfg: DRR(cfg.num_ports, cfg.vcs_per_link),
    "mcdrr": lambda cfg: MCDRR(cfg.num_ports, cfg.vcs_per_link),
}

#: Registered arbiter names, in registration order.
ARBITER_NAMES = tuple(_ARBITERS)
#: Registered priority-scheme names.
SCHEME_NAMES = tuple(_SCHEMES)


def make_arbiter(name: str, config: RouterConfig) -> Arbiter:
    """Instantiate an arbiter by registry name."""
    try:
        factory = _ARBITERS[name]
    except KeyError:
        raise ValueError(
            f"unknown arbiter {name!r}; known: {', '.join(ARBITER_NAMES)}"
        ) from None
    return factory(config)


def make_scheme(name: str, config: RouterConfig) -> PriorityScheme:
    """Instantiate a priority scheme by registry name."""
    try:
        factory = _SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; known: {', '.join(SCHEME_NAMES)}"
        ) from None
    return factory(config)
