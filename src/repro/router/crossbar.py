"""Multiplexed crossbar model.

The MMR crossbar has one port per *physical* link; virtual channels are
multiplexed onto the crossbar ports, which is why arbitration (link +
switch scheduling) must run every flit cycle.  Once the switch scheduler
has produced a conflict-free matching, all matched flits are forwarded
synchronously through the crossbar in one flit cycle (pipelined at the
phit level in hardware; atomic per flit cycle here).

The crossbar validates the matching it is handed — a conflicting matching
indicates an arbiter bug and raises — and keeps the utilization counters
behind the paper's Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import RouterConfig
from .vc_memory import VCMemory

__all__ = ["Departure", "Crossbar"]


@dataclass(frozen=True, slots=True)
class Departure:
    """One flit forwarded through the crossbar this cycle."""

    in_port: int
    vc: int
    out_port: int
    gen_cycle: int
    arrival_cycle: int
    frame_id: int
    frame_last: bool


class Crossbar:
    """Applies switch-scheduler matchings to the VC memory."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        n = config.num_ports
        #: Cycles the crossbar has been stepped.
        self.cycles = 0
        #: Total matched input/output pairs over all cycles.
        self.total_grants = 0
        # Per-port grant counters; plain lists because the hot path bumps
        # one scalar per grant (numpy scalar read-modify-write is ~an
        # order of magnitude slower).  Exposed as arrays via properties.
        self._output_grants = [0] * n
        self._input_grants = [0] * n
        # Preallocated conflict-check scratch (transfer runs every cycle).
        self._in_used = [False] * n
        self._out_used = [False] * n

    def transfer(
        self,
        matching: list[tuple[int, int, int]],
        vc_memory: VCMemory,
        now: int,
    ) -> list[Departure]:
        """Forward every matched head flit through the crossbar.

        ``matching`` is a list of ``(in_port, vc, out_port)`` triples.  It
        must be conflict-free: each input port and each output port may
        appear at most once.  Returns the departures, in matching order.
        """
        in_used = self._in_used
        out_used = self._out_used
        for i in range(self.config.num_ports):
            in_used[i] = False
            out_used[i] = False
        departures: list[Departure] = []
        for in_port, vc, out_port in matching:
            if in_used[in_port]:
                raise ValueError(
                    f"conflicting matching: input port {in_port} matched twice"
                )
            if out_used[out_port]:
                raise ValueError(
                    f"conflicting matching: output port {out_port} matched twice"
                )
            in_used[in_port] = True
            out_used[out_port] = True
            gen, arrival, frame_id, frame_last = vc_memory.pop(in_port, vc)
            departures.append(
                Departure(in_port, vc, out_port, gen, arrival, frame_id, frame_last)
            )
            self._output_grants[out_port] += 1
            self._input_grants[in_port] += 1
        self.total_grants += len(departures)
        self.cycles += 1
        return departures

    @property
    def output_grants(self) -> np.ndarray:
        """Per-output grant counters (read-only snapshot)."""
        arr = np.array(self._output_grants, dtype=np.int64)
        arr.flags.writeable = False
        return arr

    @property
    def input_grants(self) -> np.ndarray:
        """Per-input grant counters (read-only snapshot)."""
        arr = np.array(self._input_grants, dtype=np.int64)
        arr.flags.writeable = False
        return arr

    @property
    def utilization(self) -> float:
        """Average fraction of crossbar ports busy per cycle (Fig. 8)."""
        if self.cycles == 0:
            return 0.0
        return self.total_grants / (self.cycles * self.config.num_ports)

    def reset_counters(self) -> None:
        """Zero the utilization counters (e.g. after warmup)."""
        self.cycles = 0
        self.total_grants = 0
        n = self.config.num_ports
        self._output_grants = [0] * n
        self._input_grants = [0] * n
