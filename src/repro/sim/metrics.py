"""Measurement: flit delay, frame delay, jitter, utilization, throughput.

Metric definitions follow the paper exactly:

* **Flit delay** — time from a flit's *generation* at the source to its
  departure through the crossbar, i.e. NIC queueing + link + router
  queueing + switch transfer (paper Fig. 5: "average flit latency
  considering both the time the flit has been waiting in the network
  interface and the time to go through the switch").
* **Frame delay** — the delay since generation of the *last* flit of an
  application frame, which makes the metric independent of the injection
  model (paper §5.2).
* **Jitter** — the variation in delay between *adjacent frames* of the
  same connection: mean |frame_delay(k) - frame_delay(k-1)|.
* **Crossbar utilization** — average fraction of crossbar ports busy per
  cycle (paper Fig. 8), taken from the crossbar counters after warmup.

All statistics are streaming (O(1) memory per group) plus a bounded
reservoir for percentiles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..obs.hist import LogHistogram
from ..router.config import RouterConfig
from ..router.crossbar import Departure

__all__ = ["StreamingStat", "GroupStats", "FaultCounters", "MetricsCollector"]


class StreamingStat:
    """Count / mean / max / min plus percentile estimation.

    Percentiles come from a log-bucketed histogram
    (:class:`repro.obs.hist.LogHistogram`): deterministic, mergeable, and
    with relative error bounded by its ``alpha`` — unlike the sampling
    reservoir, whose estimate is seed-dependent with unbounded error.
    The reservoir is kept as a fallback for streams the histogram cannot
    hold (negative values) and for exact-sample consumers.
    """

    __slots__ = (
        "n",
        "total",
        "max",
        "min",
        "_hist",
        "_reservoir",
        "_cap",
        "_seen",
        "_rng",
        "_uniform",
        "_uniform_i",
    )

    def __init__(self, reservoir: int = 2048, seed: int = 0xC0A) -> None:
        self.n = 0
        self.total = 0.0
        self.max = float("-inf")
        self.min = float("inf")
        self._hist = LogHistogram()
        self._cap = reservoir
        self._reservoir: list[float] = []
        self._seen = 0
        self._rng = np.random.default_rng(seed)
        # Prefetched uniforms for the reservoir (one generator call per
        # batch instead of one per sample — the per-call overhead of
        # Generator.integers dominates on the recording hot path).
        self._uniform: list[float] = []
        self._uniform_i = 0

    def add(self, value: float) -> None:
        self.n += 1
        self.total += value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value
        # O(1), allocation-free; refuses negatives (reservoir covers them).
        self._hist.record(value)
        # Vitter's algorithm R keeps a uniform sample of the stream; the
        # slot draw uses a scaled prefetched uniform, which is the same
        # distribution up to float rounding.
        self._seen += 1
        if len(self._reservoir) < self._cap:
            self._reservoir.append(value)
        else:
            i = self._uniform_i
            if i == len(self._uniform):
                self._uniform = self._rng.random(512).tolist()
                i = 0
            self._uniform_i = i + 1
            j = int(self._uniform[i] * self._seen)
            if j < self._cap:
                self._reservoir[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else float("nan")

    @property
    def histogram(self) -> LogHistogram | None:
        """The backing histogram when it covers the full stream."""
        return self._hist if self._hist.n == self.n else None

    def percentile(self, q: float) -> float:
        """Quantile estimate: histogram when it saw every value, else
        the reservoir (seed-dependent; only for negative-value streams)."""
        if self.n and self._hist.n == self.n:
            return self._hist.percentile(q)
        if not self._reservoir:
            return float("nan")
        return float(np.percentile(np.asarray(self._reservoir), q))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StreamingStat n={self.n} mean={self.mean:.3g} max={self.max:.3g}>"


@dataclass
class GroupStats:
    """Per-label metric bundle."""

    flit_delay: StreamingStat = field(default_factory=StreamingStat)
    frame_delay: StreamingStat = field(default_factory=StreamingStat)
    jitter: StreamingStat = field(default_factory=StreamingStat)
    flits: int = 0
    frames: int = 0


@dataclass
class FaultCounters:
    """Fault/recovery accounting for a robustness run (repro.faults).

    ``injected_*`` count fault events put into the system; the remaining
    fields count what the detection and recovery machinery did about
    them.  All zeros on a healthy run.
    """

    injected_corruption: int = 0
    injected_credit_loss: int = 0
    injected_credit_dup: int = 0
    injected_stuck_slot: int = 0
    injected_dead_port: int = 0
    crc_detected: int = 0
    retransmissions: int = 0
    duplicates_discarded: int = 0
    credit_resyncs: int = 0
    resync_giveups: int = 0
    teardowns: int = 0
    readmitted: int = 0
    connections_dropped: int = 0
    flits_dropped: int = 0
    degradation_escalations: int = 0
    max_degradation_level: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)

    def total_injected(self) -> int:
        return (
            self.injected_corruption
            + self.injected_credit_loss
            + self.injected_credit_dup
            + self.injected_stuck_slot
            + self.injected_dead_port
        )


class MetricsCollector:
    """Consumes crossbar departures and accumulates the paper's metrics."""

    def __init__(
        self,
        config: RouterConfig,
        labels_by_conn: dict[int, str],
        conn_of_vc: dict[tuple[int, int], int],
        measure_from: int = 0,
    ) -> None:
        self.config = config
        self.measure_from = measure_from
        self._labels = labels_by_conn
        self._conn_of_vc = conn_of_vc
        self.groups: dict[str, GroupStats] = {}
        self.overall = GroupStats()
        # conn_id -> previous frame delay (for jitter).
        self._prev_frame_delay: dict[int, float] = {}
        self.total_departures = 0
        self.measured_departures = 0

    def register_connection(
        self, in_port: int, vc: int, conn_id: int, label: str
    ) -> None:
        """Register a connection established after the run started.

        The fault-recovery path re-admits torn-down connections on a new
        virtual channel (and possibly a new output port); their departures
        must keep accruing to the original metrics group.
        """
        self._conn_of_vc[(in_port, vc)] = conn_id
        self._labels[conn_id] = label

    def _group(self, label: str) -> GroupStats:
        group = self.groups.get(label)
        if group is None:
            group = GroupStats()
            self.groups[label] = group
        return group

    def record(self, departure: Departure, now: int) -> None:
        """Account one flit leaving the router at cycle ``now``."""
        self.total_departures += 1
        if departure.gen_cycle < self.measure_from:
            return
        self.measured_departures += 1
        conn_id = self._conn_of_vc[(departure.in_port, departure.vc)]
        label = self._labels.get(conn_id, "unlabelled")
        # +1: the flit occupies the crossbar for the cycle it traverses.
        delay = now - departure.gen_cycle + 1
        group = self._group(label)
        group.flit_delay.add(delay)
        group.flits += 1
        self.overall.flit_delay.add(delay)
        self.overall.flits += 1
        if departure.frame_last and departure.frame_id >= 0:
            group.frame_delay.add(delay)
            group.frames += 1
            self.overall.frame_delay.add(delay)
            self.overall.frames += 1
            prev = self._prev_frame_delay.get(conn_id)
            if prev is not None:
                jitter = abs(delay - prev)
                group.jitter.add(jitter)
                self.overall.jitter.add(jitter)
            self._prev_frame_delay[conn_id] = delay

    # ------------------------------------------------------------------
    # Reporting (paper units: microseconds)
    # ------------------------------------------------------------------

    def mean_flit_delay_us(self, label: str | None = None) -> float:
        stat = (self.groups[label] if label else self.overall).flit_delay
        return self.config.cycles_to_us(stat.mean)

    def mean_frame_delay_us(self, label: str | None = None) -> float:
        stat = (self.groups[label] if label else self.overall).frame_delay
        return self.config.cycles_to_us(stat.mean)

    def mean_jitter_us(self, label: str | None = None) -> float:
        stat = (self.groups[label] if label else self.overall).jitter
        return self.config.cycles_to_us(stat.mean)

    def throughput_flits_per_cycle(self, measured_cycles: int) -> float:
        if measured_cycles <= 0:
            raise ValueError("measured_cycles must be positive")
        return self.measured_departures / measured_cycles
