"""Performance harness: cycles/sec baselines for the scheduling hot path.

``python -m repro perf`` measures the simulator's end-to-end cycle rate on
both pipelines — the zero-allocation candidate-buffer hot path and the
object-based reference path — verifies they depart the same flits, breaks
the cycle down per stage, and emits ``BENCH_perf.json`` so CI can fail on
cycles/sec regressions against the committed baseline.
"""

from .harness import (
    PathStats,
    PerfReport,
    SkipStats,
    check_regression,
    profile_fast_path,
    run_perf,
    run_skip_check,
    write_report,
)

__all__ = [
    "PathStats",
    "PerfReport",
    "SkipStats",
    "check_regression",
    "profile_fast_path",
    "run_perf",
    "run_skip_check",
    "write_report",
]
