"""Tests for repro.obs.qos — per-connection QoS guarantee tracking."""

import math

import pytest

from repro.obs.qos import ConnectionQos, QosTracker, bounds_for
from repro.router.config import RouterConfig
from repro.router.connection import Connection, TrafficClass
from repro.router.crossbar import Departure


CONFIG = RouterConfig(num_ports=4, vcs_per_link=16, candidate_levels=4,
                      flit_cycles_per_round=400)


def make_conn(conn_id=0, vc=0, traffic_class=TrafficClass.CBR, avg_slots=10):
    return Connection(
        conn_id=conn_id, in_port=0, vc=vc, out_port=1,
        traffic_class=traffic_class, avg_slots=avg_slots,
        peak_slots=avg_slots,
    )


def dep(vc=0, gen_cycle=0, frame_id=-1, frame_last=False, in_port=0):
    return Departure(in_port=in_port, vc=vc, out_port=1,
                     gen_cycle=gen_cycle, arrival_cycle=gen_cycle,
                     frame_id=frame_id, frame_last=frame_last)


class TestBounds:
    def test_cbr_bounds_follow_reservation(self):
        conn = make_conn(avg_slots=10)
        b = bounds_for(conn, CONFIG)
        interval = math.ceil(CONFIG.round_cycles / 10)
        assert b.service_interval_cycles == interval
        assert b.jitter_bound_cycles == interval
        slack = CONFIG.credit_return_delay + 2
        assert b.deadline_cycles == math.ceil(2.0 * interval) + slack

    def test_deadline_scale(self):
        conn = make_conn(avg_slots=4)
        loose = bounds_for(conn, CONFIG, deadline_scale=3.0)
        tight = bounds_for(conn, CONFIG, deadline_scale=1.0)
        assert loose.deadline_cycles > tight.deadline_cycles
        assert loose.service_interval_cycles == tight.service_interval_cycles

    def test_vbr_gets_bounds(self):
        b = bounds_for(make_conn(traffic_class=TrafficClass.VBR), CONFIG)
        assert b.deadline_cycles is not None

    def test_best_effort_has_no_bounds(self):
        b = bounds_for(
            make_conn(traffic_class=TrafficClass.BEST_EFFORT, avg_slots=1),
            CONFIG,
        )
        assert b.service_interval_cycles is None
        assert b.deadline_cycles is None
        assert b.jitter_bound_cycles is None

    def test_larger_reservation_means_shorter_interval(self):
        small = bounds_for(make_conn(avg_slots=2), CONFIG)
        big = bounds_for(make_conn(avg_slots=40), CONFIG)
        assert big.service_interval_cycles < small.service_interval_cycles


class TestViolations:
    def make_tracker(self, **kwargs):
        return QosTracker(CONFIG, **kwargs)

    def test_on_time_departure_no_violation(self):
        tracker = self.make_tracker()
        state = tracker.register(make_conn(), "cbr-0")
        tracker.on_departure(dep(gen_cycle=100), now=101)
        assert state.flits == 1
        assert state.violations == 0
        assert state.worst_delay == 2  # now - gen + 1

    def test_late_departure_counted_and_timestamped(self):
        tracker = self.make_tracker()
        state = tracker.register(make_conn(), "cbr-0")
        deadline = state.bounds.deadline_cycles
        late_now = deadline + 50
        tracker.on_departure(dep(gen_cycle=0), now=late_now)
        assert state.violations == 1
        assert state.first_violation_cycle == late_now
        assert state.last_violation_cycle == late_now
        assert state.worst_delay == late_now + 1
        tracker.on_departure(dep(gen_cycle=0), now=late_now + 10)
        assert state.violations == 2
        assert state.first_violation_cycle == late_now
        assert state.last_violation_cycle == late_now + 10
        assert tracker.total_violations() == 2

    def test_best_effort_never_violates(self):
        tracker = self.make_tracker()
        state = tracker.register(
            make_conn(traffic_class=TrafficClass.BEST_EFFORT, avg_slots=1),
            "be-0",
        )
        tracker.on_departure(dep(gen_cycle=0), now=10_000)
        assert state.flits == 1
        assert state.violations == 0
        assert state.jitter_violations == 0

    def test_unregistered_vc_ignored(self):
        tracker = self.make_tracker()
        tracker.on_departure(dep(vc=9), now=5)  # no crash, no counting
        assert tracker.total_violations() == 0

    def test_jitter_between_flits(self):
        tracker = self.make_tracker()
        state = tracker.register(make_conn(), "cbr-0")
        bound = state.bounds.jitter_bound_cycles
        # Two flits with identical delay: no jitter.
        tracker.on_departure(dep(gen_cycle=0), now=4)
        tracker.on_departure(dep(gen_cycle=10), now=14)
        assert state.jitter_violations == 0
        # Third flit with delay spread beyond the bound.
        tracker.on_departure(dep(gen_cycle=20), now=20 + 4 + bound + 5)
        assert state.jitter_violations == 1

    def test_jitter_units_are_frames_for_framed_traffic(self):
        tracker = self.make_tracker()
        state = tracker.register(
            make_conn(traffic_class=TrafficClass.VBR), "vbr-0"
        )
        bound = state.bounds.jitter_bound_cycles
        # Mid-frame flits never close a delivery unit.
        tracker.on_departure(dep(gen_cycle=0, frame_id=1), now=3)
        tracker.on_departure(dep(gen_cycle=0, frame_id=1), now=5)
        assert state.units == 0
        tracker.on_departure(
            dep(gen_cycle=0, frame_id=1, frame_last=True), now=8
        )
        assert state.units == 1
        # Next frame lands far outside the bound relative to the last.
        tracker.on_departure(
            dep(gen_cycle=100, frame_id=2, frame_last=True),
            now=100 + 9 + bound + 10,
        )
        assert state.units == 2
        assert state.jitter_violations == 1

    def test_summary_aggregates_by_class(self):
        tracker = self.make_tracker()
        cbr = tracker.register(make_conn(conn_id=0, vc=0), "cbr-0")
        tracker.register(
            make_conn(conn_id=1, vc=1,
                      traffic_class=TrafficClass.BEST_EFFORT, avg_slots=1),
            "be-0",
        )
        late = cbr.bounds.deadline_cycles + 100
        tracker.on_departure(dep(vc=0, gen_cycle=0), now=late)
        tracker.on_departure(dep(vc=1, gen_cycle=0), now=late)
        summary = tracker.summary()
        assert summary["classes"]["cbr"]["violations"] == 1
        assert summary["classes"]["cbr"]["first_violation_cycle"] == late
        assert summary["classes"]["best-effort"]["violations"] == 0
        assert summary["classes"]["best-effort"]["flits"] == 1
        assert len(summary["connections"]) == 2
        record = summary["connections"][0]
        assert record["label"] == "cbr-0"
        assert record["violations"] == 1


class TestBursts:
    def test_burst_fires_once_per_window(self):
        fired = []
        tracker = QosTracker(
            CONFIG, burst_window=100, burst_threshold=3,
            on_burst=lambda now, count: fired.append((now, count)),
        )
        state = tracker.register(make_conn(), "cbr-0")
        deadline = state.bounds.deadline_cycles
        base = deadline + 1_000
        for i in range(6):
            tracker.on_departure(dep(gen_cycle=0), now=base + i)
        # Threshold crossed at the 3rd violation; cooldown swallows the rest.
        assert tracker.bursts == 1
        assert len(fired) == 1
        now, count = fired[0]
        assert now == base + 2
        assert count == 3

    def test_burst_after_cooldown(self):
        fired = []
        tracker = QosTracker(
            CONFIG, burst_window=50, burst_threshold=2,
            on_burst=lambda now, count: fired.append(now),
        )
        state = tracker.register(make_conn(), "cbr-0")
        base = state.bounds.deadline_cycles + 1_000
        for now in (base, base + 1, base + 200, base + 201):
            tracker.on_departure(dep(gen_cycle=0), now=now)
        assert tracker.bursts == 2
        assert fired == [base + 1, base + 201]

    def test_no_burst_when_spread_out(self):
        tracker = QosTracker(CONFIG, burst_window=10, burst_threshold=2)
        state = tracker.register(make_conn(), "cbr-0")
        base = state.bounds.deadline_cycles + 1_000
        for k in range(5):
            tracker.on_departure(dep(gen_cycle=0), now=base + 100 * k)
        assert tracker.bursts == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QosTracker(CONFIG, burst_window=0)
        with pytest.raises(ValueError):
            QosTracker(CONFIG, burst_threshold=0)


class TestConnectionQosDict:
    def test_to_dict_shape(self):
        state = ConnectionQos(
            make_conn(), "cbr-0", bounds_for(make_conn(), CONFIG)
        )
        data = state.to_dict()
        assert data["label"] == "cbr-0"
        assert data["class"] == "cbr"
        assert data["violations"] == 0
        assert data["first_violation_cycle"] is None
