"""Tests for repro.core.link_scheduler (candidate selection)."""

import numpy as np
import pytest

from repro.core.link_scheduler import LinkScheduler
from repro.core.priorities import SIABP, StaticPriority
from repro.router.config import RouterConfig
from repro.router.vc_memory import VCMemory


def make(vcs=8, levels=4, ports=2):
    cfg = RouterConfig(num_ports=ports, vcs_per_link=vcs,
                       candidate_levels=levels, vc_buffer_depth=2)
    return cfg, VCMemory(cfg), LinkScheduler(cfg, SIABP())


def arrays(cfg):
    n, v = cfg.num_ports, cfg.vcs_per_link
    slots = np.zeros((n, v), dtype=np.int64)
    dests = np.full((n, v), -1, dtype=np.int64)
    return slots, dests


class TestSelectPort:
    def test_empty_port_yields_no_candidates(self):
        cfg, mem, sched = make()
        slots, dests = arrays(cfg)
        assert sched.select_port(0, mem.heads(0), slots[0], dests[0], now=5) == []

    def test_ranks_by_biased_priority(self):
        cfg, mem, sched = make()
        slots, dests = arrays(cfg)
        # VC 0: high bandwidth, fresh flit.  VC 1: low bandwidth, ancient.
        slots[0, 0], dests[0, 0] = 100, 1
        slots[0, 1], dests[0, 1] = 1, 0
        mem.push(0, 0, gen_cycle=99, frame_id=-1, frame_last=False, now=99)
        mem.push(0, 1, gen_cycle=0, frame_id=-1, frame_last=False, now=0)
        cands = sched.select_port(0, mem.heads(0), slots[0], dests[0], now=100)
        # SIABP: vc0 -> 100<<1=200; vc1 -> 1<<7=128 (delay 100).
        assert [c.vc for c in cands] == [0, 1]
        assert cands[0].level == 0 and cands[1].level == 1
        assert cands[0].priority == 200.0
        assert cands[0].out_port == 1

    def test_caps_at_candidate_levels(self):
        cfg, mem, sched = make(vcs=8, levels=2)
        slots, dests = arrays(cfg)
        for vc in range(6):
            slots[0, vc], dests[0, vc] = vc + 1, 0
            mem.push(0, vc, 0, -1, False, 0)
        cands = sched.select_port(0, mem.heads(0), slots[0], dests[0], now=10)
        assert len(cands) == 2
        # Highest slots (6, 5) win with equal delays.
        assert [c.vc for c in cands] == [5, 4]

    def test_tie_break_by_vc_index(self):
        cfg, mem, sched = make()
        slots, dests = arrays(cfg)
        for vc in (3, 5):
            slots[0, vc], dests[0, vc] = 10, 0
            mem.push(0, vc, 0, -1, False, 0)
        cands = sched.select_port(0, mem.heads(0), slots[0], dests[0], now=4)
        assert [c.vc for c in cands] == [3, 5]

    def test_only_occupied_vcs_compete(self):
        cfg, mem, sched = make()
        slots, dests = arrays(cfg)
        slots[0, 2], dests[0, 2] = 999, 1  # huge priority but no flit
        slots[0, 4], dests[0, 4] = 1, 0
        mem.push(0, 4, 0, -1, False, 0)
        cands = sched.select_port(0, mem.heads(0), slots[0], dests[0], now=1)
        assert [c.vc for c in cands] == [4]


class TestBatchEquivalence:
    @pytest.mark.parametrize("scheme", [SIABP(), StaticPriority()])
    def test_batch_matches_per_port_randomized(self, scheme):
        cfg, mem, _ = make(vcs=10, levels=4, ports=3)
        sched = LinkScheduler(cfg, scheme)
        slots, dests = arrays(cfg)
        rng = np.random.default_rng(21)
        for port in range(3):
            for vc in range(10):
                slots[port, vc] = int(rng.integers(1, 200))
                dests[port, vc] = int(rng.integers(0, 3))
        now = 0
        for step in range(200):
            now += 1
            p, v = int(rng.integers(3)), int(rng.integers(10))
            if rng.random() < 0.6 and mem.free_space(p, v):
                mem.push(p, v, now - int(rng.integers(5)), -1, False, now)
            elif mem.occupancy_of(p, v):
                mem.pop(p, v)
            per_port = sched.select_all(
                [mem.heads(q) for q in range(3)], slots, dests, now
            )
            batch = sched.select_batch(mem.heads_all(), slots, dests, now)
            assert batch == per_port

    def test_batch_empty_router(self):
        cfg, mem, sched = make(ports=2)
        slots, dests = arrays(cfg)
        assert sched.select_batch(mem.heads_all(), slots, dests, 0) == [[], []]


class TestIntegerKeyExactness:
    """Regression: priorities must never round through float64.

    Historically the selection key was computed in float64, whose 53-bit
    mantissa merges distinct integer priorities above 2**53 — silently
    reordering exactly the high-bandwidth, long-delayed connections the
    biasing exists to protect.
    """

    def _rank_one_port(self, slots_by_vc, delay, scheme=None):
        """Candidates of one port with every listed VC occupied."""
        vcs = len(slots_by_vc)
        cfg = RouterConfig(num_ports=1, vcs_per_link=vcs,
                           candidate_levels=vcs, vc_buffer_depth=2)
        mem = VCMemory(cfg)
        sched = LinkScheduler(cfg, scheme or SIABP())
        now = delay
        for vc in range(vcs):
            mem.push(vc=vc, port=0, gen_cycle=0, frame_id=-1,
                     frame_last=False, now=0)
        slots = np.array([slots_by_vc], dtype=np.int64)
        dests = np.zeros((1, vcs), dtype=np.int64)
        return sched.select_port(0, mem.heads(0), slots[0], dests[0], now)

    def test_large_slots_large_delay_rank_exactly(self):
        """SIABP keys with slots >= 2**14 and delay >= 2**30.

        Ground truth via int.bit_length: key = slots << min(bl(delay),
        40).  The +1 slot must outrank by exactly its shifted margin.
        """
        delay = 2**30
        cands = self._rank_one_port([2**14, 2**14 + 1], delay)
        shift = min(delay.bit_length(), 40)
        assert [c.vc for c in cands] == [1, 0]
        assert cands[0].priority == (2**14 + 1) << shift
        assert cands[1].priority == 2**14 << shift
        assert cands[0].priority - cands[1].priority == 1 << shift

    def test_adjacent_keys_above_2_53_stay_distinct(self):
        """The genuinely-colliding pair: float64 merges these keys."""
        lo, hi = 2**53, 2**53 + 1
        assert float(lo) == float(hi)
        cands = self._rank_one_port([lo, hi], delay=0,
                                    scheme=StaticPriority())
        assert [c.vc for c in cands] == [1, 0]
        assert cands[0].priority == hi
        assert cands[1].priority == lo
        assert cands[0].priority > cands[1].priority

    def test_all_entry_points_agree_at_extreme_priorities(self):
        """select_port / select_all / select_batch under huge keys."""
        cfg = RouterConfig(num_ports=2, vcs_per_link=4,
                           candidate_levels=4, vc_buffer_depth=2)
        mem = VCMemory(cfg)
        sched = LinkScheduler(cfg, StaticPriority())
        slots = np.array([[2**53, 2**53 + 1, 2**53 - 1, 1],
                          [2**61 - 1, 2**61 - 2, 1, 1]], dtype=np.int64)
        dests = np.zeros((2, 4), dtype=np.int64)
        for p in range(2):
            for vc in range(4):
                mem.push(p, vc, 0, -1, False, 0)
        per_port = sched.select_all(
            [mem.heads(p) for p in range(2)], slots, dests, now=1
        )
        batch = sched.select_batch(mem.heads_all(), slots, dests, now=1)
        assert batch == per_port
        assert [c.vc for c in batch[0]] == [1, 0, 2, 3]
        assert [c.vc for c in batch[1]] == [0, 1, 2, 3]

    def test_empty_links_and_extremes_batch_equivalence(self):
        """Mixed empty/occupied links with extreme keys stay equivalent."""
        cfg = RouterConfig(num_ports=3, vcs_per_link=4,
                           candidate_levels=2, vc_buffer_depth=2)
        mem = VCMemory(cfg)
        sched = LinkScheduler(cfg, SIABP())
        slots = np.full((3, 4), 2**14, dtype=np.int64)
        dests = np.zeros((3, 4), dtype=np.int64)
        mem.push(1, 0, 0, -1, False, 0)  # ports 0 and 2 stay empty
        now = 2**31
        per_port = sched.select_all(
            [mem.heads(p) for p in range(3)], slots, dests, now
        )
        batch = sched.select_batch(mem.heads_all(), slots, dests, now)
        assert batch == per_port
        assert batch[0] == [] and batch[2] == []
        assert [c.vc for c in batch[1]] == [0]
        assert batch[1][0].priority == 2**14 << 32
