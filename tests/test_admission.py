"""Tests for repro.router.admission (the paper's CAC rules)."""

import pytest

from repro.router.admission import AdmissionController
from repro.router.config import RouterConfig
from repro.router.connection import Connection, ConnectionTable, TrafficClass


def make_cfg(**kw) -> RouterConfig:
    base = dict(num_ports=2, vcs_per_link=4, candidate_levels=1,
                flit_cycles_per_round=100, concurrency_factor=2.0)
    base.update(kw)
    return RouterConfig(**base)


def conn(conn_id, avg, peak=None, in_port=0, out_port=1, vc=0,
         tclass=TrafficClass.CBR) -> Connection:
    return Connection(conn_id, in_port, vc, out_port, tclass, avg,
                      peak if peak is not None else avg)


class TestCBRRule:
    def test_accepts_up_to_round(self):
        ac = AdmissionController(make_cfg())
        d = ac.check(conn(0, avg=100))
        assert d and "fits" in d.reason

    def test_rejects_beyond_round_input(self):
        ac = AdmissionController(make_cfg())
        ac.commit(conn(0, avg=60))
        decision = ac.check(conn(1, avg=50))
        assert not decision
        assert "input link" in decision.reason

    def test_rejects_beyond_round_output(self):
        ac = AdmissionController(make_cfg())
        # Two different inputs converging on output 1.
        ac.commit(conn(0, avg=60, in_port=0))
        decision = ac.check(conn(1, avg=50, in_port=1))
        assert not decision
        assert "output link" in decision.reason

    def test_exact_fit_accepted(self):
        ac = AdmissionController(make_cfg())
        ac.commit(conn(0, avg=60))
        assert ac.check(conn(1, avg=40, in_port=1, out_port=0))


class TestVBRRule:
    def test_average_and_peak_both_checked(self):
        ac = AdmissionController(make_cfg())  # round=100, concurrency=2
        # avg fits, peak busts the concurrency budget (200).
        ac.commit(conn(0, avg=50, peak=150, tclass=TrafficClass.VBR))
        decision = ac.check(conn(1, avg=40, peak=100, tclass=TrafficClass.VBR))
        assert not decision
        assert "peak" in decision.reason

    def test_concurrency_factor_allows_peak_overbooking(self):
        ac = AdmissionController(make_cfg())
        # Peaks sum to 180 > round 100, allowed by factor 2.
        ac.commit(conn(0, avg=40, peak=90, tclass=TrafficClass.VBR))
        assert ac.check(conn(1, avg=40, peak=90, tclass=TrafficClass.VBR))

    def test_vbr_average_rule_still_applies(self):
        ac = AdmissionController(make_cfg())
        ac.commit(conn(0, avg=80, peak=80, tclass=TrafficClass.VBR))
        decision = ac.check(conn(1, avg=30, peak=30, tclass=TrafficClass.VBR))
        assert not decision
        assert "average" in decision.reason


class TestBestEffort:
    def test_always_admitted(self):
        ac = AdmissionController(make_cfg())
        ac.commit(conn(0, avg=100))  # link fully reserved
        assert ac.check(conn(1, avg=1, tclass=TrafficClass.BEST_EFFORT))

    def test_reserves_nothing(self):
        ac = AdmissionController(make_cfg())
        ac.commit(conn(0, avg=1, tclass=TrafficClass.BEST_EFFORT))
        assert ac.reserved_avg_load(0) == 0.0


class TestAccounting:
    def test_release_restores_budget(self):
        ac = AdmissionController(make_cfg())
        c = conn(0, avg=100)
        ac.commit(c)
        assert not ac.check(conn(1, avg=1))
        ac.release(c)
        assert ac.check(conn(1, avg=100))

    def test_release_vbr_restores_peak(self):
        ac = AdmissionController(make_cfg())
        c = conn(0, avg=50, peak=200, tclass=TrafficClass.VBR)
        ac.commit(c)
        ac.release(c)
        assert ac.check(conn(1, avg=50, peak=200, tclass=TrafficClass.VBR))

    def test_double_release_detected(self):
        ac = AdmissionController(make_cfg())
        c = conn(0, avg=50)
        ac.commit(c)
        ac.release(c)
        with pytest.raises(RuntimeError):
            ac.release(c)

    def test_reserved_load_fractions(self):
        ac = AdmissionController(make_cfg())
        ac.commit(conn(0, avg=25))
        assert ac.reserved_avg_load(0) == pytest.approx(0.25)
        assert ac.reserved_avg_load_out(1) == pytest.approx(0.25)

    def test_headroom(self):
        ac = AdmissionController(make_cfg())
        ac.commit(conn(0, avg=30, in_port=0, out_port=1))
        ac.commit(conn(1, avg=50, in_port=1, out_port=1, vc=1))
        assert ac.headroom(0, 1) == 20  # output is the bottleneck
        assert ac.headroom(1, 0) == 50


class TestAdmitAtomicity:
    def test_admit_registers_and_commits(self):
        cfg = make_cfg()
        ac = AdmissionController(cfg)
        table = ConnectionTable(cfg)
        assert ac.admit(conn(0, avg=60), table)
        assert 0 in table
        assert ac.reserved_avg_load(0) == pytest.approx(0.6)

    def test_admit_rejection_leaves_no_state(self):
        cfg = make_cfg()
        ac = AdmissionController(cfg)
        table = ConnectionTable(cfg)
        ac.admit(conn(0, avg=80), table)
        decision = ac.admit(conn(1, avg=30, vc=1), table)
        assert not decision
        assert 1 not in table
        assert ac.reserved_avg_load(0) == pytest.approx(0.8)

    def test_admit_vc_conflict_raises_before_commit(self):
        cfg = make_cfg()
        ac = AdmissionController(cfg)
        table = ConnectionTable(cfg)
        ac.admit(conn(0, avg=10, vc=2), table)
        with pytest.raises(ValueError):
            ac.admit(conn(1, avg=10, vc=2), table)
        assert ac.reserved_avg_load(0) == pytest.approx(0.1)
