"""Flight recorder: the last moments before something went wrong.

Post-mortem debugging of a watchdog trip or a QoS violation burst needs
the *history leading up to it*, which end-of-run aggregates discard and
an unbounded trace cannot afford.  :class:`FlightRecorder` keeps a
bounded ring of the most recent departure activity — cheap enough to stay
always-on — and, when triggered, renders it together with the full
``dump_router_state`` buffer/credit snapshot into a diagnostic dump.

Triggers are wired by :class:`~repro.obs.export.TelemetrySession`:

* the faults watchdog's ``on_trip`` hook (conservation / livelock), and
* the QoS tracker's ``on_burst`` hook (deadline-violation burst).

Each trigger produces one :class:`FlightDump`; the session keeps them all
(trips are rare by construction — the burst detector has a cooldown).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..router.crossbar import Departure
    from ..router.router import MMRouter

__all__ = ["FlightDump", "FlightRecorder"]


@dataclass(frozen=True)
class FlightDump:
    """One rendered trigger: reason, cycle, event tail, state snapshot."""

    cycle: int
    reason: str
    detail: str
    events: str
    router_state: str

    def render(self) -> str:
        parts = [
            f"=== flight dump: {self.reason} at cycle {self.cycle} ===",
        ]
        if self.detail:
            parts.append(self.detail)
        parts.append("--- recent departures (oldest first) ---")
        parts.append(self.events if self.events else "(none recorded)")
        parts.append("--- router state ---")
        parts.append(self.router_state)
        return "\n".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "cycle": self.cycle,
            "reason": self.reason,
            "detail": self.detail,
            "events": self.events,
            "router_state": self.router_state,
        }


class FlightRecorder:
    """Bounded ring of recent departure activity, dumped on trigger.

    ``capacity`` bounds the number of *active* cycles retained (cycles
    with at least one departure); idle cycles carry no information and
    are not stored, so the ring reaches further back in real time.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        # (cycle, departures) — Departure objects are frozen and rebuilt
        # each cycle, so holding references is safe.
        self._ring: deque[tuple[int, tuple["Departure", ...]]] = deque(
            maxlen=capacity
        )
        self.dumps: list[FlightDump] = []

    # ------------------------------------------------------------------

    def on_cycle(self, now: int, departures: list["Departure"]) -> None:
        """Append this cycle's departures (hot path; skip empty cycles)."""
        if departures:
            self._ring.append((now, tuple(departures)))

    def __len__(self) -> int:
        return len(self._ring)

    def render_events(self) -> str:
        """Human-readable tail of the ring, oldest first."""
        lines = []
        for cycle, deps in self._ring:
            for d in deps:
                frame = f" frame={d.frame_id}" if d.frame_id >= 0 else ""
                last = " last" if d.frame_last else ""
                lines.append(
                    f"[{cycle:>8}] depart in={d.in_port} vc={d.vc} "
                    f"out={d.out_port} gen={d.gen_cycle} "
                    f"arrived={d.arrival_cycle}{frame}{last}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------

    def trigger(
        self, router: "MMRouter", now: int, reason: str, detail: str = ""
    ) -> FlightDump:
        """Snapshot the ring + router state into a :class:`FlightDump`."""
        # Imported here, not at module level: repro.sim.metrics imports
        # repro.obs, so a module-level repro.sim import would be circular.
        from ..sim.tracing import dump_router_state

        dump = FlightDump(
            cycle=now,
            reason=reason,
            detail=detail,
            events=self.render_events(),
            router_state=dump_router_state(router, now),
        )
        self.dumps.append(dump)
        return dump

    def to_payload(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "active_cycles_retained": len(self._ring),
            "dumps": [d.to_dict() for d in self.dumps],
        }
