"""Blocking-probability experiments: churn sweeps over the campaign executor.

The Erlang-style figure class: sweep the offered session load (arrival
rate × holding time) across a set of CAC policies, run every point
through :func:`repro.campaign.run_campaign` (content-addressed caching,
optional worker pool), and reduce each point's session payload to a
:class:`~repro.analysis.blocking.BlockingPoint`.

Imported lazily by ``repro.sessions`` users (this module pulls in
``repro.campaign``).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..analysis.blocking import BlockingPoint, erlang_b, kaufman_roberts_aggregate
from ..campaign.executor import CampaignResult, run_campaign
from ..campaign.plan import CampaignPlan, PointSpec, WorkloadSpec
from ..campaign.store import ResultStore
from ..router.config import RouterConfig
from ..sim.engine import RunControl
from .churn import CBR_CLASSES, ChurnConfig
from .signaling import SessionsSpec, SignalingConfig

__all__ = ["blocking_sweep_plan", "run_blocking_sweep", "reduce_blocking"]

#: Demo churn base: a single-class CBR mix (55 Mb/s streams), so the
#: measured curve has a clean Erlang-B reference — each session is one
#: "circuit" of ``round_cycles // avg_slots`` per link.
DEMO_CHURN = ChurnConfig(
    arrivals_per_kcycle=3.0,
    mean_hold_cycles=3_000.0,
    mix=(("cbr-high", 1.0),),
)


def blocking_sweep_plan(
    name: str,
    config: RouterConfig,
    arrival_rates: Sequence[float],
    policies: Sequence[str],
    *,
    base_churn: ChurnConfig = DEMO_CHURN,
    signaling: SignalingConfig = SignalingConfig(),
    control: RunControl = RunControl(cycles=15_000, warmup_cycles=0),
    background_load: float = 0.1,
    seed: int = 0,
    arbiter: str = "coa",
    scheme: str = "siabp",
) -> CampaignPlan:
    """Policy × arrival-rate grid over a fixed static background load."""
    if not arrival_rates or not policies:
        raise ValueError("need at least one arrival rate and one policy")
    points = tuple(
        PointSpec(
            config=config,
            arbiter=arbiter,
            scheme=scheme,
            target_load=background_load,
            seed=seed,
            workload=WorkloadSpec.cbr(),
            cycles=control.cycles,
            warmup_cycles=control.warmup_cycles,
            sessions=SessionsSpec(
                churn=dataclasses.replace(
                    base_churn, arrivals_per_kcycle=float(rate)
                ),
                policy=policy,
                signaling=signaling,
            ),
        )
        for policy in policies
        for rate in arrival_rates
    )
    return CampaignPlan(name=name, points=points)


def _erlang_reference(
    config: RouterConfig, churn: ChurnConfig, offered_erlangs: float
) -> float:
    """Erlang-B for a single-CBR-class mix; NaN when ill-defined.

    Approximates each input link as ``round_cycles // avg_slots``
    circuits (capped by the VC count) fed ``offered / num_ports``
    erlangs — output-link contention and the static background are
    ignored, so it is a reference curve, not a prediction.
    """
    active = [name for name, w in churn.mix if w > 0]
    if len(active) != 1 or not active[0].startswith("cbr-"):
        return float("nan")
    rate_bps = CBR_CLASSES[active[0].removeprefix("cbr-")].rate_bps
    slots = config.rate_to_slots(rate_bps)
    servers = min(config.vcs_per_link, config.round_cycles // slots)
    return erlang_b(offered_erlangs / config.num_ports, int(servers))


def _kaufman_roberts_reference(
    config: RouterConfig, churn: ChurnConfig, offered_erlangs: float
) -> float:
    """Kaufman–Roberts aggregate blocking for a pure-CBR mix; NaN otherwise.

    The multi-rate counterpart of :func:`_erlang_reference`: each CBR
    class reserves ``rate_to_slots(rate)`` of the ``round_cycles`` slot
    capacity of one input link, and the per-link offered load splits
    across classes by mix weight.  Defined for *any* pure-CBR mix,
    including multi-class ones where Erlang-B has no single circuit
    size; VBR/BE classes have no deterministic slot demand, so mixes
    containing them return NaN.
    """
    active = [(name, w) for name, w in churn.mix if w > 0]
    if not active or not all(name.startswith("cbr-") for name, _ in active):
        return float("nan")
    total_w = sum(w for _, w in active)
    per_link = offered_erlangs / config.num_ports
    classes = []
    for name, w in active:
        rate_bps = CBR_CLASSES[name.removeprefix("cbr-")].rate_bps
        slots = int(config.rate_to_slots(rate_bps))
        classes.append((per_link * w / total_w, slots))
    return kaufman_roberts_aggregate(config.round_cycles, classes)


def reduce_blocking(result: CampaignResult) -> list[BlockingPoint]:
    """One :class:`BlockingPoint` per campaign outcome."""
    points = []
    for outcome in result.outcomes:
        payload = outcome.sessions
        spec = outcome.spec.sessions
        if payload is None or spec is None:
            raise ValueError(
                f"outcome {outcome.spec.describe()} has no session payload"
            )
        offered_erl = float(payload["offered_erlangs"])
        points.append(
            BlockingPoint(
                policy=spec.policy,
                offered_erlangs=offered_erl,
                offered_sessions=int(payload["offered"]),
                blocked_sessions=int(payload["blocked"]),
                erlang_b_reference=_erlang_reference(
                    outcome.spec.config, spec.churn, offered_erl
                ),
                kaufman_roberts_reference=_kaufman_roberts_reference(
                    outcome.spec.config, spec.churn, offered_erl
                ),
            )
        )
    return points


def run_blocking_sweep(
    plan: CampaignPlan,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    progress=None,
) -> tuple[CampaignResult, list[BlockingPoint]]:
    """Execute a blocking sweep and reduce it to plot-ready points."""
    result = run_campaign(plan, jobs=jobs, store=store, progress=progress)
    return result, reduce_blocking(result)
