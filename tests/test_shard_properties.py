"""Property tests: shard identity and flit conservation under random churn.

Hypothesis drives the shard subsystem across random seeds, worker
counts, arrival rates, and barrier window caps.  Two invariants:

* **identity** — the sharded run equals the serial reference byte for
  byte, whatever the execution layout;
* **conservation** — every injected flit is accounted for exactly once
  across the merged counters: delivered + lost + backlog (owned-buffer
  residue plus flits still crossing a boundary at the final barrier).
"""

from hypothesis import given, settings, strategies as st

from repro.fabric.spec import FabricSpec, TopologySpec
from repro.router.config import RouterConfig
from repro.sessions.churn import ChurnConfig
from repro.shard import ShardSpec, ShardedFabricSim, check_identity

CONFIG = RouterConfig(num_ports=6, vcs_per_link=8, vc_buffer_depth=2,
                      candidate_levels=4, flit_cycles_per_round=800)


def make_fabric(rate):
    return FabricSpec(
        topology=TopologySpec.torus(3, 3),
        churn=ChurnConfig(arrivals_per_kcycle=rate,
                          mean_hold_cycles=200.0,
                          mix=(("cbr-high", 1.0),)),
        sample_stride=100,
        rng_mode="per-router",
    )


@given(
    seed=st.integers(0, 2**31 - 1),
    workers=st.integers(1, 4),
    rate=st.floats(0.0, 12.0),
    max_window=st.sampled_from([0, 1, 7]),
)
@settings(max_examples=12, deadline=None)
def test_sharded_run_identical_to_serial(seed, workers, rate, max_window):
    report = check_identity(
        make_fabric(rate), CONFIG, seed=seed, cycles=150,
        shard=ShardSpec(workers=workers, max_window=max_window),
    )
    assert report.ok, "\n".join(report.mismatches)


@given(
    seed=st.integers(0, 2**31 - 1),
    workers=st.integers(2, 4),
    rate=st.floats(1.0, 10.0),
)
@settings(max_examples=12, deadline=None)
def test_boundary_crossings_conserve_flits(seed, workers, rate):
    sim = ShardedFabricSim(
        make_fabric(rate), CONFIG, seed=seed,
        shard=ShardSpec(workers=workers), inline=True,
    )
    result = sim.run(0.0, 200)
    net = sim.payload["network"]
    injected = net["static_injected"] + net["dynamic_injected"]
    out = result.to_dict()
    delivered = out["flits"]["overall"]
    assert delivered == net["delivered"]
    # Exactly-once accounting across all shards and in-transit flits.
    assert injected == delivered + net["lost_flits"] + out["backlog"]
    # Every boundary credit answers a boundary flit that crossed the
    # other way and later departed, so credits can never outrun flits.
    assert sim.windows >= 1
    assert 0 <= sim.crossing_credits <= sim.crossing_flits
