"""Sharded fabric coordinator: cycle barriers, boundary exchange, merge.

:class:`ShardedFabricSim` partitions a fabric's routers into per-worker
groups, runs one :class:`~repro.shard.runtime.ShardRuntime` replica per
group (in-process with ``inline=True``, otherwise in worker processes),
and drives them through **cycle barriers**:

1. collect each worker's barrier payload — flushed boundary flits and
   credits, drain-candidate verdicts, idle flag, next local event;
2. merge: sort boundary traffic canonically and route each record to the
   worker owning its destination router; AND the drain verdicts into a
   global oracle (a connection is drained only when *every* shard says
   its share is empty);
3. plan the next window: one cycle whenever any shard holds traffic or a
   boundary flit is in flight (a crossing must land before the next
   cycle runs), else jump to the earliest event any replica reports —
   bounded by ``ShardSpec.max_window`` when set;
4. command every worker to run the window, and repeat.

Identity contract: the merged result is byte-identical to the serial
single-process reference (``FabricSim`` with ``rng_mode="per-router"``)
— ``SimResult.to_dict()``, the sessions payload, the per-router arbiter
stream fingerprints, and the replica stream fingerprints all match
exactly, for every worker count, partitioner, and window cap.
:func:`check_identity` asserts exactly that.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..fabric.engine import FabricSim
from ..fabric.spec import FabricSpec
from ..network.multirouter import merge_delay_parts
from ..router.config import RouterConfig
from ..sim.simulation import SimResult
from .partition import partition_routers
from .runtime import ShardRuntime, ShardTask
from .spec import ShardSpec
from .worker import worker_main

if TYPE_CHECKING:
    from ..campaign.plan import PointSpec

__all__ = [
    "ShardError",
    "ShardWorkerError",
    "ShardedFabricSim",
    "IdentityReport",
    "check_identity",
    "execute_shard_point",
]


class ShardError(RuntimeError):
    """Sharded-execution protocol violation or replica divergence."""


class ShardWorkerError(ShardError):
    """A shard worker died, raised, or stopped responding."""


# ----------------------------------------------------------------------
# Backends: same barrier protocol, two transports
# ----------------------------------------------------------------------


class _InlineBackend:
    """All replicas in this process — tests and the workers=1 fallback."""

    def __init__(self, task: ShardTask, parts, timeout_s: float) -> None:
        self.runtimes = [
            ShardRuntime(task, part, rank) for rank, part in enumerate(parts)
        ]

    def start(self) -> list[dict]:
        return [rt.barrier_payload() for rt in self.runtimes]

    def window(self, start, end, imports, oracle) -> list[dict]:
        out = []
        for rt, (flits, credits) in zip(self.runtimes, imports):
            rt.apply_barrier(flits, credits, oracle)
            rt.run_window(start, end)
            out.append(rt.barrier_payload())
        return out

    def drain(self, start, end, imports) -> list[dict]:
        out = []
        for rt, (flits, credits) in zip(self.runtimes, imports):
            rt.apply_barrier(flits, credits, {})
            rt.run_drain_window(start, end)
            out.append(rt.barrier_payload())
        return out

    def finish(self) -> list[dict]:
        return [rt.final_stats() for rt in self.runtimes]

    def stop(self) -> None:
        pass


class _ProcessBackend:
    """One OS process per replica, a duplex pipe to each.

    Pipes, not queues: ``multiprocessing.Queue`` routes every message
    through a feeder thread, which adds a wake-up latency per hop that
    dominates barrier-heavy runs (busy traffic means thousands of
    length-1 windows).  A ``Pipe`` sends from the calling thread
    directly, and :func:`multiprocessing.connection.wait` gives the
    coordinator a select-style collect with liveness timeouts intact.
    """

    def __init__(self, task: ShardTask, parts, timeout_s: float) -> None:
        self.timeout_s = timeout_s
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.conns = []
        self.procs = []
        for rank, part in enumerate(parts):
            local, remote = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=worker_main,
                args=(task, part, rank, remote),
                daemon=False,
                name=f"repro-shard-{rank}",
            )
            proc.start()
            remote.close()  # the worker holds the other end now
            self.conns.append(local)
            self.procs.append(proc)

    def _check_liveness(self) -> None:
        for rank, proc in enumerate(self.procs):
            if not proc.is_alive():
                raise ShardWorkerError(
                    f"shard worker {rank} died mid-run "
                    f"(exitcode {proc.exitcode})"
                )

    def _collect(self, expect: str) -> list[dict]:
        payloads: list[dict | None] = [None] * len(self.procs)
        pending = dict(enumerate(self.conns))
        deadline = time.monotonic() + self.timeout_s
        while pending:
            ready = multiprocessing.connection.wait(
                list(pending.values()), timeout=0.25
            )
            if not ready:
                self._check_liveness()
                if time.monotonic() > deadline:
                    raise ShardWorkerError(
                        f"shard barrier timed out after {self.timeout_s:.0f}s "
                        f"({len(self.procs) - len(pending)}/{len(self.procs)} "
                        f"workers reported)"
                    )
                continue
            for conn in ready:
                try:
                    kind, rank, body = conn.recv()
                except (EOFError, OSError):
                    self._check_liveness()
                    raise ShardWorkerError(
                        "shard worker closed its pipe without reporting"
                    )
                if kind == "error":
                    raise ShardWorkerError(
                        f"shard worker {rank} raised:\n{body}"
                    )
                if kind != expect or payloads[rank] is not None:
                    raise ShardWorkerError(
                        f"shard protocol violation: got {kind!r} from worker "
                        f"{rank}, expected {expect!r}"
                    )
                payloads[rank] = body
                del pending[rank]
        return payloads  # type: ignore[return-value]

    def _broadcast(self, messages) -> None:
        for rank, (conn, msg) in enumerate(zip(self.conns, messages)):
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                raise ShardWorkerError(
                    f"shard worker {rank} is gone (broken pipe)"
                )

    def start(self) -> list[dict]:
        return self._collect("barrier")

    def window(self, start, end, imports, oracle) -> list[dict]:
        self._broadcast(
            [
                ("window", start, end, flits, credits, oracle)
                for flits, credits in imports
            ]
        )
        return self._collect("barrier")

    def drain(self, start, end, imports) -> list[dict]:
        self._broadcast(
            [("drain", start, end, flits, credits) for flits, credits in imports]
        )
        return self._collect("barrier")

    def finish(self) -> list[dict]:
        self._broadcast([("finish",)] * len(self.procs))
        return self._collect("result")

    def stop(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("stop",))
            except Exception:  # pragma: no cover - pipe torn down
                pass
        for proc in self.procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self.conns:
            conn.close()


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------


class ShardedFabricSim:
    """Shared-nothing parallel twin of :class:`~repro.fabric.engine.
    FabricSim` — same spec in, byte-identical result out."""

    def __init__(
        self,
        fabric: FabricSpec,
        config: RouterConfig,
        arbiter: str = "coa",
        scheme: str = "siabp",
        seed: int = 0,
        shard: ShardSpec | None = None,
        inline: bool = False,
        barrier_timeout_s: float = 60.0,
    ) -> None:
        if fabric.rng_mode != "per-router":
            raise ValueError(
                "sharded execution needs rng_mode='per-router' (the shared "
                "arbiter stream cannot be split across workers)"
            )
        self.fabric = fabric
        self.config = config
        self.arbiter = arbiter
        self.scheme = scheme
        self.seed = seed
        self.shard = shard if shard is not None else ShardSpec()
        self.inline = inline
        self.barrier_timeout_s = barrier_timeout_s
        self.parts = partition_routers(
            fabric.topology, self.shard.workers, self.shard.partitioner
        )
        self.topology = fabric.topology.build()
        self.owner: dict[int, int] = {}
        for rank, part in enumerate(self.parts):
            for rid in part:
                self.owner[rid] = rank
        #: Filled by :meth:`run`.
        self.payload: dict[str, Any] | None = None
        self.router_fps: dict[str, str] = {}
        self.streams_fp: str | None = None
        self.crossing_flits = 0
        self.crossing_credits = 0
        self.windows = 0
        self.skipped_cycles = 0

    # -- barrier bookkeeping --------------------------------------------

    def _route(self, payloads: list[dict], now: int):
        """Sort boundary traffic canonically and route it by ownership."""
        flits = sorted(f for p in payloads for f in p["flits"])
        credits = sorted(c for p in payloads for c in p["credits"])
        for f in flits:
            if f[0] != now:
                raise ShardError(
                    f"boundary flit arrives at cycle {f[0]}, barrier is at "
                    f"{now} — a crossing escaped its window"
                )
        for c in credits:
            if c[0] < now:
                raise ShardError(
                    f"boundary credit lands at past cycle {c[0]} (now {now})"
                )
        imports: list[tuple[list, list]] = [
            ([], []) for _ in range(len(self.parts))
        ]
        for f in flits:
            imports[self.owner[f[1]]][0].append(f)
        for c in credits:
            imports[self.owner[c[1]]][1].append(c)
        oracle: dict[int, bool] = {}
        for p in payloads:
            for cid, empty in p["digest"].items():
                oracle[cid] = oracle.get(cid, True) and empty
        self.crossing_flits += len(flits)
        self.crossing_credits += len(credits)
        return imports, oracle, flits

    def _plan_window(
        self, now: int, horizon: int, payloads: list[dict], crossing: bool
    ) -> int:
        """Next barrier cycle: 1-cycle windows while traffic exists,
        straight to the earliest global event otherwise."""
        if crossing or any(not p["idle"] for p in payloads):
            end = now + 1
        else:
            end = max(now + 1, min(p["next_event"] for p in payloads))
        if self.shard.max_window:
            end = min(end, now + self.shard.max_window)
        return min(end, horizon)

    # -- the run --------------------------------------------------------

    def run(self, target_load: float, cycles: int) -> SimResult:
        task = ShardTask(
            fabric=self.fabric,
            config=self.config,
            arbiter=self.arbiter,
            scheme=self.scheme,
            seed=self.seed,
            target_load=target_load,
            cycles=cycles,
        )
        backend_cls = _InlineBackend if self.inline else _ProcessBackend
        backend = backend_cls(task, self.parts, self.barrier_timeout_s)
        try:
            payloads = backend.start()
            now = 0
            while now < cycles:
                imports, oracle, flits = self._route(payloads, now)
                end = self._plan_window(now, cycles, payloads, bool(flits))
                payloads = backend.window(now, end, imports, oracle)
                self.windows += 1
                now = end
            in_transit: list = []
            if self.fabric.drain:
                horizon = cycles * 3
                while now < horizon:
                    imports, _oracle, flits = self._route(payloads, now)
                    buffered = sum(p["buffered"] for p in payloads)
                    if buffered + len(flits) == 0:
                        break
                    payloads = backend.drain(now, now + 1, imports)
                    self.windows += 1
                    now += 1
            # Crossings flushed at the final barrier were never
            # re-delivered: they are still "in the network" and count
            # toward the residue exactly as serial in-flight flits do.
            in_transit = [f for p in payloads for f in p["flits"]]
            stats = backend.finish()
        finally:
            backend.stop()
        return self._merge(stats, in_transit, target_load, cycles)

    # -- merging --------------------------------------------------------

    def _merge(
        self,
        stats: list[dict],
        in_transit: list,
        target_load: float,
        cycles: int,
    ) -> SimResult:
        fps = {s["streams_fingerprint"] for s in stats}
        if len(fps) != 1:
            raise ShardError(
                "replica divergence: control-plane RNG stream fingerprints "
                "differ across workers"
            )
        self.streams_fp = next(iter(fps))
        rank0 = stats[0]
        delivered = sum(s["delivered"] for s in stats)
        lost = sum(s["lost_flits"] for s in stats)
        backlog = sum(s["buffered"] for s in stats) + len(in_transit)
        self.skipped_cycles = min(s["skipped_cycles"] for s in stats)
        parts = sorted(
            part for s in stats for part in s["delay_parts"]
        )  # ascending router id: the serial fold order
        n, total, mx = merge_delay_parts([p[1:] for p in parts])
        self.router_fps = {}
        for s in stats:
            self.router_fps.update(s["router_fingerprints"])

        payload = rank0["payload"]
        payload["network"] = {
            "static_injected": rank0["static_injected"],
            "dynamic_injected": rank0["dynamic_injected"],
            "delivered": delivered,
            "lost_flits": lost,
            "residue": backlog,
            "released_connections": rank0["released_connections"],
            "dropped_connections": rank0["dropped_connections"],
            "delay_mean_cycles": total / n if n else None,
            "delay_max_cycles": mx if n else None,
        }
        self.payload = payload

        topo = self.topology
        ports = sum(
            self.config.num_ports - topo.degree(r)
            for r in range(topo.num_routers)
        )
        injected = rank0["static_injected"] + rank0["dynamic_injected"]
        denom = cycles * ports
        nan = float("nan")
        delay_us = self.config.cycles_to_us(total / n) if n else nan
        fault: dict[str, int] = {}
        for key, value in (
            ("lost_flits", lost),
            ("dropped_connections", rank0["dropped_connections"]),
            ("rerouted", rank0["rerouted"]),
        ):
            if value:
                fault[key] = value
        return SimResult(
            config=self.config,
            arbiter=self.arbiter,
            scheme=self.scheme,
            seed=self.seed,
            cycles=cycles,
            warmup_cycles=0,
            offered_load=injected / denom if denom else nan,
            utilization=nan,
            throughput=delivered / denom if denom else nan,
            flit_delay_us={"overall": delay_us},
            flit_delay_p99_us={},
            frame_delay_us={},
            jitter_us={},
            flits={"overall": delivered},
            frames={},
            backlog=backlog,
            connections=rank0["connections"],
            fault=fault,
        )


# ----------------------------------------------------------------------
# Identity gate
# ----------------------------------------------------------------------


@dataclass
class IdentityReport:
    """Outcome of one sharded-vs-serial byte-identity check."""

    workers: int
    partitioner: str
    max_window: int
    cycles: int
    mismatches: list[str] = field(default_factory=list)
    crossing_flits: int = 0
    crossing_credits: int = 0
    windows: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches


def check_identity(
    fabric: FabricSpec,
    config: RouterConfig,
    *,
    arbiter: str = "coa",
    scheme: str = "siabp",
    seed: int = 0,
    target_load: float = 0.0,
    cycles: int = 400,
    shard: ShardSpec | None = None,
    inline: bool = True,
    barrier_timeout_s: float = 60.0,
) -> IdentityReport:
    """Run serial reference and sharded twin; compare every byte.

    Compares ``SimResult.to_dict()``, the sessions payload, the
    per-router arbiter stream fingerprints, and the replicated control
    stream fingerprint.  Any difference is recorded as a mismatch
    string; an empty list is a pass.
    """
    shard = shard if shard is not None else ShardSpec()
    report = IdentityReport(
        workers=shard.workers,
        partitioner=shard.partitioner,
        max_window=shard.max_window,
        cycles=cycles,
    )
    ref = FabricSim(fabric, config, arbiter=arbiter, scheme=scheme, seed=seed)
    ref_result = ref.run(target_load, cycles)
    ref_payload = ref.engine.to_payload()

    sharded = ShardedFabricSim(
        fabric,
        config,
        arbiter=arbiter,
        scheme=scheme,
        seed=seed,
        shard=shard,
        inline=inline,
        barrier_timeout_s=barrier_timeout_s,
    )
    sh_result = sharded.run(target_load, cycles)
    report.crossing_flits = sharded.crossing_flits
    report.crossing_credits = sharded.crossing_credits
    report.windows = sharded.windows

    if sh_result.to_dict() != ref_result.to_dict():
        report.mismatches.append("SimResult.to_dict() differs")
    if sharded.payload != ref_payload:
        report.mismatches.append("sessions payload differs")
    if sharded.router_fps != ref.router_fingerprints():
        report.mismatches.append("per-router RNG fingerprints differ")
    if sharded.streams_fp != ref.fingerprint():
        report.mismatches.append("control-plane stream fingerprint differs")
    return report


# ----------------------------------------------------------------------
# Campaign entry point
# ----------------------------------------------------------------------


def execute_shard_point(spec: "PointSpec") -> tuple[SimResult, dict[str, Any]]:
    """Run one sharded fabric campaign point.

    The shard dimension is execution-only (hash-transparent): the
    returned result and payload are byte-identical to what
    :func:`~repro.fabric.engine.execute_fabric_point` produces for the
    same spec without the shard field, so cached artifacts cross-serve
    between serial and sharded runs.
    """
    if spec.fabric is None or spec.shard is None:
        raise ValueError("execute_shard_point needs fabric and shard set")
    sim = ShardedFabricSim(
        spec.fabric,
        spec.config,
        arbiter=spec.arbiter,
        scheme=spec.scheme,
        seed=spec.seed,
        shard=spec.shard,
    )
    result = sim.run(spec.target_load, spec.cycles)
    return result, sim.payload
