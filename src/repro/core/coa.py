"""The Candidate-Order Arbiter (COA) — the paper's contribution.

COA computes the crossbar matching from the selection matrix in three
repeated steps (paper §4):

1. **Conflict vector** — count the competing requests per (level, output)
   row.
2. **Port ordering** — pick the next output to serve: lowest candidate
   level first, and within a level the output with the *fewest* conflicts
   first.  Ties are broken randomly.  Rationale: heavily-conflicted
   outputs can wait because they will still have matching opportunities
   after other ports are served, while a lightly-conflicted output may
   lose its only requester to another output's grant.
3. **Arbitration** — among the requests for the selected output, grant the
   one with the highest biased priority; then drop every request involving
   the matched input and output and recompute.

The loop ends when no requests remain, yielding a conflict-free — and, as
the property tests verify, maximal — matching that honours connection
priorities, unlike pure matching-size maximizers such as the Wave Front
Arbiter.

For the ablation benches (DESIGN.md A1) the two decision rules are
pluggable: ``ordering`` picks the port-ordering key and ``arbitration``
the per-output grant rule.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .matching import Arbiter, Candidate, Grant
from .selection import SelectionMatrix

__all__ = ["CandidateOrderArbiter"]

_ORDERINGS = ("level_conflict", "level_only", "conflict_only", "random")
_ARBITRATIONS = ("priority", "random")


class CandidateOrderArbiter(Arbiter):
    """Priority-aware crossbar arbiter driven by the selection matrix."""

    name = "coa"

    def __init__(
        self,
        num_ports: int,
        levels: int,
        ordering: str = "level_conflict",
        arbitration: str = "priority",
    ) -> None:
        if ordering not in _ORDERINGS:
            raise ValueError(f"ordering must be one of {_ORDERINGS}, got {ordering!r}")
        if arbitration not in _ARBITRATIONS:
            raise ValueError(
                f"arbitration must be one of {_ARBITRATIONS}, got {arbitration!r}"
            )
        self.num_ports = num_ports
        self.levels = levels
        self.ordering = ordering
        self.arbitration = arbitration
        if ordering != "level_conflict" or arbitration != "priority":
            self.name = f"coa[{ordering}/{arbitration}]"

    # ------------------------------------------------------------------

    def match(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Fast pure-Python matching loop.

        Semantically identical to :meth:`match_reference` (the test suite
        checks they agree draw for draw); rebuilt without the numpy
        selection matrix because at router sizes (N=4, C=4) per-call
        numpy overhead dominates the whole simulation.
        """
        n = self.num_ports
        # rows[level * n + out] -> list of (priority, in_port, vc)
        rows: list[list[tuple[float, int, int]]] = [
            [] for _ in range(self.levels * n)
        ]
        for port_cands in candidates:
            for cand in port_cands:
                rows[cand.level * n + cand.out_port].append(
                    (cand.priority, cand.in_port, cand.vc)
                )
        in_free = [True] * n
        out_free = [True] * n
        grants: list[Grant] = []
        ordering = self.ordering
        by_priority = self.arbitration == "priority"

        while True:
            # Live rows: requests whose input and output are both free.
            live: list[tuple[int, int]] = []  # (row_index, conflict_count)
            for idx, row in enumerate(rows):
                if not row or not out_free[idx % n]:
                    continue
                count = 0
                for _prio, in_port, _vc in row:
                    if in_free[in_port]:
                        count += 1
                if count:
                    live.append((idx, count))
            if not live:
                break

            row_idx = self._pick_row(live, rng, ordering, n)
            requests = [
                (prio, in_port, vc)
                for prio, in_port, vc in rows[row_idx]
                if in_free[in_port]
            ]
            if by_priority:
                best = max(prio for prio, _i, _v in requests)
                winners = [(i, v) for prio, i, v in requests if prio == best]
                if len(winners) == 1:
                    in_port, vc = winners[0]
                else:
                    in_port, vc = winners[int(rng.integers(len(winners)))]
            else:
                _prio, in_port, vc = requests[int(rng.integers(len(requests)))]
            out_port = row_idx % n
            grants.append((in_port, vc, out_port))
            in_free[in_port] = False
            out_free[out_port] = False
        return grants

    @staticmethod
    def _pick_row(
        live: list[tuple[int, int]],
        rng: np.random.Generator,
        ordering: str,
        n: int,
    ) -> int:
        """Port ordering over the live rows; mirrors `_next_output`."""
        if ordering == "random":
            return live[int(rng.integers(len(live)))][0]
        min_level = min(idx // n for idx, _c in live)
        if ordering == "level_only":
            pool = [idx for idx, _c in live if idx // n == min_level]
            return pool[int(rng.integers(len(pool)))]
        if ordering == "conflict_only":
            pool = live
        else:  # "level_conflict" — the paper's rule
            pool = [(idx, c) for idx, c in live if idx // n == min_level]
        min_conf = min(c for _idx, c in pool)
        least = [idx for idx, c in pool if c == min_conf]
        if len(least) == 1:
            return least[0]
        return least[int(rng.integers(len(least)))]

    def match_reference(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Reference implementation over the explicit selection matrix.

        Follows the paper's description literally (build matrix, compute
        conflict vector, order, arbitrate, drop, recompute); used by the
        equivalence tests and the Fig. 3 demo.
        """
        matrix = SelectionMatrix.from_candidates(
            candidates, self.num_ports, self.levels
        )
        grants: list[Grant] = []
        while matrix.has_requests():
            level, out_port = self._next_output(matrix, rng)
            in_port, vc = self._grant(matrix, level, out_port, rng)
            grants.append((in_port, vc, out_port))
            matrix.drop_input(in_port)
            matrix.drop_output(out_port)
        return grants

    # ------------------------------------------------------------------

    def _next_output(
        self, matrix: SelectionMatrix, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Port ordering: choose the next (level, output) row to serve."""
        conflicts = matrix.conflict_vector()
        active = np.flatnonzero(conflicts > 0)
        n = self.num_ports
        if self.ordering == "random":
            row = int(active[int(rng.integers(active.size))])
            return row // n, row % n

        levels = active // n
        if self.ordering == "level_only":
            # Lowest level; random among that level's active outputs.
            lowest = active[levels == levels.min()]
            row = int(lowest[int(rng.integers(lowest.size))])
            return row // n, row % n

        if self.ordering == "conflict_only":
            pool = active
        else:  # "level_conflict" — the paper's rule
            pool = active[levels == levels.min()]

        # Fewest conflicts first; random tie-break.
        pool_conflicts = conflicts[pool]
        least = pool[pool_conflicts == pool_conflicts.min()]
        row = int(least[0]) if least.size == 1 else int(least[int(rng.integers(least.size))])
        return row // n, row % n

    def _grant(
        self,
        matrix: SelectionMatrix,
        level: int,
        out_port: int,
        rng: np.random.Generator,
    ) -> tuple[int, int]:
        """Arbitration: choose which request on the selected row wins."""
        requests = matrix.row_requests(level, out_port)
        if not requests:  # pragma: no cover - guarded by conflict_vector
            raise RuntimeError("port ordering selected an empty row")
        if self.arbitration == "random":
            in_port, vc, _ = requests[int(rng.integers(len(requests)))]
            return in_port, vc
        best_prio = max(prio for _i, _v, prio in requests)
        winners = [(i, v) for i, v, prio in requests if prio == best_prio]
        if len(winners) == 1:
            return winners[0]
        return winners[int(rng.integers(len(winners)))]
