"""Campaign integration: the shard dimension is hash-transparent.

Sharding is an execution choice, not a physics choice — so a sharded
point must hash to the same key as its serial twin, produce bytewise
the same stored artifacts, and cross-serve cache entries in both
directions (a serial run warms the cache for a sharded re-run and vice
versa).
"""

import json

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.plan import CampaignPlan, PointSpec, WorkloadSpec
from repro.campaign.store import ResultStore
from repro.fabric.spec import FabricSpec, TopologySpec
from repro.router.config import RouterConfig
from repro.sessions.churn import ChurnConfig
from repro.shard import ShardSpec

CONFIG = RouterConfig(num_ports=6, vcs_per_link=8, vc_buffer_depth=2,
                      candidate_levels=4, flit_cycles_per_round=800)


def make_fabric(rng_mode="per-router"):
    return FabricSpec(
        topology=TopologySpec.torus(3, 3),
        churn=ChurnConfig(arrivals_per_kcycle=6.0,
                          mean_hold_cycles=250.0,
                          mix=(("cbr-high", 1.0),)),
        sample_stride=100,
        rng_mode=rng_mode,
    )


def make_point(shard=None, seed=0):
    return PointSpec(
        config=CONFIG, arbiter="coa", scheme="siabp", target_load=0.0,
        seed=seed, workload=WorkloadSpec.cbr(), cycles=400,
        warmup_cycles=0, fabric=make_fabric(), shard=shard,
    )


class TestHashTransparency:
    def test_shard_field_does_not_change_the_key(self):
        serial = make_point()
        sharded = make_point(shard=ShardSpec(workers=4, max_window=8))
        assert serial.key() == sharded.key()

    def test_shard_field_rides_the_manifest_dict(self):
        sharded = make_point(shard=ShardSpec(workers=2))
        out = sharded.to_dict()
        assert out["shard"] == {"workers": 2, "partitioner": "auto",
                                "max_window": 0}
        assert "shard" not in make_point().to_dict()

    def test_roundtrip_preserves_shard(self):
        sharded = make_point(shard=ShardSpec(workers=3, partitioner="rows"))
        restored = PointSpec.from_dict(
            json.loads(json.dumps(sharded.to_dict()))
        )
        assert restored.shard == sharded.shard
        assert restored.key() == sharded.key()

    def test_describe_mentions_shard(self):
        assert "shard=2w/auto" in make_point(
            shard=ShardSpec(workers=2)
        ).describe()


class TestValidation:
    def test_shard_without_fabric_rejected(self):
        with pytest.raises(ValueError, match="requires a fabric"):
            PointSpec(
                config=CONFIG, arbiter="coa", scheme="siabp",
                target_load=0.0, seed=0, workload=WorkloadSpec.cbr(),
                cycles=400, warmup_cycles=0, shard=ShardSpec(workers=2),
            )

    def test_shard_requires_per_router_rng(self):
        with pytest.raises(ValueError, match="per-router"):
            PointSpec(
                config=CONFIG, arbiter="coa", scheme="siabp",
                target_load=0.0, seed=0, workload=WorkloadSpec.cbr(),
                cycles=400, warmup_cycles=0,
                fabric=make_fabric(rng_mode="shared"),
                shard=ShardSpec(workers=2),
            )


class TestCacheCrossServing:
    def test_serial_run_serves_sharded_rerun(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        serial = run_campaign(
            CampaignPlan("shard-x-serial", (make_point(),)), store=store,
        )
        assert serial.misses == 1
        sharded = run_campaign(
            CampaignPlan(
                "shard-x-sharded", (make_point(shard=ShardSpec(workers=2)),)
            ),
            store=store,
        )
        assert sharded.hits == 1
        assert (
            sharded.outcomes[0].result.to_dict()
            == serial.outcomes[0].result.to_dict()
        )

    def test_sharded_run_serves_serial_rerun(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sharded = run_campaign(
            CampaignPlan(
                "shard-y-sharded", (make_point(shard=ShardSpec(workers=2)),)
            ),
            store=store,
        )
        assert sharded.misses == 1
        serial = run_campaign(
            CampaignPlan("shard-y-serial", (make_point(),)), store=store,
        )
        assert serial.hits == 1
        assert (
            serial.outcomes[0].result.to_dict()
            == sharded.outcomes[0].result.to_dict()
        )
        assert (
            serial.outcomes[0].sessions == sharded.outcomes[0].sessions
        )

    def test_sharded_and_serial_artifacts_bytewise_identical(self, tmp_path):
        serial_store = ResultStore(tmp_path / "a")
        shard_store = ResultStore(tmp_path / "b")
        run_campaign(
            CampaignPlan("shard-z-serial", (make_point(),)),
            store=serial_store,
        )
        run_campaign(
            CampaignPlan(
                "shard-z-sharded", (make_point(shard=ShardSpec(workers=2)),)
            ),
            store=shard_store,
        )
        for sub in ("objects", "sessions"):
            a_files = sorted((tmp_path / "a" / sub).rglob("*.json"))
            b_files = sorted((tmp_path / "b" / sub).rglob("*.json"))
            assert [p.name for p in a_files] == [p.name for p in b_files]
            assert a_files, sub
            for pa, pb in zip(a_files, b_files):
                assert pa.read_bytes() == pb.read_bytes()
