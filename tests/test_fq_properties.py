"""Property tests for the fair-queueing schemes (hypothesis).

The acceptance invariant: DRR/MCDRR deficit counters never exceed
``quantum + max_flit_size`` for *any* sequence of arrivals, grants and
lifecycle events — including crossbar grants that serve a VC out of
ring order, idle resets, and mid-run re-setup.  The implementation
actually maintains the stronger classic bound ``0 <= deficit <=
quantum - 1`` (the quantum is added only when exhausted at service
time, and one flit is always charged), which the tests assert.

WFQ gets the matching key-domain property: whatever the lifecycle,
every occupied VC's key stays inside ``[1, 2**62)`` so the link
scheduler's tier folding can never collide or wrap.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.link_scheduler import MAX_INTEGER_KEY
from repro.fq.schemes import DRR, MCDRR, WFQ

N_VCS = 6
N_PORTS = 2

# One scheduler-facing event on port 0: (re)setup a VC, serve a VC (a
# crossbar grant — any VC, not just the ring front), or a ranking pass
# over a random occupancy mask (which applies the idle-reset rule).
_EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("setup"),
                  st.integers(0, N_VCS - 1),
                  st.integers(1, 9)),
        st.tuples(st.just("teardown"),
                  st.integers(0, N_VCS - 1),
                  st.just(0)),
        st.tuples(st.just("serve"),
                  st.integers(0, N_VCS - 1),
                  st.integers(0, N_PORTS - 1)),
        st.tuples(st.just("rank"),
                  st.integers(0, 2 ** N_VCS - 1),
                  st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


def _mask(bits: int) -> np.ndarray:
    return np.array([(bits >> i) & 1 == 1 for i in range(N_VCS)])


def _drive(scheme, events):
    now = 0
    for kind, a, b in events:
        if kind == "setup":
            scheme.on_setup(0, a, b % N_PORTS, b, True)
        elif kind == "teardown":
            scheme.on_teardown(0, a)
        elif kind == "serve":
            scheme.on_service(0, a, b, now)
            now += 1
        else:
            scheme.keys_port(0, _mask(a))
        yield


@given(events=_EVENTS)
@settings(max_examples=80, deadline=None)
def test_drr_deficit_never_exceeds_quantum(events):
    drr = DRR(N_PORTS, N_VCS)
    for _ in _drive(drr, events):
        d, q = drr.deficits, drr.quanta
        assert (d >= 0).all()
        assert (d <= q - 1).all()
        # ... and a fortiori the acceptance bound quantum + flit size.
        assert (d <= q + 1).all()


@given(events=_EVENTS)
@settings(max_examples=80, deadline=None)
def test_mcdrr_deficit_never_exceeds_quantum(events):
    mc = MCDRR(N_PORTS, N_VCS)
    for _ in _drive(mc, events):
        d, q = mc.deficits, mc.quanta
        assert (d >= 0).all()
        assert (d <= q - 1).all()


@given(events=_EVENTS)
@settings(max_examples=80, deadline=None)
def test_wfq_keys_stay_in_fold_range(events):
    wfq = WFQ(N_PORTS, N_VCS)
    for _ in _drive(wfq, events):
        for bits in (2 ** N_VCS - 1, 0b10101):
            mask = _mask(bits)
            keys = wfq.keys_port(0, mask)
            assert (keys[mask] >= 1).all()
            assert (keys[mask] < MAX_INTEGER_KEY).all()
            assert (keys[~mask] == 0).all()


@given(events=_EVENTS)
@settings(max_examples=40, deadline=None)
def test_drr_untouched_port_stays_zeroed(events):
    """Events on port 0 must never leak state into port 1."""
    drr = DRR(N_PORTS, N_VCS)
    for _ in _drive(drr, events):
        assert (drr.deficits[1] == 0).all()
        assert (drr.quanta[1] == 1).all()
