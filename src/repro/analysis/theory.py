"""Queueing-theory anchors for validating the simulator.

The paper's reference [10] — Karol, Hluchyj & Morgan, *Input versus
output queueing on a space-division packet switch* (1987) — derives the
saturation throughput of an input-queued switch whose head-of-line cells
have uniform random destinations.  That is *exactly* the regime the MMR
puts a conventional single-request arbiter (WFA/iSLIP/PIM with
``max_levels=1``) in, so the published numbers anchor the simulator: a
correct implementation's WFA must saturate at the Karol-Hluchyj value
for its port count, and the test suite asserts it does.

Also included: the single-round matching expectation for fresh uniform
requests (no queueing memory), useful to reason about the multi-candidate
variants.
"""

from __future__ import annotations

import math

__all__ = [
    "KAROL_HLUCHYJ_TABLE",
    "karol_hluchyj_limit",
    "fresh_uniform_matching_limit",
    "hol_asymptote",
]

#: Saturation throughput of a uniform input-queued (HOL-blocked) switch,
#: per Karol-Hluchyj-Morgan 1987, Table I.
KAROL_HLUCHYJ_TABLE: dict[int, float] = {
    1: 1.0000,
    2: 0.7500,
    3: 0.6825,
    4: 0.6553,
    5: 0.6399,
    6: 0.6302,
    7: 0.6234,
    8: 0.6184,
}

#: The N -> infinity limit: 2 - sqrt(2).
HOL_ASYMPTOTE = 2.0 - math.sqrt(2.0)


def hol_asymptote() -> float:
    """Saturation throughput of HOL blocking as N -> infinity."""
    return HOL_ASYMPTOTE


def karol_hluchyj_limit(num_ports: int) -> float:
    """Saturation throughput of a single-request input-queued switch.

    Exact published values for N <= 8; the 2 - sqrt(2) asymptote beyond
    (the finite-N values converge to it from above).
    """
    if num_ports <= 0:
        raise ValueError("num_ports must be positive")
    if num_ports in KAROL_HLUCHYJ_TABLE:
        return KAROL_HLUCHYJ_TABLE[num_ports]
    return HOL_ASYMPTOTE


def fresh_uniform_matching_limit(num_ports: int) -> float:
    """Expected matched fraction for one round of fresh uniform requests.

    With every input requesting an independent uniform output and a
    maximal matching granted, the expected number of matched outputs is
    ``N * (1 - (1 - 1/N)^N)`` — higher than the Karol-Hluchyj limit
    because queueing correlates successive head-of-line requests (a
    blocked head re-requests the same hot output next cycle).
    """
    if num_ports <= 0:
        raise ValueError("num_ports must be positive")
    n = num_ports
    return 1.0 - (1.0 - 1.0 / n) ** n
