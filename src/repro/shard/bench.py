"""Shard scale bench: cycles/sec vs topology size vs worker count.

The scale story behind ``python -m repro shard --bench`` and the
committed ``BENCH_shard.json``: one fixed churn point per topology, run
serially (the per-router reference) and under each requested worker
count, best-of-N wall times each (the perf harness's noisy-neighbour
defence).  Every sharded measurement also records its boundary-crossing
counts and a quick inline identity verdict, so a speedup number from a
diverging run can never look healthy.

Caveat recorded in the report: ``cpu_count``.  On a single-CPU container
worker processes time-slice one core and multi-worker runs *lose* to
serial on barrier overhead; the regression gate therefore only enforces
``multi-worker >= serial`` when the machine actually has at least as
many CPUs as workers (the same caveat the perf bench documents for its
speedup ratio).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter_ns
from typing import Any

from ..fabric.engine import FabricSim
from ..fabric.spec import FabricSpec, parse_topology
from ..router.config import RouterConfig
from ..sessions.churn import ChurnConfig
from .coordinator import ShardedFabricSim, check_identity
from .partition import partition_summary
from .spec import ShardSpec

__all__ = [
    "SHARD_BENCH_SCHEMA",
    "bench_config",
    "bench_fabric",
    "run_shard_bench",
    "write_report",
    "check_shard_regression",
]

SHARD_BENCH_SCHEMA = "repro/shard-bench/v1"

#: Default bench point (CI smoke: small but busy enough to cross shards).
_CYCLES = 2_000
_REPEATS = 2
_RATE = 4.0
_HOLD = 1_000.0
_IDENTITY_CYCLES = 300


def bench_config() -> RouterConfig:
    """The fabric-scale router config the fabric bench also uses."""
    return RouterConfig(
        num_ports=6,
        vcs_per_link=8,
        candidate_levels=4,
        vc_buffer_depth=2,
        flit_cycles_per_round=800,
    )


def bench_fabric(topology: str, rate: float = _RATE) -> FabricSpec:
    """The bench's churn point on one named topology (per-router RNG)."""
    return FabricSpec(
        topology=parse_topology(topology),
        churn=ChurnConfig(
            arrivals_per_kcycle=rate,
            mean_hold_cycles=_HOLD,
            mix=(("cbr-high", 1.0),),
        ),
        sample_stride=500,
        rng_mode="per-router",
    )


def _timed_serial(
    fabric: FabricSpec, config: RouterConfig, seed: int, cycles: int
) -> float:
    sim = FabricSim(fabric, config, seed=seed)
    t0 = perf_counter_ns()
    sim.run(0.0, cycles)
    return (perf_counter_ns() - t0) / 1e9


def _timed_sharded(
    fabric: FabricSpec,
    config: RouterConfig,
    seed: int,
    cycles: int,
    shard: ShardSpec,
    inline: bool,
) -> tuple[float, ShardedFabricSim]:
    sim = ShardedFabricSim(
        fabric, config, seed=seed, shard=shard, inline=inline
    )
    t0 = perf_counter_ns()
    sim.run(0.0, cycles)
    return (perf_counter_ns() - t0) / 1e9, sim


def run_shard_bench(
    topologies: list[str] | None = None,
    worker_counts: list[int] | None = None,
    *,
    cycles: int = _CYCLES,
    seed: int = 0,
    rate: float = _RATE,
    repeats: int = _REPEATS,
    inline: bool = False,
    check: bool = True,
) -> dict[str, Any]:
    """Measure serial vs sharded cycles/sec over a topology x worker grid.

    ``inline=True`` runs every replica in-process — useful to time the
    barrier protocol itself without process overhead, and the only
    honest mode on a 1-CPU machine.  ``check=False`` skips the inline
    identity verdicts (they re-run every point at short length).
    """
    topologies = topologies or ["torus:4x4"]
    worker_counts = worker_counts or [2, 4]
    config = bench_config()
    report: dict[str, Any] = {
        "schema": SHARD_BENCH_SCHEMA,
        "cycles": cycles,
        "seed": seed,
        "arrival_rate": rate,
        "mean_hold_cycles": _HOLD,
        "repeats": repeats,
        "inline": inline,
        "cpu_count": os.cpu_count() or 1,
        "topologies": {},
    }
    for name in topologies:
        fabric = bench_fabric(name, rate)
        num_routers = fabric.topology.build().num_routers
        serial_walls = [
            _timed_serial(fabric, config, seed, cycles) for _ in range(repeats)
        ]
        serial_best = min(serial_walls)
        serial_cps = cycles / serial_best if serial_best > 0 else float("inf")
        entry: dict[str, Any] = {
            "routers": num_routers,
            "serial": {
                "wall_s": serial_best,
                "wall_s_all": serial_walls,
                "cycles_per_sec": serial_cps,
            },
            "workers": {},
        }
        for workers in worker_counts:
            if workers > num_routers:
                continue
            shard = ShardSpec(workers=workers)
            walls = []
            sim = None
            for _ in range(repeats):
                wall, sim = _timed_sharded(
                    fabric, config, seed, cycles, shard, inline
                )
                walls.append(wall)
            best = min(walls)
            cps = cycles / best if best > 0 else float("inf")
            identity_ok = True
            if check:
                identity_ok = check_identity(
                    fabric,
                    config,
                    seed=seed,
                    cycles=min(cycles, _IDENTITY_CYCLES),
                    shard=shard,
                    inline=True,
                ).ok
            entry["workers"][str(workers)] = {
                "wall_s": best,
                "wall_s_all": walls,
                "cycles_per_sec": cps,
                "speedup": cps / serial_cps if serial_cps > 0 else 0.0,
                "crossing_flits": sim.crossing_flits,
                "crossing_credits": sim.crossing_credits,
                "windows": sim.windows,
                "identity_ok": identity_ok,
                "partition": partition_summary(fabric.topology, sim.parts),
            }
        report["topologies"][name] = entry
    return report


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return path


def check_shard_regression(
    report: dict[str, Any],
    baseline_path: str | Path,
    max_regression: float = 0.5,
) -> tuple[bool, str]:
    """Gate a bench report against the committed baseline.

    Three checks, any failure flips ``ok``:

    * every sharded measurement's inline identity verdict holds;
    * serial cycles/sec has not fallen more than ``max_regression``
      below the baseline's, per topology;
    * on machines with enough CPUs (``cpu_count >= workers``),
      multi-worker throughput is at least serial throughput — the
      acceptance criterion the multi-CPU CI runner enforces; on smaller
      machines the speedup check is recorded as skipped, not failed.
    """
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    cpus = int(report.get("cpu_count", 1))
    problems: list[str] = []
    notes: list[str] = []
    for name, entry in sorted(report["topologies"].items()):
        base_entry = baseline.get("topologies", {}).get(name)
        if base_entry is not None:
            base_cps = float(base_entry["serial"]["cycles_per_sec"])
            floor = base_cps * (1.0 - max_regression)
            cur = float(entry["serial"]["cycles_per_sec"])
            if cur < floor:
                problems.append(
                    f"{name}: serial {cur:,.0f} cyc/s < floor {floor:,.0f} "
                    f"(baseline {base_cps:,.0f})"
                )
        for workers, stats in sorted(entry["workers"].items()):
            if not stats.get("identity_ok", True):
                problems.append(
                    f"{name}/{workers}w: sharded run diverged from serial"
                )
            if int(workers) <= cpus:
                if stats["cycles_per_sec"] < entry["serial"]["cycles_per_sec"]:
                    problems.append(
                        f"{name}/{workers}w: {stats['cycles_per_sec']:,.0f} "
                        f"cyc/s < serial "
                        f"{entry['serial']['cycles_per_sec']:,.0f} "
                        f"on a {cpus}-CPU machine"
                    )
            else:
                notes.append(
                    f"{name}/{workers}w: speedup check skipped "
                    f"({cpus} CPUs < {workers} workers)"
                )
    if problems:
        return False, "; ".join(problems)
    msg = "shard bench OK"
    if notes:
        msg += " (" + "; ".join(notes) + ")"
    return True, msg
