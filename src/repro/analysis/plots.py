"""ASCII x/y plots: render figure-shaped output in a terminal.

The paper's figures are delay/utilization-vs-load curves; the benches
print them as tables (exact values) *and* as these character plots (the
shape at a glance, including the log-scale hockey sticks of Figs. 5/9).
No plotting dependency — pure text.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["render_xy_plot"]

_MARKERS = "ox+*#@%&"


def _nice(value: float) -> str:
    if value != value:
        return "nan"
    if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
        return f"{value:.2e}"
    return f"{value:.4g}"


def render_xy_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more (x, y) series on a character grid.

    NaN points are skipped.  With ``log_y`` non-positive values are
    clamped to the smallest positive value present.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 10 or height < 4:
        raise ValueError("plot must be at least 10x4")

    points: dict[str, list[tuple[float, float]]] = {}
    for name, data in series.items():
        cleaned = [(x, y) for x, y in data if y == y and x == x]
        points[name] = cleaned
    all_pts = [p for data in points.values() for p in data]
    if not all_pts:
        raise ValueError("every point is NaN")

    xs = [x for x, _ in all_pts]
    ys = [y for _, y in all_pts]
    if log_y:
        floor = min((y for y in ys if y > 0), default=1.0)
        tr = lambda y: math.log10(max(y, floor))  # noqa: E731
    else:
        tr = lambda y: y  # noqa: E731
    x_lo, x_hi = min(xs), max(xs)
    ty = [tr(y) for y in ys]
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, data) in enumerate(points.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in data:
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((tr(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    y_hi_label = _nice(ys and max(ys))
    y_lo_label = _nice(min(ys))
    gutter = max(len(y_hi_label), len(y_lo_label)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = y_hi_label.rjust(gutter)
        elif r == height - 1:
            label = y_lo_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_left = _nice(x_lo)
    x_right = _nice(x_hi)
    pad = width - len(x_left) - len(x_right)
    lines.append(
        " " * (gutter + 1) + x_left + " " * max(1, pad) + x_right
    )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(points)
    )
    scale = " (log y)" if log_y else ""
    lines.append(f"  {x_label} vs {y_label}{scale}   {legend}")
    return "\n".join(lines)
