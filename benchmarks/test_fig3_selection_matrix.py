"""F3 — Fig. 3: an example selection matrix and its conflict vector.

Regenerates the figure's artifact: a selection matrix populated with
candidate requests and the conflict vector computed from it, rendered in
the paper's layout.  Asserts the structural definitions: one request per
(input, level), conflict entries count the non-null cells per row, and
matched rows/columns drop as the COA consumes the matrix.
"""

import numpy as np
import pytest

from repro.core import Candidate, CandidateOrderArbiter, SelectionMatrix

N, LEVELS = 4, 2

CANDIDATES = [
    [Candidate(0, 0, 0, 9.0, 0), Candidate(0, 1, 1, 4.0, 1)],
    [Candidate(1, 0, 0, 8.0, 0), Candidate(1, 1, 2, 3.0, 1)],
    [Candidate(2, 0, 3, 7.0, 0), Candidate(2, 1, 1, 2.0, 1)],
    [Candidate(3, 0, 3, 6.0, 0)],
]


def _build():
    matrix = SelectionMatrix.from_candidates(CANDIDATES, N, LEVELS)
    return matrix, matrix.conflict_vector()


@pytest.mark.benchmark(group="fig3")
def test_fig3_selection_matrix_and_conflict_vector(benchmark):
    matrix, conflicts = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print("Fig. 3 — example selection matrix and conflict vector")
    print(matrix.render())

    # Conflict vector rows: level-major, one row per output.
    # Level 0: out0 contested by in0+in1, out3 by in2+in3.
    np.testing.assert_array_equal(conflicts, [2, 0, 0, 2, 0, 2, 1, 0])
    assert matrix.total_requests() == sum(len(c) for c in CANDIDATES)

    # The matrix supports the COA consumption loop: after a full match
    # every request involving a matched port is gone.
    coa = CandidateOrderArbiter(N, LEVELS)
    grants = coa.match(CANDIDATES, np.random.default_rng(0))
    matched_ins = {g[0] for g in grants}
    matched_outs = {g[2] for g in grants}
    for in_port, _vc, out_port in grants:
        matrix.drop_input(in_port)
        matrix.drop_output(out_port)
    for level in range(LEVELS):
        for out_port in range(N):
            for in_port, _vc, _p in matrix.row_requests(level, out_port):
                assert in_port not in matched_ins
                assert out_port not in matched_outs
