"""Exact fluid GPS (Generalized Processor Sharing) reference engine.

GPS is the idealized fair scheduler: a link of capacity ``C`` serves
every backlogged flow *simultaneously*, each at rate
``C * w_i / sum(w_j over backlogged j)``.  It is not implementable (it
serves fractional flits) but it is the ground truth every packetized
fair queueer approximates: WFQ/PGPS serves packets in the order GPS
would *finish* them, and DRR's deficit counters bound each flow's lag
behind its GPS service curve.

This engine computes the fluid schedule **analytically** — an
event-driven sweep over arrival and drain instants with
:class:`fractions.Fraction` arithmetic throughout, so per-flit finish
times and per-flow service curves are *exact*, never iterated per
cycle.  It is the differential-test oracle for the packetized schemes
(``repro.fq.schemes``) and the basis of the worst-case GPS-lag fairness
metric (:mod:`repro.analysis.fairness`).

Units: time in flit cycles (arbitrary rationals), service in flits,
capacity in flits per cycle (the MMR input link serves one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

__all__ = ["FluidFlow", "GpsResult", "GpsFluid"]


@dataclass(frozen=True)
class FluidFlow:
    """One flow offered to the fluid link."""

    flow_id: int
    #: GPS weight (for the MMR: the connection's reserved slots/round).
    weight: int
    #: ``(arrival_cycle, flits)`` batches, strictly increasing times.
    arrivals: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        last = None
        for t, k in self.arrivals:
            if k <= 0:
                raise ValueError("arrival batches must contain >= 1 flit")
            if t < 0:
                raise ValueError("arrival times must be >= 0")
            if last is not None and t <= last:
                raise ValueError("arrival times must be strictly increasing")
            last = t


@dataclass
class GpsResult:
    """The exact fluid schedule of one :class:`GpsFluid` run."""

    flows: tuple[FluidFlow, ...]
    #: Per-flow exact finish times, one per flit, in arrival order.
    finish_times: dict[int, list[Fraction]]
    #: Per-flow service-curve breakpoints ``(t, cumulative_flits)`` —
    #: piecewise linear between them.
    service_curves: dict[int, list[tuple[Fraction, Fraction]]] = field(
        default_factory=dict
    )

    def finish_order(self) -> list[tuple[int, int]]:
        """``(flow_id, flit_index)`` in fluid finish order.

        Simultaneous finishes tie-break on the order flows were given
        (for the MMR: ascending VC index), then flit index — exactly the
        tie-break of the packetized link scheduler.
        """
        rank = {f.flow_id: i for i, f in enumerate(self.flows)}
        events = [
            (t, rank[fid], fid, k)
            for fid, times in self.finish_times.items()
            for k, t in enumerate(times)
        ]
        events.sort(key=lambda e: (e[0], e[1], e[3]))
        return [(fid, k) for _t, _r, fid, k in events]

    def service_at(self, flow_id: int, t: Fraction | int) -> Fraction:
        """Exact cumulative fluid service of ``flow_id`` at time ``t``."""
        t = Fraction(t)
        curve = self.service_curves[flow_id]
        if not curve or t <= curve[0][0]:
            return Fraction(0)
        prev_t, prev_s = curve[0]
        for bt, bs in curve[1:]:
            if t <= bt:
                if bt == prev_t:
                    return bs
                return prev_s + (bs - prev_s) * (t - prev_t) / (bt - prev_t)
            prev_t, prev_s = bt, bs
        return prev_s


class GpsFluid:
    """Event-driven exact fluid GPS simulation of one link."""

    def __init__(
        self, flows: Sequence[FluidFlow], capacity: int | Fraction = 1
    ) -> None:
        if not flows:
            raise ValueError("need at least one flow")
        ids = [f.flow_id for f in flows]
        if len(set(ids)) != len(ids):
            raise ValueError("flow ids must be unique")
        capacity = Fraction(capacity)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.flows = tuple(flows)
        self.capacity = capacity

    def run(self) -> GpsResult:
        flows = self.flows
        nf = len(flows)
        backlog = [Fraction(0)] * nf
        served = [Fraction(0)] * nf
        next_arr = [0] * nf  # index into each flow's arrival list
        finish: dict[int, list[Fraction]] = {f.flow_id: [] for f in flows}
        curves: dict[int, list[tuple[Fraction, Fraction]]] = {
            f.flow_id: [(Fraction(0), Fraction(0))] for f in flows
        }
        t = Fraction(0)

        def admit_arrivals_at(now: Fraction) -> None:
            for i, f in enumerate(flows):
                admitted = False
                while (
                    next_arr[i] < len(f.arrivals)
                    and Fraction(f.arrivals[next_arr[i]][0]) == now
                ):
                    if backlog[i] == 0 and not admitted:
                        # Idle -> active transition: anchor the service
                        # curve so the idle gap stays flat instead of
                        # being interpolated across.
                        curves[f.flow_id].append((now, served[i]))
                    backlog[i] += f.arrivals[next_arr[i]][1]
                    next_arr[i] += 1
                    admitted = True

        def pending_arrival_time() -> Fraction | None:
            times = [
                Fraction(f.arrivals[next_arr[i]][0])
                for i, f in enumerate(flows)
                if next_arr[i] < len(f.arrivals)
            ]
            return min(times) if times else None

        admit_arrivals_at(t)
        while True:
            active = [i for i in range(nf) if backlog[i] > 0]
            if not active:
                nxt = pending_arrival_time()
                if nxt is None:
                    break
                t = nxt
                admit_arrivals_at(t)
                continue
            total_w = sum(flows[i].weight for i in active)
            rates = {
                i: self.capacity * flows[i].weight / total_w for i in active
            }
            # Next event: an arrival changes the active set, or some
            # active flow drains completely.
            t_next = pending_arrival_time()
            for i in active:
                drain = t + backlog[i] / rates[i]
                if t_next is None or drain < t_next:
                    t_next = drain
            assert t_next is not None and t_next > t
            dt = t_next - t
            for i in active:
                s = rates[i] * dt
                # Integer service crossings inside (t, t_next] are the
                # flit finish instants.
                k = int(served[i]) + 1  # next whole flit to complete
                hi = served[i] + s
                while k <= hi:
                    finish[flows[i].flow_id].append(
                        t + (Fraction(k) - served[i]) / rates[i]
                    )
                    k += 1
                served[i] = hi
                backlog[i] -= s
                if backlog[i] < 0:  # exact arithmetic: only rounding-free 0
                    backlog[i] = Fraction(0)
                curves[flows[i].flow_id].append((t_next, served[i]))
            t = t_next
            admit_arrivals_at(t)

        return GpsResult(flows=flows, finish_times=finish, service_curves=curves)
