"""Plain-data spec for sharded fabric execution.

A :class:`ShardSpec` describes *how* a fabric point executes — how many
worker processes, which partitioner carves the topology into per-worker
router groups, and how far an all-idle barrier window may stretch.  It
deliberately describes **nothing about the result**: a sharded run is
byte-identical to the single-process per-router reference, so the shard
dimension is execution-only and stays out of the campaign point hash
(:meth:`repro.campaign.plan.PointSpec.key` pops it) while still riding
the manifest for provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["PARTITIONERS", "ShardSpec"]

#: Registered partitioner names (``auto`` dispatches per topology kind).
PARTITIONERS = ("auto", "contiguous", "rows", "pods")


@dataclass(frozen=True)
class ShardSpec:
    """The execution dimension of a sharded fabric run."""

    #: Worker processes (1 = the degenerate single-shard run, still
    #: driven through the barrier protocol).
    workers: int = 2
    #: Router-group partitioner: ``auto`` picks ``rows`` for mesh/torus
    #: and ``pods`` for fat-tree when the worker count fits, falling
    #: back to ``contiguous``.
    partitioner: str = "auto"
    #: Cap on the length of an all-idle barrier window, in cycles
    #: (0 = unbounded: jump straight to the next global event).  Any
    #: window containing traffic is always one cycle — the cap only
    #: bounds how far idle stretches fast-forward between barriers.
    max_window: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.partitioner not in PARTITIONERS:
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; "
                f"known: {', '.join(PARTITIONERS)}"
            )
        if self.max_window < 0:
            raise ValueError("max_window must be >= 0 (0 = unbounded)")

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "partitioner": self.partitioner,
            "max_window": self.max_window,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardSpec":
        return cls(
            workers=data.get("workers", 2),
            partitioner=data.get("partitioner", "auto"),
            max_window=data.get("max_window", 0),
        )

    def describe(self) -> str:
        tail = f"/{self.partitioner}"
        if self.max_window:
            tail += f"/K={self.max_window}"
        return f"{self.workers}w{tail}"
