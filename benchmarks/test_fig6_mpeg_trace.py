"""F6 — Fig. 6: bitrate-over-time of a typical MPEG-2 sequence.

The paper's Fig. 6 shows the Flower Garden sequence's instantaneous
bitrate (Mbit/s per frame slot) over time: a strong periodic spike at
every I frame, intermediate P levels, and a low B-frame floor.  This
bench regenerates the series from the synthetic trace generator, prints
it as a sparkline plus summary rows, and asserts the burst structure.
"""

import numpy as np
import pytest

from repro.analysis import render_table, sparkline
from repro.traffic.mpeg import (
    FRAME_PERIOD_SECONDS,
    GOP_LENGTH,
    FrameKind,
    SEQUENCE_STATS,
    frame_kinds,
    generate_trace,
)

NUM_GOPS = 4  # the window the paper plots (~2 seconds of video)


def _build(seed: int):
    stats = SEQUENCE_STATS["flower_garden"]
    trace = generate_trace(stats, NUM_GOPS, np.random.default_rng(seed))
    mbps = trace / FRAME_PERIOD_SECONDS / 1e6
    return trace, mbps


@pytest.mark.benchmark(group="fig6")
def test_fig6_flower_garden_trace(benchmark, bench_seed):
    trace, mbps = benchmark.pedantic(
        lambda: _build(bench_seed), rounds=1, iterations=1
    )
    kinds = frame_kinds(len(trace))
    print()
    print("Fig. 6 — Flower Garden sequence, instantaneous bitrate (Mbit/s)")
    print(f"  {sparkline(mbps)}")
    rows = []
    for kind in (FrameKind.I, FrameKind.P, FrameKind.B):
        sel = mbps[kinds == kind]
        rows.append([kind.name, len(sel), sel.mean(), sel.min(), sel.max()])
    print(render_table(["frame type", "count", "mean Mbps", "min", "max"], rows))

    i_rate = mbps[kinds == FrameKind.I].mean()
    p_rate = mbps[kinds == FrameKind.P].mean()
    b_rate = mbps[kinds == FrameKind.B].mean()
    # The figure's signature: I spikes well above P, P above B.
    assert i_rate > 1.5 * p_rate > 1.5 * b_rate
    # The mean rate matches the sequence's published average bitrate.
    target = SEQUENCE_STATS["flower_garden"].avg_rate_bps / 1e6
    assert mbps.mean() == pytest.approx(target, rel=0.05)
    # Spikes recur with GOP periodicity: every I-frame slot is a local
    # maximum over its GOP.
    for g in range(NUM_GOPS):
        gop = mbps[g * GOP_LENGTH:(g + 1) * GOP_LENGTH]
        assert gop.argmax() == 0
