"""Tests for repro.sim.replication and repro.sim.tracing."""

import numpy as np
import pytest

from repro.router import MMRouter, RouterConfig, TrafficClass
from repro.sim.engine import RunControl
from repro.sim.replication import replicate, replicate_sweep
from repro.sim.simulation import SingleRouterSim
from repro.sim.tracing import EventKind, Tracer, dump_router_state
from repro.traffic.mixes import build_cbr_workload


def small_config():
    # Enough VCs that the CBR builder always reaches its target load
    # (with 16 VCs the mix can exhaust the link's channels first).
    return RouterConfig(num_ports=4, vcs_per_link=48, candidate_levels=4)


def builder(router, rng, load):
    return build_cbr_workload(router, load, rng)


CONTROL = RunControl(cycles=2_000, warmup_cycles=400)


class TestReplication:
    def test_replicate_aggregates_over_seeds(self):
        point = replicate(builder, small_config(), "coa", CONTROL,
                          target_load=0.5, seeds=(1, 2, 3))
        assert point.n == 3
        thr = point.throughput
        assert thr.n == 3
        # Throughput tracks offered load below saturation.
        assert thr.mean == pytest.approx(point.offered_load.mean, rel=0.05)
        assert thr.half_width < 0.1

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(builder, small_config(), "coa", CONTROL, 0.5, seeds=())

    def test_different_seeds_give_different_workloads(self):
        point = replicate(builder, small_config(), "coa", CONTROL,
                          target_load=0.6, seeds=(1, 2))
        offered = [r.offered_load for r in point.results]
        assert offered[0] != offered[1]

    def test_metric_drops_nan_runs(self):
        point = replicate(builder, small_config(), "coa", CONTROL,
                          target_load=0.3, seeds=(1, 2))
        # "low" class may have no departures in a tiny run; the CI must
        # handle all-NaN gracefully and per-run NaN dropping.
        ci = point.flit_delay_us("nonexistent-label")
        assert ci.n == 0
        assert ci.mean != ci.mean  # NaN

    def test_replicate_sweep_shapes(self):
        points = replicate_sweep((0.3, 0.5), builder, small_config(), "coa",
                                 CONTROL, seeds=(1, 2))
        assert [p.target_load for p in points] == [0.3, 0.5]
        assert all(p.n == 2 for p in points)


class TestTracer:
    def make_router(self):
        cfg = RouterConfig(num_ports=2, vcs_per_link=4, candidate_levels=2,
                           flit_cycles_per_round=400)
        return MMRouter(cfg)

    def test_records_departures_and_matches(self):
        router = self.make_router()
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        tracer = Tracer(router).install()
        rng = np.random.default_rng(0)
        router.nics[0].inject(conn.vc, gen_cycle=0)
        for t in range(4):
            router.step(t, rng)
        tracer.uninstall()
        departures = tracer.filter(kind=EventKind.DEPARTURE)
        assert len(departures) == 1
        assert departures[0].data[:3] == (0, conn.vc, 1)
        assert len(tracer.filter(kind=EventKind.MATCH)) == 1
        assert len(tracer.filter(kind=EventKind.NIC_FORWARD)) == 1

    def test_context_manager_and_no_behaviour_change(self):
        def run(traced: bool):
            sim = SingleRouterSim(small_config(), arbiter="coa", seed=9)
            wl = build_cbr_workload(sim.router, 0.5, sim.rng.workload)
            if traced:
                with Tracer(sim.router):
                    return sim.run(wl, RunControl(cycles=1_000))
            return sim.run(wl, RunControl(cycles=1_000))

        plain = run(False)
        traced = run(True)
        assert plain.flit_delay_us == traced.flit_delay_us
        assert plain.utilization == traced.utilization

    def test_ring_bounds_memory(self):
        router = self.make_router()
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        tracer = Tracer(router, capacity=10).install()
        rng = np.random.default_rng(0)
        for t in range(40):
            router.nics[0].inject(conn.vc, gen_cycle=t)
            router.step(t, rng)
        assert len(tracer) == 10
        assert tracer.dropped > 0
        assert "dropped" in tracer.render()

    def test_filters(self):
        router = self.make_router()
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        tracer = Tracer(router).install()
        rng = np.random.default_rng(0)
        for t in range(8):
            if t < 3:
                router.nics[0].inject(conn.vc, gen_cycle=t)
            router.step(t, rng)
        in_window = tracer.filter(cycle_range=(0, 3))
        assert all(0 <= e.cycle < 3 for e in in_window)
        by_conn = tracer.departures_of(0, conn.vc)
        assert len(by_conn) == 3

    def test_install_idempotent(self):
        router = self.make_router()
        tracer = Tracer(router)
        assert tracer.install() is tracer
        tracer.install()  # second install must not double-wrap
        rng = np.random.default_rng(0)
        router.step(0, rng)
        tracer.uninstall()
        tracer.uninstall()  # and uninstall is safe to repeat

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(self.make_router(), capacity=0)


class TestDumpRouterState:
    def make_router(self):
        cfg = RouterConfig(num_ports=2, vcs_per_link=4, candidate_levels=2,
                           flit_cycles_per_round=400)
        return MMRouter(cfg)

    def test_idle_router_dumps_only_totals(self):
        router = self.make_router()
        dump = dump_router_state(router, 7)
        assert "router state at cycle 7" in dump
        assert "buffered flits: 0" in dump
        assert "nic backlog: 0" in dump
        assert "credits in flight: 0" in dump
        # No busy (port, vc) pair: no per-port sections.
        assert "port 0:" not in dump

    def test_lists_only_non_idle_vcs_with_figures(self):
        router = self.make_router()
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        # One flit buffered in VC memory, one stuck in the NIC.
        router.vc_memory.push(conn.in_port, conn.vc, 0, -1, False, 0)
        router.nics[0].inject(conn.vc, gen_cycle=1)
        dump = dump_router_state(router, 3)
        assert "buffered flits: 1" in dump
        assert "nic backlog: 1" in dump
        assert "port 0:" in dump
        assert "port 1:" not in dump  # idle port stays unlisted
        line = next(l for l in dump.splitlines() if f"vc {conn.vc:>3}" in l)
        assert "buffered=1" in line
        assert "nic_backlog=1" in line
        depth = router.config.vc_buffer_depth
        assert f"credits={depth}" in line
        assert "in_flight=0" in line

    def test_credit_deficit_is_visible(self):
        router = self.make_router()
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        rng = np.random.default_rng(0)
        router.nics[0].inject(conn.vc, gen_cycle=0)
        router.step(0, rng)  # NIC -> VC memory consumes one credit
        dump = dump_router_state(router, 1)
        depth = router.config.vc_buffer_depth
        assert f"credits={depth - 1}" in dump


class TestTracerUnderFaults:
    """The tracer hooks pipeline seams shared by the fault harness,
    which inlines the loop and never calls router.step."""

    def faulty_run(self, traced: bool, faults=None):
        from repro.faults import FaultConfig, FaultySingleRouterSim

        sim = FaultySingleRouterSim(
            small_config(), arbiter="coa", seed=4,
            faults=faults or FaultConfig(),
        )
        wl = build_cbr_workload(sim.router, 0.5, sim.rng.workload)
        control = RunControl(cycles=1_000, warmup_cycles=200)
        if traced:
            tracer = Tracer(sim.router)
            with tracer:
                result = sim.run(wl, control)
            return result, tracer
        return sim.run(wl, control), None

    def test_no_behaviour_change_while_faults_active(self):
        from repro.faults import FaultConfig

        faults = FaultConfig(corruption_rate=0.01, credit_loss_rate=0.002)
        plain, _ = self.faulty_run(False, faults)
        traced, tracer = self.faulty_run(True, faults)
        assert traced.flit_delay_us == plain.flit_delay_us
        assert traced.utilization == plain.utilization
        assert traced.fault == plain.fault
        assert len(tracer.filter(kind=EventKind.DEPARTURE)) > 0

    def test_departures_recorded_during_faulty_run(self):
        result, tracer = self.faulty_run(True)
        departures = tracer.filter(kind=EventKind.DEPARTURE)
        matches = tracer.filter(kind=EventKind.MATCH)
        forwards = tracer.filter(kind=EventKind.NIC_FORWARD)
        assert departures and matches and forwards
        # Departure events carry (in_port, vc, out_port, gen, frame_id).
        in_port, vc, out_port, gen, frame_id = departures[0].data
        assert 0 <= in_port < 4 and 0 <= out_port < 4
        assert gen <= departures[0].cycle

    def test_corrupted_flits_produce_no_nic_forward(self):
        from repro.faults import FaultConfig

        # Corrupt every forward: the NIC pop seam is never reached, so
        # the tracer sees matches/departures but zero NIC forwards.
        _, tracer = self.faulty_run(
            True, FaultConfig(corruption_rate=1.0)
        )
        assert tracer.filter(kind=EventKind.NIC_FORWARD) == []
