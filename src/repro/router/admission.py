"""Connection admission control (CAC).

The MMR accepts a new connection only if the QoS of already-admitted
connections remains guaranteeable (paper §2, "Connection Set up"):

* A **CBR** connection is accepted iff, on every link it uses, the total
  reserved flit-cycle slots (including the new connection) do not exceed
  the number of flit cycles in a round.
* A **VBR** connection is accepted iff, on every link it uses,
  (a) the summed *average* (permanent) bandwidth does not exceed the round
  and (b) the summed *peak* bandwidth does not exceed the round times the
  **concurrency factor** — the knob trading QoS strength against the
  number of concurrently serviced connections and link utilization.
* **Best-effort** connections reserve nothing; they only need a free
  virtual channel.

Single-router scope: the links checked are the router's input and output
links; the network extension applies the same test per hop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import RouterConfig
from .connection import Connection, ConnectionTable, TrafficClass

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission test."""

    admitted: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Tracks per-link reservations and applies the paper's CAC rules."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        n = config.num_ports
        # Reserved average slots per round, per input and output link.
        self._avg_in = np.zeros(n, dtype=np.int64)
        self._avg_out = np.zeros(n, dtype=np.int64)
        # Reserved peak slots per round (VBR accounting).
        self._peak_in = np.zeros(n, dtype=np.int64)
        self._peak_out = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------

    def check(self, conn: Connection) -> AdmissionDecision:
        """Test a connection without committing its reservation."""
        if conn.traffic_class is TrafficClass.BEST_EFFORT:
            return AdmissionDecision(True, "best-effort needs no reservation")

        round_cycles = self.config.round_cycles
        avg_budget = round_cycles
        new_avg_in = self._avg_in[conn.in_port] + conn.avg_slots
        new_avg_out = self._avg_out[conn.out_port] + conn.avg_slots
        if new_avg_in > avg_budget:
            return AdmissionDecision(
                False,
                f"input link {conn.in_port}: average reservation "
                f"{new_avg_in} > round {avg_budget}",
            )
        if new_avg_out > avg_budget:
            return AdmissionDecision(
                False,
                f"output link {conn.out_port}: average reservation "
                f"{new_avg_out} > round {avg_budget}",
            )

        if conn.traffic_class is TrafficClass.VBR:
            peak_budget = round_cycles * self.config.concurrency_factor
            new_peak_in = self._peak_in[conn.in_port] + conn.peak_slots
            new_peak_out = self._peak_out[conn.out_port] + conn.peak_slots
            if new_peak_in > peak_budget:
                return AdmissionDecision(
                    False,
                    f"input link {conn.in_port}: peak reservation "
                    f"{new_peak_in} > round * concurrency "
                    f"{peak_budget:.0f}",
                )
            if new_peak_out > peak_budget:
                return AdmissionDecision(
                    False,
                    f"output link {conn.out_port}: peak reservation "
                    f"{new_peak_out} > round * concurrency "
                    f"{peak_budget:.0f}",
                )
        return AdmissionDecision(True, "reservation fits")

    def commit(self, conn: Connection) -> None:
        """Record an admitted connection's reservation."""
        if conn.traffic_class is TrafficClass.BEST_EFFORT:
            return
        self._avg_in[conn.in_port] += conn.avg_slots
        self._avg_out[conn.out_port] += conn.avg_slots
        if conn.traffic_class is TrafficClass.VBR:
            self._peak_in[conn.in_port] += conn.peak_slots
            self._peak_out[conn.out_port] += conn.peak_slots

    def release(self, conn: Connection) -> None:
        """Return a torn-down connection's reservation."""
        if conn.traffic_class is TrafficClass.BEST_EFFORT:
            return
        self._avg_in[conn.in_port] -= conn.avg_slots
        self._avg_out[conn.out_port] -= conn.avg_slots
        if conn.traffic_class is TrafficClass.VBR:
            self._peak_in[conn.in_port] -= conn.peak_slots
            self._peak_out[conn.out_port] -= conn.peak_slots
        if (
            self._avg_in.min() < 0
            or self._avg_out.min() < 0
            or self._peak_in.min() < 0
            or self._peak_out.min() < 0
        ):
            raise RuntimeError("admission accounting went negative on release")

    def admit(self, conn: Connection, table: ConnectionTable) -> AdmissionDecision:
        """Check + commit + register in the connection table atomically."""
        decision = self.check(conn)
        if decision:
            table.add(conn)  # raises on VC conflicts before committing
            self.commit(conn)
        return decision

    def renegotiate_peak(
        self, conn: Connection, new_peak_slots: int
    ) -> AdmissionDecision:
        """Test a VBR peak-rate renegotiation without committing it.

        Renegotiation re-runs the §2 peak test with the connection's own
        current peak excluded: shrinking always fits, growing fits iff
        the link-wide peak sum stays within round × concurrency factor
        on both links.  Average (permanent) bandwidth is untouched — the
        paper renegotiates only the statistically-multiplexed share.
        """
        if conn.traffic_class is not TrafficClass.VBR:
            return AdmissionDecision(
                False, "only VBR connections renegotiate peak bandwidth"
            )
        if new_peak_slots < conn.avg_slots:
            return AdmissionDecision(
                False,
                f"peak {new_peak_slots} below reserved average "
                f"{conn.avg_slots}",
            )
        delta = new_peak_slots - conn.peak_slots
        if delta <= 0:
            return AdmissionDecision(True, "peak shrink always fits")
        peak_budget = self.config.round_cycles * self.config.concurrency_factor
        new_peak_in = self._peak_in[conn.in_port] + delta
        new_peak_out = self._peak_out[conn.out_port] + delta
        if new_peak_in > peak_budget:
            return AdmissionDecision(
                False,
                f"input link {conn.in_port}: renegotiated peak "
                f"{new_peak_in} > round * concurrency {peak_budget:.0f}",
            )
        if new_peak_out > peak_budget:
            return AdmissionDecision(
                False,
                f"output link {conn.out_port}: renegotiated peak "
                f"{new_peak_out} > round * concurrency {peak_budget:.0f}",
            )
        return AdmissionDecision(True, "renegotiated peak fits")

    def commit_peak(self, conn: Connection, new_peak_slots: int) -> None:
        """Apply an accepted peak renegotiation to the ledgers."""
        delta = new_peak_slots - conn.peak_slots
        self._peak_in[conn.in_port] += delta
        self._peak_out[conn.out_port] += delta
        if self._peak_in.min() < 0 or self._peak_out.min() < 0:
            raise RuntimeError("peak accounting went negative on renegotiation")

    # ------------------------------------------------------------------

    def reserved_avg_load(self, in_port: int) -> float:
        """Fraction of an input link's bandwidth reserved on average."""
        return float(self._avg_in[in_port]) / self.config.round_cycles

    def reserved_avg_load_out(self, out_port: int) -> float:
        """Fraction of an output link's bandwidth reserved on average."""
        return float(self._avg_out[out_port]) / self.config.round_cycles

    def reserved_peak_load(self, in_port: int) -> float:
        """Fraction of an input link's peak budget reserved (VBR)."""
        budget = self.config.round_cycles * self.config.concurrency_factor
        return float(self._peak_in[in_port]) / budget

    def reserved_peak_load_out(self, out_port: int) -> float:
        """Fraction of an output link's peak budget reserved (VBR)."""
        budget = self.config.round_cycles * self.config.concurrency_factor
        return float(self._peak_out[out_port]) / budget

    def reservation_vectors(self) -> dict[str, tuple[int, ...]]:
        """Snapshot of all four per-link reservation ledgers.

        Plain tuples, so callers can compare before/after states exactly
        (the release-restores-reservations property test) without aliasing
        the live arrays.
        """
        return {
            "avg_in": tuple(int(x) for x in self._avg_in),
            "avg_out": tuple(int(x) for x in self._avg_out),
            "peak_in": tuple(int(x) for x in self._peak_in),
            "peak_out": tuple(int(x) for x in self._peak_out),
        }

    def audit(self, table: ConnectionTable) -> None:
        """Assert the ledgers equal what the connection table implies.

        Recomputes the four reservation vectors from scratch off the live
        table and raises if any entry disagrees — the invariant the fault
        recovery path and the session signaling layer both rely on:
        every reserve goes through :meth:`commit` and every free through
        :meth:`release`, so the two views can never drift.
        """
        n = self.config.num_ports
        avg_in = np.zeros(n, dtype=np.int64)
        avg_out = np.zeros(n, dtype=np.int64)
        peak_in = np.zeros(n, dtype=np.int64)
        peak_out = np.zeros(n, dtype=np.int64)
        for conn in table:
            if conn.traffic_class is TrafficClass.BEST_EFFORT:
                continue
            avg_in[conn.in_port] += conn.avg_slots
            avg_out[conn.out_port] += conn.avg_slots
            if conn.traffic_class is TrafficClass.VBR:
                peak_in[conn.in_port] += conn.peak_slots
                peak_out[conn.out_port] += conn.peak_slots
        for name, ledger, derived in (
            ("avg_in", self._avg_in, avg_in),
            ("avg_out", self._avg_out, avg_out),
            ("peak_in", self._peak_in, peak_in),
            ("peak_out", self._peak_out, peak_out),
        ):
            if not np.array_equal(ledger, derived):
                raise RuntimeError(
                    f"admission ledger {name} disagrees with connection "
                    f"table: ledger={ledger.tolist()} "
                    f"derived={derived.tolist()}"
                )

    def headroom(self, in_port: int, out_port: int) -> int:
        """Average slots still available across both links."""
        round_cycles = self.config.round_cycles
        return int(
            min(
                round_cycles - self._avg_in[in_port],
                round_cycles - self._avg_out[out_port],
            )
        )
