"""A1 — ablation: the COA port-ordering rule.

The paper's port ordering serves outputs "first by level and then in
increasing order of conflict within a level", arguing that
most-conflicted outputs can be matched last because they keep the most
matching opportunities.  This ablation swaps the rule for level-only,
conflict-only, and random orderings (same candidates, same priority
arbitration) and measures what the rule buys at high CBR load.

Expected shape: every variant keeps the crossbar out of throughput
collapse (the candidates and priority arbitration do the heavy lifting),
but orderings that ignore conflicts give up matching opportunities and
show up as extra delay/backlog versus the paper's rule.
"""

import pytest

from conftest import BENCH_SEED
from repro.analysis import render_table
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload

ORDERINGS = ("coa", "coa-level-only", "coa-conflict-only", "coa-random-order")
LOAD = 0.85


def _run():
    scale = get_scale("ci")
    control = RunControl(scale.cbr_cycles, scale.cbr_warmup)
    out = {}
    for arbiter in ORDERINGS:
        sim = SingleRouterSim(default_config(), arbiter=arbiter, seed=BENCH_SEED)
        workload = build_cbr_workload(sim.router, LOAD, sim.rng.workload)
        out[arbiter] = sim.run(workload, control)
    return out


@pytest.mark.benchmark(group="ablation-ordering")
def test_ablation_port_ordering(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    rows = [
        [name, r.offered_load * 100, r.throughput * 100,
         r.flit_delay_us["overall"], r.backlog]
        for name, r in results.items()
    ]
    print(render_table(
        ["ordering", "offered %", "throughput %", "mean delay us", "backlog"],
        rows,
        title=f"A1 — COA port-ordering rule at {LOAD:.0%} CBR load",
    ))
    paper_rule = results["coa"]
    # With 4 candidate levels + priority arbitration, no ordering variant
    # collapses throughput at this load...
    for name, r in results.items():
        assert r.normalized_throughput > 0.95, name
    # ...and the paper's rule is never materially worse than the
    # alternatives on mean delay (it exists to not waste matchings).
    best_other = min(
        r.flit_delay_us["overall"]
        for name, r in results.items()
        if name != "coa"
    )
    assert paper_rule.flit_delay_us["overall"] <= 2.0 * best_other
