"""A7 — ablation: VC buffer depth (and the credit loop).

The paper limits the MMR's buffers to "a few flits per virtual channel",
relying on credit flow control and the NIC's host-memory-backed queues.
This ablation sweeps the per-VC depth at high CBR load under COA.

Expected shape: depth 1 serializes the credit loop (a VC cannot receive
a new flit until the previous one's credit returns), throttling busy
connections; a few flits of depth cover the credit round trip and
recover full throughput; beyond that, more buffering buys nothing but
silicon — supporting the paper's "few flits" choice.
"""

import pytest

from conftest import BENCH_SEED
from repro.analysis import render_table
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload

DEPTHS = (1, 2, 4, 8)
LOAD = 0.85


def _run():
    scale = get_scale("ci")
    control = RunControl(scale.cbr_cycles, scale.cbr_warmup)
    out = {}
    for depth in DEPTHS:
        config = default_config(vc_buffer_depth=depth)
        sim = SingleRouterSim(config, arbiter="coa", seed=BENCH_SEED)
        workload = build_cbr_workload(sim.router, LOAD, sim.rng.workload)
        out[depth] = sim.run(workload, control)
    return out


@pytest.mark.benchmark(group="ablation-depth")
def test_ablation_buffer_depth(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    rows = [
        [depth, r.throughput * 100, r.flit_delay_us["overall"], r.backlog]
        for depth, r in results.items()
    ]
    print(render_table(
        ["VC buffer depth", "throughput %", "mean delay us", "backlog"],
        rows,
        title=f"A7 — per-VC buffer depth under COA at {LOAD:.0%} CBR load "
              "(credit return delay = 1 cycle)",
    ))

    # The paper's few-flit depth delivers the offered load...
    assert results[4].normalized_throughput > 0.97
    # ...and doubling it buys essentially nothing.
    assert results[8].throughput == pytest.approx(
        results[4].throughput, rel=0.02
    )
    assert results[8].flit_delay_us["overall"] <= \
        1.5 * results[4].flit_delay_us["overall"]
    # Depth never *hurts* throughput (weak monotonicity).
    depths = list(DEPTHS)
    for a, b in zip(depths, depths[1:]):
        assert results[b].throughput >= results[a].throughput * 0.98
