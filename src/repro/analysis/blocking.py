"""Blocking-probability analysis for session-churn experiments.

The dynamic-session experiments (``repro.sessions``) measure the classic
teletraffic quantity the static figures cannot: the probability that the
admission controller *blocks* an arriving connection as a function of
offered load.  This module provides the Erlang-B reference curve and the
table renderer for the blocking-vs-load figure class.

Erlang-B applies exactly when sessions arrive Poisson, hold for a
generally-distributed time (the formula is insensitive to the holding
distribution), and the link behaves as ``servers`` identical circuits —
a good model for a single-class CBR mix where every session reserves the
same slot count, and a sanity reference otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from .stats import wilson_interval
from .tables import render_table

__all__ = ["erlang_b", "BlockingPoint", "render_blocking_table"]


def erlang_b(offered_erlangs: float, servers: int) -> float:
    """Erlang-B blocking probability for ``offered_erlangs`` on ``servers``.

    Uses the standard iterative recursion ``B(0) = 1``,
    ``B(k) = a*B(k-1) / (k + a*B(k-1))`` — numerically stable for any
    load (no factorials).
    """
    if offered_erlangs < 0:
        raise ValueError("offered load must be >= 0")
    if servers < 0:
        raise ValueError("servers must be >= 0")
    if offered_erlangs == 0:
        return 0.0
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_erlangs * b / (k + offered_erlangs * b)
    return b


@dataclass(frozen=True)
class BlockingPoint:
    """One measured (policy, load) point of a blocking-probability sweep."""

    policy: str
    #: Offered session load in erlangs (mean concurrently-wanted sessions).
    offered_erlangs: float
    offered_sessions: int
    blocked_sessions: int
    #: Erlang-B reference for the same offered load, if a circuit count
    #: is well-defined for the mix (single-class); NaN otherwise.
    erlang_b_reference: float = float("nan")

    @property
    def blocking_probability(self) -> float:
        if self.offered_sessions == 0:
            return float("nan")
        return self.blocked_sessions / self.offered_sessions

    @property
    def wilson_95(self) -> tuple[float, float]:
        return wilson_interval(self.blocked_sessions, self.offered_sessions)


def render_blocking_table(
    points: list[BlockingPoint], title: str | None = None
) -> str:
    """The Erlang-style figure as a text table.

    Rows are sorted by (policy, offered load); the Wilson 95% interval
    column makes short-run noise visible next to the point estimate.
    """
    if not points:
        raise ValueError("no blocking points to render")
    headers = [
        "policy",
        "offered (erl)",
        "sessions",
        "blocked",
        "P(block)",
        "wilson 95%",
        "erlang-B ref",
    ]
    rows = []
    for p in sorted(points, key=lambda p: (p.policy, p.offered_erlangs)):
        low, high = p.wilson_95
        rows.append(
            [
                p.policy,
                p.offered_erlangs,
                p.offered_sessions,
                p.blocked_sessions,
                p.blocking_probability,
                f"[{low:.3f}, {high:.3f}]",
                p.erlang_b_reference,
            ]
        )
    return render_table(headers, rows, title=title)
