"""Tests for repro.faults: injection, detection, recovery, degradation.

Covers the robustness subsystem end to end: deterministic replay of
fault schedules, CRC detection of corrupted flits, credit-watchdog
resync and escalation, dead-port teardown/re-admission, QoS-ordered
degradation, the simulation watchdog, and multi-router rerouting.
"""

import numpy as np
import pytest

from repro.faults import (
    LEVEL_CLAMP_VBR_PEAK,
    LEVEL_NORMAL,
    LEVEL_SHED_BEST_EFFORT,
    DegradationPolicy,
    FaultConfig,
    FaultKind,
    FaultSchedule,
    FaultySingleRouterSim,
    SimWatchdog,
    WatchdogError,
    corrupt_word,
    crc8,
    flit_words,
    verify,
)
from repro.network.multirouter import MultiRouterNetwork
from repro.network.topology import mesh, ring
from repro.router import MMRouter, RouterConfig, TrafficClass
from repro.router.credits import CreditState, CreditWatchdog
from repro.sim.engine import RngStreams, RunControl
from repro.sim.experiments import default_config
from repro.traffic.mixes import build_besteffort_workload, build_cbr_workload


def make_sim(seed=0, faults=None, vcs=8, ports=4):
    config = default_config(num_ports=ports, vcs_per_link=vcs)
    return FaultySingleRouterSim(config, seed=seed, faults=faults)


def build_mixed_workload(sim, cbr_load=0.5, be_load=0.15):
    workload = build_cbr_workload(sim.router, cbr_load, sim.rng.workload)
    for item in build_besteffort_workload(
        sim.router, be_load, sim.rng.workload
    ).loads:
        workload.add(item)
    return workload


# ----------------------------------------------------------------------
# CRC integrity layer
# ----------------------------------------------------------------------


class TestIntegrity:
    def test_intact_flit_verifies(self):
        words = flit_words(2, 7, 12345, 9, True)
        assert verify(words, crc8(words))

    def test_every_single_bit_flip_is_detected(self):
        words = flit_words(1, 3, 987654, 4, False)
        crc = crc8(words)
        for bit in range(len(words) * 64):
            assert not verify(corrupt_word(words, bit), crc), f"bit {bit}"

    def test_corrupt_word_out_of_range(self):
        words = flit_words(0, 0, 0, -1, False)
        with pytest.raises(ValueError):
            corrupt_word(words, len(words) * 64)

    def test_distinct_flits_distinct_words(self):
        assert flit_words(0, 1, 10, -1, False) != flit_words(1, 0, 10, -1, False)


# ----------------------------------------------------------------------
# Config and schedule
# ----------------------------------------------------------------------


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(corruption_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(credit_loss_rate=0.6, credit_dup_rate=0.6)
        with pytest.raises(ValueError):
            FaultConfig(shed_be_faults=10, clamp_vbr_faults=5)

    def test_any_faults(self):
        assert not FaultConfig().any_faults
        assert FaultConfig(dead_port=1).any_faults
        assert FaultConfig(corruption_rate=0.1).has_random_faults


class TestFaultSchedule:
    def test_sequence_numbers_and_counts(self):
        sched = FaultSchedule()
        sched.record(5, FaultKind.CREDIT_LOSS, "port=0 vc=1")
        sched.record(9, FaultKind.CREDIT_LOSS, "port=0 vc=2", "x")
        assert len(sched) == 2
        assert sched.count(FaultKind.CREDIT_LOSS) == 2
        assert sched.events[0].seq == 0 and sched.events[1].seq == 1
        assert "| x" in sched.lines()[1]
        assert sched.counts_by_kind() == {"inject.credit_loss": 2}


# ----------------------------------------------------------------------
# Determinism contract
# ----------------------------------------------------------------------


class TestDeterminism:
    FAULTS = FaultConfig(
        corruption_rate=0.01,
        credit_loss_rate=0.005,
        credit_dup_rate=0.005,
        stuck_slot_rate=0.002,
        dead_port=2,
        dead_port_cycle=700,
    )

    def _run(self, seed):
        sim = make_sim(seed=seed, faults=self.FAULTS)
        workload = build_mixed_workload(sim)
        result = sim.run(workload, RunControl(cycles=2500))
        return sim, result

    def test_same_seed_byte_identical_schedule_and_metrics(self):
        sim_a, res_a = self._run(7)
        sim_b, res_b = self._run(7)
        assert sim_a.schedule.text() == sim_b.schedule.text()
        assert res_a.fault == res_b.fault
        assert res_a.flits == res_b.flits
        assert res_a.flit_delay_us == res_b.flit_delay_us
        assert res_a.throughput == res_b.throughput
        assert res_a.degradation_level == res_b.degradation_level

    def test_different_seed_differs(self):
        sim_a, _ = self._run(7)
        sim_b, _ = self._run(8)
        assert sim_a.schedule.text() != sim_b.schedule.text()

    def test_faults_rng_role_is_stable_and_separate(self):
        a, b = RngStreams(42), RngStreams(42)
        assert a.faults.random() == b.faults.random()
        c = RngStreams(42)
        c.arbiter.random()  # draws on one role must not shift another
        assert c.faults.random() == RngStreams(42).faults.random()


# ----------------------------------------------------------------------
# Healthy runs are untouched
# ----------------------------------------------------------------------


class TestHealthyRun:
    def test_no_faults_no_events_zero_counters(self):
        sim = make_sim(seed=3)
        workload = build_mixed_workload(sim)
        result = sim.run(workload, RunControl(cycles=1500))
        assert len(sim.schedule) == 0
        assert all(v == 0 for v in result.fault.values())
        assert result.degradation_level == LEVEL_NORMAL
        assert result.throughput > 0


# ----------------------------------------------------------------------
# Credit faults: loss, duplication, watchdog recovery
# ----------------------------------------------------------------------


class TestCreditFaultRecovery:
    def test_lost_credits_resync_and_traffic_survives(self):
        faults = FaultConfig(credit_loss_rate=0.01, resync_timeout=8)
        sim = make_sim(seed=5, faults=faults)
        workload = build_mixed_workload(sim)
        result = sim.run(workload, RunControl(cycles=3000))
        assert result.fault["injected_credit_loss"] > 0
        assert result.fault["credit_resyncs"] > 0
        assert sim.schedule.count(FaultKind.CREDIT_DEFICIT) > 0
        assert result.throughput > 0
        # After recovery the plain ledger must balance.
        sim.router.credits.check_conservation(sim.router.vc_memory.occupancy)

    def test_duplicate_credits_never_overflow_buffers(self):
        faults = FaultConfig(credit_dup_rate=0.02)
        sim = make_sim(seed=6, faults=faults)
        workload = build_mixed_workload(sim)
        result = sim.run(workload, RunControl(cycles=3000))
        injected = result.fault["injected_credit_dup"]
        assert injected > 0
        handled = (
            result.fault["duplicates_discarded"]
            + sim.schedule.count(FaultKind.CREDIT_SURPLUS)
        )
        assert handled > 0
        sim.router.credits.check_conservation(sim.router.vc_memory.occupancy)


class TestCreditWatchdogUnit:
    def _state(self):
        cfg = RouterConfig(
            num_ports=2,
            vcs_per_link=4,
            vc_buffer_depth=3,
            credit_return_delay=1,
            candidate_levels=1,
        )
        return CreditState(cfg), np.zeros((2, 4), dtype=np.int64)

    def test_deficit_waits_for_timeout_then_resyncs(self):
        state, occ = self._state()
        dog = CreditWatchdog(state, timeout=4, max_retries=2)
        state.consume(0, 1)
        occ_now = occ.copy()
        state.fault_lose(0, 1)  # flit left, credit destroyed
        assert dog.scan(10, occ_now) == []  # grace period
        events = dog.scan(14, occ_now)
        assert events == [("deficit_resync", 0, 1, 1)]
        assert state.available(0, 1) == 3
        state.check_conservation(occ_now)

    def test_backoff_and_giveup(self):
        state, occ = self._state()
        dog = CreditWatchdog(state, timeout=2, max_retries=1, backoff=2)
        now = 0
        # First deficit: resync after timeout=2.
        state.consume(0, 0)
        state.fault_lose(0, 0)
        dog.scan(now, occ)
        events = dog.scan(now + 2, occ)
        assert events[0][0] == "deficit_resync"
        # Second deficit on the same VC: backoff doubles the wait.
        state.consume(0, 0)
        state.fault_lose(0, 0)
        assert dog.scan(10, occ) == []
        assert dog.scan(12, occ) == []  # 2 * 2**1 = 4 cycles now
        events = dog.scan(14, occ)
        assert events == [("giveup", 0, 0, 0)]
        # Given-up VCs stay quiet until reset.
        assert dog.scan(30, occ) == []
        dog.reset(0, 0)
        dog.scan(31, occ)
        assert dog.scan(40, occ)[0][0] == "deficit_resync"

    def test_surplus_resyncs_immediately_after_landing(self):
        state, occ = self._state()
        dog = CreditWatchdog(state, timeout=4)
        state.consume(1, 2)
        occ[1, 2] = 1  # the forwarded flit sits in the router buffer
        state.fault_duplicate(1, 2, now=0)
        # While the duplicate is still on the wire there is no visible
        # drift — the counter matches what a healthy NIC would show.
        assert dog.scan(0, occ) == []
        state.deliver(1)  # duplicate lands, counter now inflated
        events = dog.scan(1, occ)
        assert events and events[0][0] == "surplus_resync"
        state.check_conservation(occ)


# ----------------------------------------------------------------------
# Flit corruption: CRC + NACK-and-retransmit
# ----------------------------------------------------------------------


class TestCorruptionRecovery:
    def test_every_corruption_detected_and_retransmitted(self):
        faults = FaultConfig(corruption_rate=0.02)
        sim = make_sim(seed=11, faults=faults)
        workload = build_mixed_workload(sim)
        result = sim.run(workload, RunControl(cycles=2500))
        injected = result.fault["injected_corruption"]
        assert injected > 0
        assert result.fault["crc_detected"] == injected
        assert result.fault["retransmissions"] == injected
        # Retransmission wastes cycles but loses nothing.
        assert result.fault["flits_dropped"] == 0
        assert result.throughput > 0


# ----------------------------------------------------------------------
# Dead output port: teardown + re-admission
# ----------------------------------------------------------------------


class TestDeadPort:
    def test_victims_torn_down_and_readmitted_elsewhere(self):
        faults = FaultConfig(dead_port=1, dead_port_cycle=600)
        sim = make_sim(seed=4, faults=faults)
        workload = build_mixed_workload(sim, cbr_load=0.5)
        victims_before = len(sim.router.table.on_output(1))
        assert victims_before > 0
        result = sim.run(workload, RunControl(cycles=2500))
        assert result.fault["injected_dead_port"] == 1
        assert result.fault["teardowns"] >= victims_before
        assert (
            result.fault["readmitted"] + result.fault["connections_dropped"]
            == result.fault["teardowns"]
        )
        # Nothing may be routed through the dead port afterwards.
        assert sim.router.table.on_output(1) == []
        assert sim.dead_port == 1
        # Capacity loss keeps best-effort shed for the rest of the run.
        assert result.degradation_level >= LEVEL_SHED_BEST_EFFORT

    def test_dead_port_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_sim(faults=FaultConfig(dead_port=9), ports=4)


# ----------------------------------------------------------------------
# Graceful degradation policy
# ----------------------------------------------------------------------


class TestDegradationPolicy:
    CFG = FaultConfig(
        window=100, shed_be_faults=2, clamp_vbr_faults=4, restore_after=50
    )

    def test_escalates_in_qos_order_and_restores_stepwise(self):
        policy = DegradationPolicy(self.CFG, FaultSchedule())
        assert policy.update(0) == LEVEL_NORMAL
        policy.note_fault(1)
        policy.note_fault(2)
        assert policy.update(2) == LEVEL_SHED_BEST_EFFORT
        policy.note_fault(3)
        policy.note_fault(4)
        assert policy.update(4) == LEVEL_CLAMP_VBR_PEAK
        assert policy.max_level == LEVEL_CLAMP_VBR_PEAK
        assert policy.escalations == 2
        # Still shedding while the faults sit inside the window.
        assert policy.update(4 + 50) == LEVEL_CLAMP_VBR_PEAK
        # Once they age out: one level per quiet period, not straight to
        # normal.
        assert policy.update(110) == LEVEL_SHED_BEST_EFFORT
        assert policy.update(161) == LEVEL_NORMAL

    def test_floor_holds_level_through_quiet_periods(self):
        policy = DegradationPolicy(self.CFG, FaultSchedule())
        policy.set_floor(LEVEL_SHED_BEST_EFFORT, 0)
        assert policy.level == LEVEL_SHED_BEST_EFFORT
        assert policy.update(10_000) == LEVEL_SHED_BEST_EFFORT
        policy.clear_floor(10_001)
        assert policy.update(10_002) == LEVEL_NORMAL

    def test_transitions_are_logged(self):
        sched = FaultSchedule()
        policy = DegradationPolicy(self.CFG, sched)
        policy.note_fault(1)
        policy.note_fault(1)
        policy.update(1)
        policy.update(1000)
        assert sched.count(FaultKind.DEGRADE) == 1
        assert sched.count(FaultKind.RESTORE) == 1

    def test_best_effort_shed_under_sustained_faults(self):
        # Aggressive credit loss must trip level 1 and stop best-effort
        # injection while CBR keeps flowing.
        faults = FaultConfig(
            credit_loss_rate=0.05, window=400, shed_be_faults=3,
            restore_after=5000,
        )
        sim = make_sim(seed=9, faults=faults)
        workload = build_mixed_workload(sim, cbr_load=0.4, be_load=0.2)
        result = sim.run(workload, RunControl(cycles=3000))
        assert result.degradation_level >= LEVEL_SHED_BEST_EFFORT
        assert sim.schedule.count(FaultKind.DEGRADE) >= 1
        assert result.flits.get("cbr-low", 0) + result.flits.get(
            "cbr-medium", 0
        ) + result.flits.get("cbr-high", 0) >= 0  # CBR groups still present
        assert result.throughput > 0


# ----------------------------------------------------------------------
# Simulation watchdog
# ----------------------------------------------------------------------


class TestSimWatchdog:
    def _router(self):
        cfg = RouterConfig(
            num_ports=2,
            vcs_per_link=4,
            vc_buffer_depth=2,
            candidate_levels=1,
            flit_cycles_per_round=400,
        )
        router = MMRouter(cfg)
        conn = router.establish(0, 1, TrafficClass.CBR, 10).connection
        router.vc_memory.push(conn.in_port, conn.vc, 0, -1, False, 0)
        return router

    def test_conservation_violation_aborts_with_dump(self):
        router = self._router()
        sched = FaultSchedule()
        dog = SimWatchdog(router, sched, stall_limit=100, check_interval=1)
        with pytest.raises(WatchdogError) as exc:
            dog.check(now=2, injected=5, departed=0, dropped=0)
        assert "conservation" in str(exc.value)
        assert exc.value.diagnostics  # router-state dump attached
        assert sched.count(FaultKind.STALL) == 1

    def test_stall_detected_after_limit(self):
        router = self._router()
        dog = SimWatchdog(router, FaultSchedule(), stall_limit=50,
                          check_interval=10)
        dog.note_progress(0)
        dog.check(now=40, injected=1, departed=0, dropped=0)  # below limit
        with pytest.raises(WatchdogError) as exc:
            dog.check(now=60, injected=1, departed=0, dropped=0)
        assert "livelock" in str(exc.value)

    def test_progress_resets_the_stall_clock(self):
        router = self._router()
        dog = SimWatchdog(router, FaultSchedule(), stall_limit=50,
                          check_interval=10)
        dog.note_progress(55)
        dog.check(now=100, injected=1, departed=0, dropped=0)  # no raise


# ----------------------------------------------------------------------
# Multi-router failures: reroute / drop
# ----------------------------------------------------------------------


class TestNetworkFailures:
    def _net(self, topo=None):
        config = default_config(num_ports=5, vcs_per_link=8)
        return MultiRouterNetwork(
            topo or mesh(2, 2), config, schedule=FaultSchedule()
        )

    def test_fail_link_reroutes_around_it(self):
        net = self._net()
        conn = net.establish(0, 3, TrafficClass.CBR, avg_slots=200)
        assert conn.router_path == (0, 1, 3)
        net.fail_link(0, 1, now=10)
        assert net.rerouted == 1
        new = net.connections[conn.net_conn_id]
        assert new.router_path == (0, 2, 3)
        assert new.net_conn_id == conn.net_conn_id
        # Traffic still flows end to end on the new path.
        rng = np.random.default_rng(0)
        for now in range(300):
            if now % 4 == 0:
                net.inject(conn, now)
            net.step(now, rng)
        assert net.delivered > 0
        assert FaultKind.REROUTE in {e.kind for e in net.schedule.events}

    def test_fail_link_migrates_nic_backlog(self):
        net = self._net()
        conn = net.establish(0, 3, TrafficClass.CBR, avg_slots=200)
        for i in range(5):
            net.inject(conn, i)
        net.fail_link(0, 1, now=0)
        new = net.connections[conn.net_conn_id]
        nic = net.routers[0].nics[new.hops[0].in_port]
        assert nic.queue_lengths[new.hops[0].vc] == 5

    def test_fail_router_drops_endpoint_connections(self):
        net = self._net()
        conn = net.establish(0, 1, TrafficClass.CBR, avg_slots=100)
        net.fail_router(1, now=5)
        assert net.dropped_connections == 1
        assert conn.net_conn_id in net._dropped_ids
        # Injecting into a dropped connection loses the flit, loudly
        # counted, instead of corrupting a freed VC.
        before = net.lost_flits
        net.inject(conn, 10)
        assert net.lost_flits == before + 1

    def test_fail_router_reroutes_transit_connections(self):
        net = self._net()
        conn = net.establish(0, 3, TrafficClass.CBR, avg_slots=100)
        net.fail_router(1, now=5)
        assert net.rerouted == 1
        assert net.connections[conn.net_conn_id].router_path == (0, 2, 3)

    def test_no_surviving_path_drops_connection(self):
        config = default_config(num_ports=4, vcs_per_link=8)
        net = MultiRouterNetwork(ring(3), config, schedule=FaultSchedule())
        conn = net.establish(0, 1, TrafficClass.CBR, avg_slots=100)
        net.fail_link(0, 1, now=0)  # reroutes 0-2-1
        assert net.rerouted == 1
        net.fail_router(2, now=1)  # no path remains
        assert net.dropped_connections == 1
        assert conn.net_conn_id in net._dropped_ids

    def test_dead_router_swallows_in_flight_flits(self):
        net = self._net()
        conn = net.establish(0, 3, TrafficClass.CBR, avg_slots=200)
        rng = np.random.default_rng(1)
        for now in range(40):
            net.inject(conn, now)
            net.step(now, rng)
        lost_before = net.lost_flits
        net.fail_router(1, now=40)
        # Flits buffered inside router 1 (and flying toward it) are lost.
        assert net.lost_flits >= lost_before
        # The network keeps stepping without touching the dead router.
        for now in range(40, 80):
            net.step(now, rng)

    def test_unknown_link_rejected(self):
        net = self._net()
        with pytest.raises(ValueError):
            net.fail_link(0, 3)  # diagonal: no such mesh link
