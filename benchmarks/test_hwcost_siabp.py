"""H1 — §3.1: hardware cost of SIABP vs IABP priority logic.

The paper reports (citing its ref. [4], where the VHDL synthesis was
done) that replacing IABP's divider with SIABP's shifter logic cuts
silicon area by roughly an order of magnitude and delay by ~38x.  We
rebuild the comparison from first-principles gate counts (DESIGN.md §2
substitution) at the bit widths the MMR needs, plus the arbiter datapaths
for the paper's §6 outlook (COA costs more hardware than WFA — the price
of priority awareness).
"""

import pytest

from repro.analysis import render_table
from repro.core import hwcost

DELAY_BITS = 20     # queuing-delay counter (~1M cycles)
PRIORITY_BITS = 24  # slots (<= ~20 bits) + headroom


def _build():
    iabp = hwcost.iabp_cost(DELAY_BITS, PRIORITY_BITS)
    siabp = hwcost.siabp_cost(DELAY_BITS, PRIORITY_BITS)
    coa = hwcost.coa_cost(num_ports=4, levels=4, priority_bits=PRIORITY_BITS)
    wfa = hwcost.wfa_cost(num_ports=4)
    return iabp, siabp, coa, wfa


@pytest.mark.benchmark(group="hwcost")
def test_hwcost_siabp_vs_iabp(benchmark):
    iabp, siabp, coa, wfa = benchmark.pedantic(_build, rounds=1, iterations=1)
    print()
    print(render_table(
        ["block", "area (GE)", "delay (gate levels)"],
        [
            ["IABP priority update (per VC)", iabp.area_ge, iabp.delay_levels],
            ["SIABP priority update (per VC)", siabp.area_ge, siabp.delay_levels],
            ["COA arbiter (4x4, 4 levels)", coa.area_ge, coa.delay_levels],
            ["WFA arbiter (4x4)", wfa.area_ge, wfa.delay_levels],
        ],
        title="H1 — hardware cost model (gate equivalents / gate levels)",
    ))
    area_ratio = iabp.area_ge / siabp.area_ge
    delay_ratio = iabp.delay_levels / siabp.delay_levels
    print(f"\nIABP/SIABP area ratio:  {area_ratio:.1f}x "
          f"(paper's ref [4]: ~order of magnitude)")
    print(f"IABP/SIABP delay ratio: {delay_ratio:.1f}x (paper: ~38x)")

    # Shape claims: SIABP is dramatically smaller and faster; the gap is
    # the qualitative reproduction target, not the exact silicon numbers.
    assert area_ratio > 5.0
    assert delay_ratio > 4.0
    # §6 outlook: the priority-aware COA costs more hardware than the
    # symmetric WFA array.
    assert coa.area_ge > wfa.area_ge
    assert coa.delay_levels > wfa.delay_levels
