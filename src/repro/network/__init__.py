"""Multi-router MMR networks (paper §6 future-work extension)."""

from .experiments import (
    NetworkRunResult,
    network_load_experiment,
    run_network_load,
)
from .multirouter import MultiRouterNetwork, NetworkConnection
from .topology import (
    Topology,
    fat_tree,
    fat_tree_edge_routers,
    from_edges,
    mesh,
    ring,
    torus,
)

__all__ = [
    "NetworkRunResult",
    "network_load_experiment",
    "run_network_load",
    "MultiRouterNetwork",
    "NetworkConnection",
    "Topology",
    "from_edges",
    "mesh",
    "ring",
    "torus",
    "fat_tree",
    "fat_tree_edge_routers",
]
