"""Selection matrix and conflict vector (paper Fig. 3).

The switch scheduler's working state is the **selection matrix**: a
``(levels * num_ports) x num_ports`` array whose first ``num_ports`` rows
hold the level-0 (highest priority) candidate requests of every input
link, the next ``num_ports`` rows the level-1 requests, and so on.  Row
``level * N + out_port``, column ``in_port`` is non-null iff input
``in_port``'s level-``level`` candidate requests output ``out_port``; the
entry stores the candidate's priority.

The **conflict vector** has one entry per row: the number of non-null
entries, i.e. how many inputs are competing for that output at that
candidate level.  The Candidate-Order Arbiter's port ordering is computed
from this vector.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .matching import Candidate

__all__ = ["SelectionMatrix"]


class SelectionMatrix:
    """Mutable selection matrix with incremental row/column dropping."""

    def __init__(self, num_ports: int, levels: int) -> None:
        if num_ports <= 0 or levels <= 0:
            raise ValueError("num_ports and levels must be positive")
        self.num_ports = num_ports
        self.levels = levels
        rows = levels * num_ports
        # Priority of the request occupying each cell; NaN = null entry.
        # Object dtype keeps integer priorities exact (a float64 cell
        # would collapse distinct keys above 2**53 and desync this
        # reference path from the exact fast paths).
        self._prio = np.full((rows, num_ports), np.nan, dtype=object)
        # VC carried by each request (for grant construction); -1 = null.
        self._vc = np.full((rows, num_ports), -1, dtype=np.int64)

    @classmethod
    def from_candidates(
        cls, candidates: Sequence[Sequence[Candidate]], num_ports: int, levels: int
    ) -> "SelectionMatrix":
        """Build the matrix from per-port candidate lists."""
        matrix = cls(num_ports, levels)
        for port_cands in candidates:
            for cand in port_cands:
                if cand.level >= levels:
                    raise ValueError(
                        f"candidate level {cand.level} exceeds matrix levels "
                        f"{levels}"
                    )
                matrix.place(cand)
        return matrix

    def place(self, cand: Candidate) -> None:
        """Insert one candidate request."""
        row = cand.level * self.num_ports + cand.out_port
        if self._vc[row, cand.in_port] != -1:
            raise ValueError(
                f"input {cand.in_port} already has a level-{cand.level} "
                "request"
            )
        # An input contributes at most one request per level; enforce it.
        level_rows = slice(
            cand.level * self.num_ports, (cand.level + 1) * self.num_ports
        )
        if (self._vc[level_rows, cand.in_port] != -1).any():
            raise ValueError(
                f"input {cand.in_port} already has a level-{cand.level} "
                "request on another output"
            )
        self._prio[row, cand.in_port] = cand.priority
        self._vc[row, cand.in_port] = cand.vc

    # ------------------------------------------------------------------

    def conflict_vector(self) -> np.ndarray:
        """(levels * N,) count of non-null entries per row (Fig. 3)."""
        return (self._vc != -1).sum(axis=1)

    def row_requests(
        self, level: int, out_port: int
    ) -> list[tuple[int, int, int | float]]:
        """Requests on one row as ``(in_port, vc, priority)`` triples.

        Priorities pass through exactly: ``int`` for integer-valued
        schemes, ``float`` for float-valued ones.
        """
        row = level * self.num_ports + out_port
        ins = np.flatnonzero(self._vc[row] != -1)
        return [(int(i), int(self._vc[row, i]), self._prio[row, i]) for i in ins]

    def requests_for_output(
        self, out_port: int
    ) -> list[tuple[int, int, int, int | float]]:
        """All requests for an output, as ``(level, in_port, vc, prio)``."""
        out: list[tuple[int, int, int, int | float]] = []
        for level in range(self.levels):
            for in_port, vc, prio in self.row_requests(level, out_port):
                out.append((level, in_port, vc, prio))
        return out

    def drop_input(self, in_port: int) -> None:
        """Drop every request made by an input port (it got matched)."""
        self._prio[:, in_port] = np.nan
        self._vc[:, in_port] = -1

    def drop_output(self, out_port: int) -> None:
        """Drop every request for an output port (it got matched)."""
        rows = np.arange(self.levels) * self.num_ports + out_port
        self._prio[rows, :] = np.nan
        self._vc[rows, :] = -1

    def has_requests(self) -> bool:
        return bool((self._vc != -1).any())

    def total_requests(self) -> int:
        return int((self._vc != -1).sum())

    # ------------------------------------------------------------------

    def render(self) -> str:
        """ASCII rendering in the layout of the paper's Fig. 3."""
        lines: list[str] = []
        header = "        " + " ".join(f"in{i}" for i in range(self.num_ports))
        lines.append(header + "   conflicts")
        conflicts = self.conflict_vector()
        for level in range(self.levels):
            lines.append(f"-- level {level} candidates --")
            for out_port in range(self.num_ports):
                row = level * self.num_ports + out_port
                cells = []
                for in_port in range(self.num_ports):
                    vc = self._vc[row, in_port]
                    cells.append(" . " if vc == -1 else f"{self._prio[row, in_port]:3.0f}")
                lines.append(
                    f"out{out_port}    " + " ".join(cells) + f"   {conflicts[row]}"
                )
        return "\n".join(lines)
