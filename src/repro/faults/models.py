"""Fault model definitions: what can break, and how runs are configured.

The MMR paper evaluates a healthy router; the robustness subsystem asks
what happens to its QoS guarantees when the substrate misbehaves.  The
fault models cover the failure classes a physical interconnect sees:

* **transient phit corruption** — a flit arrives with a bit flipped;
  detected via a per-flit CRC (:mod:`repro.faults.integrity`) and
  recovered by NACK-and-retransmit on the NIC link;
* **lost / duplicated credit returns** — the single-phit credit path is
  unprotected in the MMR; losses deadlock a VC, duplicates overflow it.
  Recovered by counter resync with bounded retry + backoff
  (:class:`repro.router.credits.CreditWatchdog`);
* **stuck VC buffer slot** — a RAM fault pins a head flit for a while;
  the scheduler must route around it;
* **dead output link** (single router) — connections through it are torn
  down and re-admitted elsewhere via the admission controller;
* **dead link / dead router** (multi-router network) — connections are
  rerouted around the failure (:mod:`repro.network.multirouter`).

All randomness draws from the dedicated ``"faults"`` RNG role, so a run
is exactly reproducible from its seed and fault configuration.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass

__all__ = ["FaultKind", "FaultConfig"]


class FaultKind(enum.Enum):
    """Event kinds recorded in a :class:`~repro.faults.FaultSchedule`.

    The ``inject.*`` kinds are faults put into the system; ``detect.*``
    are the detection machinery noticing them; ``recover.*`` are repair
    actions; ``qos.*`` are graceful-degradation transitions.
    """

    DEAD_PORT = "inject.dead_port"
    DEAD_LINK = "inject.dead_link"
    DEAD_ROUTER = "inject.dead_router"
    CORRUPT_FLIT = "inject.corrupt_flit"
    CREDIT_LOSS = "inject.credit_loss"
    CREDIT_DUP = "inject.credit_dup"
    STUCK_SLOT = "inject.stuck_slot"

    CRC_MISMATCH = "detect.crc_mismatch"
    CREDIT_DEFICIT = "detect.credit_deficit"
    CREDIT_SURPLUS = "detect.credit_surplus"
    STALL = "detect.stall"

    RETRANSMIT = "recover.retransmit"
    CREDIT_RESYNC = "recover.credit_resync"
    RESYNC_GIVEUP = "recover.resync_giveup"
    DUP_DISCARD = "recover.dup_discard"
    TEARDOWN = "recover.teardown"
    READMIT = "recover.readmit"
    REROUTE = "recover.reroute"
    CONN_DROPPED = "recover.conn_dropped"
    SLOT_RELEASED = "recover.slot_released"

    DEGRADE = "qos.degrade"
    RESTORE = "qos.restore"


@dataclass(frozen=True)
class FaultConfig:
    """Configuration of one fault-injection run.

    Rates are per-opportunity probabilities: ``corruption_rate`` applies
    to every flit the NIC forwards, the credit rates to every credit
    return a departure schedules, ``stuck_slot_rate`` once per cycle.
    The degradation thresholds count faults inside a sliding ``window``
    of cycles; shedding follows the QoS order best-effort first, then
    VBR peak allowance, never CBR reservations.
    """

    # --- transient fault rates -------------------------------------
    corruption_rate: float = 0.0
    credit_loss_rate: float = 0.0
    credit_dup_rate: float = 0.0
    stuck_slot_rate: float = 0.0
    #: Cycles a stuck buffer slot stays pinned before it releases.
    stuck_duration: int = 64

    # --- structural faults -----------------------------------------
    #: Output port that dies mid-run (single-router scenario), or None.
    dead_port: int | None = None
    #: Cycle at which the dead-port fault fires.
    dead_port_cycle: int = 0

    # --- graceful degradation --------------------------------------
    #: Sliding observation window, in cycles, for the fault rate.
    window: int = 256
    #: Faults within the window that shed best-effort traffic (level 1).
    shed_be_faults: int = 4
    #: Faults within the window that clamp VBR to its average (level 2).
    clamp_vbr_faults: int = 16
    #: Quiet cycles (no faults) before de-escalating one level.
    restore_after: int = 512

    # --- credit watchdog -------------------------------------------
    #: Cycles a credit deficit must persist before the first resync.
    resync_timeout: int = 16
    #: Resyncs per VC before the watchdog gives up and escalates.
    resync_max_retries: int = 5
    #: Exponential backoff base between successive resyncs of one VC.
    resync_backoff: int = 2

    # --- simulation watchdog ---------------------------------------
    #: Cycles without any departure (while flits sit in the router)
    #: before the run is declared livelocked and aborted with a dump.
    stall_limit: int = 4096
    #: Cycles between watchdog sweeps (conservation + stall check).
    check_interval: int = 64

    def __post_init__(self) -> None:
        for name in (
            "corruption_rate",
            "credit_loss_rate",
            "credit_dup_rate",
            "stuck_slot_rate",
        ):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.credit_loss_rate + self.credit_dup_rate > 1.0:
            raise ValueError("credit loss + duplication rates must sum <= 1")
        if self.stuck_duration <= 0:
            raise ValueError("stuck_duration must be positive")
        if self.dead_port is not None and self.dead_port < 0:
            raise ValueError("dead_port must be a valid port index")
        if self.dead_port_cycle < 0:
            raise ValueError("dead_port_cycle must be >= 0")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if not (0 < self.shed_be_faults <= self.clamp_vbr_faults):
            raise ValueError(
                "need 0 < shed_be_faults <= clamp_vbr_faults "
                f"(got {self.shed_be_faults}, {self.clamp_vbr_faults})"
            )
        if self.restore_after <= 0:
            raise ValueError("restore_after must be positive")
        if self.stall_limit <= 0 or self.check_interval <= 0:
            raise ValueError("stall_limit and check_interval must be positive")

    def to_dict(self) -> dict[str, object]:
        """Strict-JSON form (campaign point specs content-address it)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data) -> "FaultConfig":
        return cls(**dict(data))

    @property
    def has_random_faults(self) -> bool:
        """True if any per-opportunity fault rate is non-zero."""
        return (
            self.corruption_rate > 0
            or self.credit_loss_rate > 0
            or self.credit_dup_rate > 0
            or self.stuck_slot_rate > 0
        )

    @property
    def any_faults(self) -> bool:
        return self.has_random_faults or self.dead_port is not None

    @property
    def is_inert(self) -> bool:
        """True when this config can never inject a fault or draw RNG.

        The event-skipping engine consults this: with every
        per-opportunity rate at zero and no structural dead port, the
        fault harness's per-cycle hooks (injector, credit watchdog scan,
        degradation update, conservation sweep) are provably no-ops on
        idle cycles and consume no ``faults`` stream draws, so idle
        spans may be fast-forwarded.  Any active fault disables skipping
        for the whole run.
        """
        return not self.any_faults
