"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.arbiter == "coa"
        assert args.traffic == "cbr"
        assert args.scale == "ci"

    def test_rejects_unknown_arbiter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--arbiter", "bogus"])

    def test_loads_parsing(self):
        args = build_parser().parse_args(["sweep", "--loads", "0.4,0.8"])
        assert args.loads == [0.4, 0.8]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--loads", "a,b"])

    def test_arbiters_parsing(self):
        args = build_parser().parse_args(["sweep", "--arbiters", "coa, wfa"])
        assert args.arbiters == ["coa", "wfa"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "coa" in out and "wfa" in out
        assert "siabp" in out
        assert "flower_garden" in out

    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "football" in out

    def test_reproduce_hwcost(self, capsys):
        assert main(["reproduce", "hwcost"]) == 0
        out = capsys.readouterr().out
        assert "IABP" in out and "SIABP" in out

    def test_reproduce_fig6(self, capsys):
        assert main(["reproduce", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "Flower Garden" in out
        assert "mean" in out

    def test_run_cbr_small(self, capsys):
        code = main([
            "run", "--traffic", "cbr", "--load", "0.4",
            "--cycles", "3000", "--vcs", "16", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "offered load" in out
        assert "coa / siabp" in out
        assert "flit delay" in out

    def test_run_vbr_small(self, capsys):
        code = main([
            "run", "--traffic", "vbr", "--model", "BB", "--load", "0.4",
            "--cycles", "3000", "--vcs", "16", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "frame delay" in out

    def test_sweep_small(self, capsys):
        code = main([
            "sweep", "--traffic", "cbr", "--arbiters", "coa,wfa",
            "--loads", "0.3,0.5", "--cycles", "2000", "--vcs", "16",
            "--metric", "throughput",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "coa" in out and "wfa" in out
        assert "throughput" in out

    def test_sweep_unknown_arbiter_fails_cleanly(self, capsys):
        code = main([
            "sweep", "--arbiters", "coa,hypothetical",
            "--loads", "0.3", "--cycles", "500", "--vcs", "8",
        ])
        assert code == 2
        assert "unknown arbiter" in capsys.readouterr().err


class TestObsCommands:
    ARTIFACTS = {"telemetry.json", "qos.json", "timeseries.jsonl",
                 "timeseries.csv", "flight.txt"}

    def test_obs_demo_exports_artifacts(self, tmp_path, capsys):
        out = tmp_path / "obs"
        code = main([
            "obs", "--cycles", "1500", "--vcs", "16", "--load", "0.5",
            "--out", str(out),
        ])
        assert code == 0
        assert {p.name for p in out.iterdir()} == self.ARTIFACTS
        text = capsys.readouterr().out
        assert "telemetry run" in text and "qos bursts" in text
        assert "cbr: violations / jitter" in text

    def test_obs_validate_good_and_bad(self, tmp_path, capsys):
        out = tmp_path / "obs"
        assert main(["obs", "--cycles", "1000", "--vcs", "16",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        good = out / "timeseries.jsonl"
        assert main(["obs", "--validate", str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{broken\n", encoding="utf-8")
        assert main(["obs", "--validate", str(bad)]) == 1
        assert capsys.readouterr().err

    def test_run_with_telemetry_flag(self, tmp_path, capsys):
        out = tmp_path / "tele"
        code = main([
            "run", "--traffic", "cbr", "--load", "0.4",
            "--cycles", "2000", "--vcs", "16", "--seed", "5",
            "--telemetry", str(out),
        ])
        assert code == 0
        assert {p.name for p in out.iterdir()} == self.ARTIFACTS
        text = capsys.readouterr().out
        assert "telemetry:" in text

    def test_sweep_with_telemetry_writes_summary(self, tmp_path, capsys):
        import json

        out = tmp_path / "tele"
        code = main([
            "sweep", "--traffic", "cbr", "--arbiters", "coa",
            "--loads", "0.3,0.5", "--cycles", "1500", "--vcs", "16",
            "--telemetry", str(out),
        ])
        assert code == 0
        capsys.readouterr()
        summary = json.loads((out / "sweep-telemetry.json").read_text())
        assert summary["points"] == 2
        assert "deadline_violations" in summary

    def test_obs_bench_quick(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "BENCH_obs.json"
        code = main([
            "obs", "--bench", "--cycles", "800", "--repeats", "1",
            "--vcs", "16", "--json", str(report_path),
            "--max-overhead", "10", "--max-disabled-overhead", "10",
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["results_identical"] is True
        assert "overhead_disabled" in report
        text = capsys.readouterr().out
        assert "overhead" in text


class TestFabricCommands:
    """The `fabric` subcommand: list, single run, determinism, demo."""

    def test_list_topologies(self, capsys):
        assert main(["fabric", "--list-topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("ring", "mesh", "torus", "fat-tree",
                     "first-fit", "ecmp", "wrr"):
            assert name in out

    def test_single_run_table(self, capsys):
        code = main([
            "fabric", "--topology", "ring:4", "--cycles", "2000",
            "--rate", "3", "--events", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fabric churn run" in out
        assert "offered sessions" in out
        assert "P(block)" in out

    def test_unknown_topology_is_loud(self, capsys):
        with pytest.raises(ValueError, match="known:"):
            main(["fabric", "--topology", "star:5", "--cycles", "500"])

    def test_unknown_policy_fails_cleanly(self, capsys):
        code = main([
            "fabric", "--policy", "random-walk", "--cycles", "500",
        ])
        assert code == 2
        assert "unknown path policy" in capsys.readouterr().err

    def test_check_determinism(self, capsys):
        code = main([
            "fabric", "--check-determinism", "--topology", "ring:4",
            "--cycles", "1500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "deterministic" in out
        assert "bit-identical" in out

    def test_demo_table(self, capsys):
        code = main([
            "fabric", "--demo", "--topology", "ring:4",
            "--rates", "2,4", "--policies", "first-fit,ecmp",
            "--cycles", "1500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "first-fit" in out and "ecmp" in out
        assert "KR ref" in out

    def test_demo_store_warm_cache(self, tmp_path, capsys):
        args = [
            "fabric", "--demo", "--topology", "ring:4",
            "--rates", "2", "--policies", "first-fit",
            "--cycles", "1200", "--store", str(tmp_path / "store"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "0 cached / 1" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "1 cached / 1" in warm

    def test_bench_writes_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "BENCH_fabric.json"
        code = main([
            "fabric", "--bench", "--cycles", "1000", "--rate", "1",
            "--json", str(report_path),
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro/fabric-bench/v1"
        assert set(report["topologies"]) == {
            "fat-tree(k=4)", "mesh(cols=3,rows=3)", "ring(n=8)",
            "torus(cols=3,rows=3)",
        }
        for stats in report["topologies"].values():
            assert stats["wall_s"] > 0
            assert stats["offered"] >= 0
        assert "fabric bench" in capsys.readouterr().out
