"""Network-scale experiments (paper §6: "extend to a network of MMRs").

The single-router study answers which arbiter preserves QoS inside one
switch; this module asks the paper's follow-up question: does the COA's
advantage survive multi-hop paths, where a flit must win arbitration at
every router and congestion can back-propagate through link credits?

:func:`network_load_experiment` drives any named topology (``ring``,
``mesh``, ``torus``, ``fat-tree``) of MMRs with CBR connections between
random endpoints and sweeps injected load, reporting delivered
throughput and end-to-end delay per arbiter — the network analogue of
Fig. 5.  Every point runs through the campaign executor (zero-churn
fabric points), so sweeps cache, parallelize, and resume like any other
campaign; :func:`run_network_load` remains the direct single-run
harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..router.config import RouterConfig
from ..router.connection import TrafficClass
from .multirouter import MultiRouterNetwork, NetworkConnection
from .topology import Topology

__all__ = ["NetworkRunResult", "run_network_load", "network_load_experiment"]


@dataclass(frozen=True)
class NetworkRunResult:
    """One network run at one injected load."""

    arbiter: str
    target_load: float
    connections: int
    injected: int
    delivered: int
    #: Mean/max end-to-end flit delay since generation, in flit cycles.
    mean_delay_cycles: float
    max_delay_cycles: float
    #: Flits still inside the network when the horizon ended.
    residue: int

    @property
    def delivered_fraction(self) -> float:
        return self.delivered / self.injected if self.injected else float("nan")


def _build_connections(
    net: MultiRouterNetwork,
    conns_per_router: int,
    slots: int,
    rng: np.random.Generator,
) -> list[NetworkConnection]:
    """Random-destination CBR connections, one batch per source router."""
    routers = net.topology.num_routers
    out: list[NetworkConnection] = []
    for src in range(routers):
        placed = 0
        guard = 0
        while placed < conns_per_router and guard < 50 * conns_per_router:
            guard += 1
            dst = int(rng.integers(routers))
            if dst == src:
                continue
            conn = net.establish(src, dst, TrafficClass.CBR, avg_slots=slots)
            if conn is not None:
                out.append(conn)
                placed += 1
    return out


def run_network_load(
    topology: Topology,
    config: RouterConfig,
    arbiter: str,
    target_load: float,
    cycles: int,
    seed: int = 0,
    conns_per_router: int = 4,
) -> NetworkRunResult:
    """One network run: CBR sources at ``target_load`` per source router.

    The load is split evenly over ``conns_per_router`` connections from
    each router, injected as deterministic CBR trains with random phases.
    The run drains after the horizon (sources stop; the network empties)
    so delivered counts are exact unless the network is saturated past
    recovery (the residue field reports what stayed stuck).
    """
    if not (0 < target_load < 1):
        raise ValueError("target_load must be in (0, 1)")
    rng = np.random.default_rng(seed)
    net = MultiRouterNetwork(topology, config, arbiter=arbiter)
    per_conn_load = target_load / conns_per_router
    slots = max(1, round(per_conn_load * config.round_cycles))
    conns = _build_connections(net, conns_per_router, slots, rng)

    # Precompute CBR injection trains.
    iat = 1.0 / per_conn_load
    schedules = []
    for conn in conns:
        phase = rng.uniform(0, iat)
        times = np.floor(phase + np.arange(int(cycles / iat) + 1) * iat)
        schedules.append(times[times < cycles].astype(np.int64))
    pointers = [0] * len(conns)

    injected = 0
    arb_rng = np.random.default_rng(seed + 1)
    for now in range(cycles):
        for idx, conn in enumerate(conns):
            times = schedules[idx]
            ptr = pointers[idx]
            while ptr < len(times) and times[ptr] <= now:
                net.inject(conn, gen_cycle=now)
                injected += 1
                ptr += 1
            pointers[idx] = ptr
        net.step(now, arb_rng)
    # Drain (bounded: saturated networks may not empty).
    now = cycles
    while net.total_buffered() > 0 and now < cycles * 3:
        net.step(now, arb_rng)
        now += 1

    stat = net.end_to_end_delay
    return NetworkRunResult(
        arbiter=arbiter,
        target_load=target_load,
        connections=len(conns),
        injected=injected,
        delivered=net.delivered,
        mean_delay_cycles=stat.mean if stat.n else float("nan"),
        max_delay_cycles=stat.max if stat.n else float("nan"),
        residue=net.total_buffered(),
    )


def network_load_experiment(
    arbiters: Sequence[str] = ("coa", "wfa"),
    loads: Sequence[float] = (0.2, 0.4, 0.6, 0.7),
    num_routers: int = 4,
    config: RouterConfig | None = None,
    cycles: int = 4_000,
    seed: int = 0,
    topology: str | None = None,
    conns_per_router: int = 4,
    jobs: int = 1,
    store=None,
) -> dict[str, list[NetworkRunResult]]:
    """N1: network-of-MMRs load sweep, per arbiter.

    ``topology`` names any registered kind (``"ring:6"``, ``"mesh:3x3"``,
    ``"torus:3x3"``, ``"fat-tree:4"``; ``None`` keeps the historical
    ring of ``num_routers``).  Points are zero-churn fabric points run
    through :func:`repro.campaign.run_campaign` — same seed means the
    same connection pattern and injection schedules across arbiters, and
    a ``store`` serves repeat sweeps from cache.
    """
    # Deferred: this module is imported by ``repro.network`` itself, and
    # the campaign/fabric packages import ``repro.network`` at load time.
    from ..campaign.executor import run_campaign
    from ..campaign.plan import CampaignPlan
    from ..fabric.experiments import fabric_point
    from ..fabric.spec import FabricSpec, TopologySpec, parse_topology
    from ..sessions.churn import ChurnConfig

    if topology is None:
        topo_spec = TopologySpec.ring(num_routers)
    else:
        topo_spec = parse_topology(topology)
    cfg = config or RouterConfig(
        num_ports=4, vcs_per_link=32, candidate_levels=4, vc_buffer_depth=4
    )
    fabric = FabricSpec(
        topology=topo_spec,
        churn=ChurnConfig(arrivals_per_kcycle=0.0),
        conns_per_router=conns_per_router,
        drain=True,
    )
    points = tuple(
        fabric_point(
            cfg,
            fabric,
            cycles=cycles,
            seed=seed,
            arbiter=arbiter,
            target_load=load,
        )
        for arbiter in arbiters
        for load in loads
    )
    plan = CampaignPlan(name="network-load", points=points)
    campaign = run_campaign(plan, jobs=jobs, store=store)
    results: dict[str, list[NetworkRunResult]] = {a: [] for a in arbiters}
    for outcome in campaign.outcomes:
        net = outcome.sessions["network"]
        mean_delay = net["delay_mean_cycles"]
        max_delay = net["delay_max_cycles"]
        results[outcome.spec.arbiter].append(
            NetworkRunResult(
                arbiter=outcome.spec.arbiter,
                target_load=outcome.spec.target_load,
                connections=outcome.result.connections,
                injected=net["static_injected"] + net["dynamic_injected"],
                delivered=net["delivered"],
                mean_delay_cycles=(
                    float(mean_delay) if mean_delay is not None else float("nan")
                ),
                max_delay_cycles=(
                    float(max_delay) if max_delay is not None else float("nan")
                ),
                residue=net["residue"],
            )
        )
    return results
