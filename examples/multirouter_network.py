#!/usr/bin/env python3
"""Multi-router MMR network (the paper's §6 future-work extension).

Builds a 2x2 mesh of MMRs, establishes cross-network connections with
hop-by-hop PCS reservations, streams CBR traffic through them, and
reports end-to-end delay — demonstrating that the single-router QoS
machinery (VC-per-connection, credit flow control, SIABP + COA
scheduling) composes across hops.

Run:  python examples/multirouter_network.py
"""

import numpy as np

from repro import RouterConfig, TrafficClass
from repro.analysis import render_table
from repro.network import MultiRouterNetwork, mesh

CYCLES = 3_000
SEED = 11


def main() -> None:
    config = RouterConfig(
        num_ports=4,           # degree <= 2 in a 2x2 mesh + host ports
        vcs_per_link=16,
        candidate_levels=4,
        vc_buffer_depth=4,
    )
    topo = mesh(2, 2)
    net = MultiRouterNetwork(topo, config, arbiter="coa", scheme="siabp")
    print(f"Topology: 2x2 mesh, {topo.num_routers} routers, "
          f"{len(topo.edges)} directed links")

    # Diagonal connections contend for the mesh links.
    pairs = [(0, 3), (3, 0), (1, 2), (2, 1)]
    conns = []
    for src, dst in pairs:
        conn = net.establish(src, dst, TrafficClass.CBR, avg_slots=200)
        assert conn is not None, f"setup {src}->{dst} rejected"
        path = "->".join(str(r) for r in conn.router_path)
        print(f"  connection {src} => {dst}: PCS path {path} "
              f"({conn.num_hops} reserved hops)")
        conns.append(conn)

    rng = np.random.default_rng(SEED)
    injected = 0
    for t in range(CYCLES):
        for conn in conns:
            if rng.random() < 0.2:  # ~20% load per source
                net.inject(conn, gen_cycle=t)
                injected += 1
        net.step(t, rng)
    # Drain the pipeline.
    t = CYCLES
    while net.total_buffered() > 0:
        net.step(t, rng)
        t += 1

    us = config.flit_cycle_us
    print()
    print(render_table(
        ["metric", "value"],
        [
            ["flits injected", injected],
            ["flits delivered", net.delivered],
            ["mean end-to-end delay (us)", net.end_to_end_delay.mean * us],
            ["max end-to-end delay (us)", net.end_to_end_delay.max * us],
            ["drain cycles beyond horizon", t - CYCLES],
        ],
        title="2x2 mesh, 4 diagonal CBR connections at ~20% load each",
    ))
    assert net.delivered == injected, "loss-free delivery violated"
    print("\nEvery injected flit was delivered (credit-based flow control "
          "is loss-free across hops).")


if __name__ == "__main__":
    main()
