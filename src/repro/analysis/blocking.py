"""Blocking-probability analysis for session-churn experiments.

The dynamic-session experiments (``repro.sessions``) measure the classic
teletraffic quantity the static figures cannot: the probability that the
admission controller *blocks* an arriving connection as a function of
offered load.  This module provides the Erlang-B reference curve and the
table renderer for the blocking-vs-load figure class.

Erlang-B applies exactly when sessions arrive Poisson, hold for a
generally-distributed time (the formula is insensitive to the holding
distribution), and the link behaves as ``servers`` identical circuits —
a good model for a single-class CBR mix where every session reserves the
same slot count, and a sanity reference otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .stats import wilson_interval
from .tables import render_table

__all__ = [
    "erlang_b",
    "kaufman_roberts",
    "kaufman_roberts_aggregate",
    "BlockingPoint",
    "render_blocking_table",
]


def erlang_b(offered_erlangs: float, servers: int) -> float:
    """Erlang-B blocking probability for ``offered_erlangs`` on ``servers``.

    Uses the standard iterative recursion ``B(0) = 1``,
    ``B(k) = a*B(k-1) / (k + a*B(k-1))`` — numerically stable for any
    load (no factorials).
    """
    if offered_erlangs < 0:
        raise ValueError("offered load must be >= 0")
    if servers < 0:
        raise ValueError("servers must be >= 0")
    if offered_erlangs == 0:
        return 0.0
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_erlangs * b / (k + offered_erlangs * b)
    return b


def kaufman_roberts(
    capacity: int, classes: Sequence[tuple[float, int]]
) -> list[float]:
    """Per-class blocking of a multi-rate loss link (Kaufman–Roberts).

    The multi-rate analogue of Erlang-B: ``capacity`` slots are shared
    by classes ``(offered_erlangs_k, slots_k)``, each arrival of class k
    needing ``slots_k`` slots for its whole holding time.  Poisson
    arrivals, insensitive to the holding distribution — same regime
    Erlang-B assumes.  Returns ``B_k`` per class, in input order.

    Uses the classic occupancy recursion
    ``n * q(n) = sum_k a_k * b_k * q(n - b_k)`` (exact for the
    product-form stationary distribution), then
    ``B_k = sum(q(n) for n > capacity - b_k)`` after normalization.
    With a single class of slot size ``b`` this reduces *exactly* to
    ``erlang_b(a, capacity // b)`` — the tests pin that identity.
    """
    if capacity < 0:
        raise ValueError("capacity must be >= 0")
    if not classes:
        raise ValueError("need at least one traffic class")
    for a, b in classes:
        if a < 0:
            raise ValueError("offered load must be >= 0")
        if b <= 0:
            raise ValueError("slots per session must be positive")
    # Occupancy can only land on multiples reachable by slot sizes, but
    # the recursion over every integer level is O(capacity * classes)
    # and exact either way.
    q = [0.0] * (capacity + 1)
    q[0] = 1.0
    for n in range(1, capacity + 1):
        acc = 0.0
        for a, b in classes:
            if b <= n:
                acc += a * b * q[n - b]
        q[n] = acc / n
    total = sum(q)
    if total == 0 or not math.isfinite(total):
        # Loads large enough to overflow the unnormalized recursion:
        # everything is effectively blocked.
        return [1.0 for _ in classes]
    q = [x / total for x in q]
    out = []
    for _a, b in classes:
        out.append(sum(q[n] for n in range(max(0, capacity - b + 1), capacity + 1)))
    return out


def kaufman_roberts_aggregate(
    capacity: int, classes: Sequence[tuple[float, int]]
) -> float:
    """Arrival-weighted aggregate blocking over all classes.

    The probability a *random arrival* is blocked: class blocking
    weighted by each class's share of the arrival stream (its offered
    erlangs are rate × hold, so with a common mean hold the erlang
    shares are the arrival shares; with per-class holds this is still
    the standard summary statistic).
    """
    b = kaufman_roberts(capacity, classes)
    total = sum(a for a, _ in classes)
    if total == 0:
        return 0.0
    return sum(a / total * bk for (a, _), bk in zip(classes, b))


@dataclass(frozen=True)
class BlockingPoint:
    """One measured (policy, load) point of a blocking-probability sweep."""

    policy: str
    #: Offered session load in erlangs (mean concurrently-wanted sessions).
    offered_erlangs: float
    offered_sessions: int
    blocked_sessions: int
    #: Erlang-B reference for the same offered load, if a circuit count
    #: is well-defined for the mix (single-class); NaN otherwise.
    erlang_b_reference: float = float("nan")
    #: Kaufman–Roberts multi-rate reference (aggregate over classes) for
    #: pure-CBR mixes — defined even when classes reserve different slot
    #: counts; NaN when the mix has non-deterministic (VBR/BE) classes.
    kaufman_roberts_reference: float = float("nan")

    @property
    def blocking_probability(self) -> float:
        if self.offered_sessions == 0:
            return float("nan")
        return self.blocked_sessions / self.offered_sessions

    @property
    def wilson_95(self) -> tuple[float, float]:
        return wilson_interval(self.blocked_sessions, self.offered_sessions)


def render_blocking_table(
    points: list[BlockingPoint], title: str | None = None
) -> str:
    """The Erlang-style figure as a text table.

    Rows are sorted by (policy, offered load); the Wilson 95% interval
    column makes short-run noise visible next to the point estimate.
    """
    if not points:
        raise ValueError("no blocking points to render")
    headers = [
        "policy",
        "offered (erl)",
        "sessions",
        "blocked",
        "P(block)",
        "wilson 95%",
        "erlang-B ref",
    ]
    with_kr = any(
        not math.isnan(p.kaufman_roberts_reference) for p in points
    )
    if with_kr:
        headers.append("KR ref")
    rows = []
    for p in sorted(points, key=lambda p: (p.policy, p.offered_erlangs)):
        low, high = p.wilson_95
        row = [
            p.policy,
            p.offered_erlangs,
            p.offered_sessions,
            p.blocked_sessions,
            p.blocking_probability,
            f"[{low:.3f}, {high:.3f}]",
            p.erlang_b_reference,
        ]
        if with_kr:
            row.append(p.kaufman_roberts_reference)
        rows.append(row)
    return render_table(headers, rows, title=title)
