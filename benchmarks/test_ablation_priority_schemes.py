"""A3 — ablation: the priority biasing function (paper §3.1).

SIABP exists because IABP's divider cannot be built at router speed; the
claim is that the shift-based approximation preserves IABP's scheduling
behaviour (the ICN 2001 companion study validated this in VHDL).  This
ablation runs the same CBR workload under COA with four biasing
functions:

* ``iabp``  — the theoretical reference (float divide),
* ``siabp`` — the hardware scheme (shift), expected to track IABP,
* ``static`` — bandwidth only, no aging: low-bandwidth flits wait
  measurably longer (and, near saturation, can starve),
* ``fifo``  — age only, no bandwidth awareness: the delay differentiation
  between classes collapses (every class converges to the same delay).
"""

import pytest

from conftest import BENCH_SEED
from repro.analysis import render_table
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload

SCHEMES = ("iabp", "siabp", "static", "fifo")
LOAD = 0.85


def _run():
    scale = get_scale("ci")
    control = RunControl(scale.cbr_cycles, scale.cbr_warmup)
    out = {}
    for scheme in SCHEMES:
        sim = SingleRouterSim(
            default_config(), arbiter="coa", scheme=scheme, seed=BENCH_SEED
        )
        workload = build_cbr_workload(sim.router, LOAD, sim.rng.workload)
        out[scheme] = sim.run(workload, control)
    return out


@pytest.mark.benchmark(group="ablation-scheme")
def test_ablation_priority_schemes(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    rows = [
        [scheme,
         r.flit_delay_us.get("low", float("nan")),
         r.flit_delay_us.get("medium", float("nan")),
         r.flit_delay_us.get("high", float("nan")),
         r.flit_delay_us["overall"],
         r.throughput * 100]
        for scheme, r in results.items()
    ]
    print(render_table(
        ["scheme", "low us", "medium us", "high us", "overall us", "thr %"],
        rows,
        title=f"A3 — priority biasing functions under COA at {LOAD:.0%} "
              "CBR load",
    ))

    iabp, siabp = results["iabp"], results["siabp"]
    # The hardware approximation tracks the reference scheme (§3.1 / the
    # ICN 2001 companion result): same throughput, same delay pattern.
    assert siabp.flit_delay_us["overall"] == pytest.approx(
        iabp.flit_delay_us["overall"], rel=0.2
    )
    for label in ("low", "medium", "high"):
        assert siabp.flit_delay_us[label] == pytest.approx(
            iabp.flit_delay_us[label], rel=0.5
        ), label
    assert siabp.normalized_throughput == pytest.approx(
        iabp.normalized_throughput, rel=0.02
    )
    # Both biased schemes keep every class's delay bounded at this load.
    for scheme in ("iabp", "siabp"):
        for label in ("low", "medium", "high"):
            assert results[scheme].flit_delay_us[label] < 1_000.0, (
                scheme, label
            )
    # Bandwidth-aware biasing differentiates service: the 55 Mbps class
    # is served several times faster than the 64 Kbps class under SIABP,
    # while age-only FIFO flattens every class to the same delay.
    siabp_ratio = siabp.flit_delay_us["low"] / siabp.flit_delay_us["high"]
    fifo = results["fifo"]
    fifo_ratio = fifo.flit_delay_us["low"] / fifo.flit_delay_us["high"]
    assert siabp_ratio > 3.0
    assert fifo_ratio < 2.0
    # Aging matters: without it (static), the low-bandwidth class waits
    # measurably longer than under SIABP.
    assert results["static"].flit_delay_us["low"] > \
        1.2 * siabp.flit_delay_us["low"]
