"""Workload generators: CBR classes, MPEG-2 VBR, best-effort, mixes."""

from .base import InjectionSchedule, TrafficSource
from .besteffort import BestEffortSource
from .cbr import CBR_CLASSES, CBRClass, CBRSource
from .mpeg import (
    FRAME_PERIOD_SECONDS,
    GOP_LENGTH,
    GOP_PATTERN,
    FrameKind,
    SEQUENCE_STATS,
    SequenceStats,
    generate_trace,
    trace_bitrate_bps,
    trace_statistics,
)
from .mixes import (
    ConnectionLoad,
    PortFeed,
    Workload,
    build_besteffort_workload,
    build_cbr_workload,
    build_vbr_workload,
)
from .vbr import VBRSource, default_frame_time_cycles, trace_to_flits

__all__ = [
    "InjectionSchedule",
    "TrafficSource",
    "BestEffortSource",
    "CBR_CLASSES",
    "CBRClass",
    "CBRSource",
    "FRAME_PERIOD_SECONDS",
    "GOP_LENGTH",
    "GOP_PATTERN",
    "FrameKind",
    "SEQUENCE_STATS",
    "SequenceStats",
    "generate_trace",
    "trace_bitrate_bps",
    "trace_statistics",
    "ConnectionLoad",
    "PortFeed",
    "Workload",
    "build_besteffort_workload",
    "build_cbr_workload",
    "build_vbr_workload",
    "VBRSource",
    "default_frame_time_cycles",
    "trace_to_flits",
]
