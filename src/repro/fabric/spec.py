"""Plain-data specs for fabric runs: named topologies + churn + policy.

A fabric point is content-addressed by the campaign store, so everything
that defines it must be hashable, JSON round-trippable plain data:

* :class:`TopologySpec` — a *named* topology recipe (``ring``, ``mesh``,
  ``torus``, ``fat-tree``) plus integer parameters, buildable inside a
  worker process.  Unknown names fail loudly, listing every valid one.
* :class:`FabricSpec` — the full fabric dimension of a campaign point:
  topology, churn process, path-selection policy, alternate-path budget,
  signaling latencies, and the optional static background load.

Like ``SessionsSpec``/``FaultConfig`` on :class:`~repro.campaign.plan.
PointSpec`, a ``fabric`` spec is omitted from the point hash when absent
so every existing cache key stays warm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..network.topology import (
    Topology,
    fat_tree,
    fat_tree_edge_routers,
    mesh,
    ring,
    torus,
)
from ..sessions.churn import ChurnConfig
from ..sessions.signaling import SignalingConfig
from .paths import PATH_POLICIES

__all__ = ["TOPOLOGY_KINDS", "TopologySpec", "FabricSpec", "parse_topology"]


def _build_ring(params: Mapping[str, int]) -> Topology:
    return ring(params["n"])


def _build_mesh(params: Mapping[str, int]) -> Topology:
    return mesh(params["rows"], params["cols"])


def _build_torus(params: Mapping[str, int]) -> Topology:
    return torus(params["rows"], params["cols"])


def _build_fat_tree(params: Mapping[str, int]) -> Topology:
    return fat_tree(params["k"])


#: kind -> (builder, required params, CLI default params).
TOPOLOGY_KINDS: dict[
    str, tuple[Callable[[Mapping[str, int]], Topology], tuple[str, ...], dict]
] = {
    "ring": (_build_ring, ("n",), {"n": 8}),
    "mesh": (_build_mesh, ("rows", "cols"), {"rows": 3, "cols": 3}),
    "torus": (_build_torus, ("rows", "cols"), {"rows": 3, "cols": 3}),
    "fat-tree": (_build_fat_tree, ("k",), {"k": 4}),
}


@dataclass(frozen=True)
class TopologySpec:
    """A named, parameterized topology recipe (hashable plain data)."""

    kind: str
    #: Sorted (name, value) integer parameters.
    params: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology {self.kind!r}; "
                f"known: {', '.join(sorted(TOPOLOGY_KINDS))}"
            )
        _builder, required, _defaults = TOPOLOGY_KINDS[self.kind]
        ordered = tuple(sorted((str(n), int(v)) for n, v in self.params))
        object.__setattr__(self, "params", ordered)
        names = tuple(n for n, _v in ordered)
        if names != tuple(sorted(required)):
            raise ValueError(
                f"topology {self.kind!r} needs params {sorted(required)}, "
                f"got {list(names)}"
            )

    # -- constructors ---------------------------------------------------

    @staticmethod
    def ring(n: int) -> "TopologySpec":
        return TopologySpec("ring", (("n", n),))

    @staticmethod
    def mesh(rows: int, cols: int) -> "TopologySpec":
        return TopologySpec("mesh", (("cols", cols), ("rows", rows)))

    @staticmethod
    def torus(rows: int, cols: int) -> "TopologySpec":
        return TopologySpec("torus", (("cols", cols), ("rows", rows)))

    @staticmethod
    def fat_tree(k: int) -> "TopologySpec":
        return TopologySpec("fat-tree", (("k", k),))

    # -- behavior -------------------------------------------------------

    @property
    def params_dict(self) -> dict[str, int]:
        return dict(self.params)

    def build(self) -> Topology:
        builder, _required, _defaults = TOPOLOGY_KINDS[self.kind]
        return builder(self.params_dict)

    def host_routers(self) -> tuple[int, ...]:
        """Routers whose host ports source/sink fabric sessions.

        A fat-tree attaches hosts only at its edge stage; every router of
        the flat topologies is host-attached.
        """
        if self.kind == "fat-tree":
            return fat_tree_edge_routers(self.params_dict["k"])
        return tuple(range(self.build().num_routers))

    def describe(self) -> str:
        inner = ",".join(f"{n}={v}" for n, v in self.params)
        return f"{self.kind}({inner})"

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": self.params_dict}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        return cls(data["kind"], tuple(sorted(data.get("params", {}).items())))


def parse_topology(text: str) -> TopologySpec:
    """Parse a CLI topology spec: ``ring:6``, ``mesh:3x3``, ``fat-tree:4``.

    A bare kind name uses that kind's default size.  Unknown names raise
    a :class:`ValueError` listing every valid kind.
    """
    kind, _, arg = text.strip().partition(":")
    if kind not in TOPOLOGY_KINDS:
        raise ValueError(
            f"unknown topology {kind!r}; "
            f"known: {', '.join(sorted(TOPOLOGY_KINDS))}"
        )
    _builder, required, defaults = TOPOLOGY_KINDS[kind]
    if not arg:
        params = dict(defaults)
    elif "x" in arg:
        rows, _, cols = arg.partition("x")
        params = {"rows": int(rows), "cols": int(cols)}
    else:
        params = {required[0]: int(arg)}
    if tuple(sorted(params)) != tuple(sorted(required)):
        raise ValueError(
            f"topology {kind!r} takes params {sorted(required)}; "
            f"could not parse {text!r}"
        )
    return TopologySpec(kind, tuple(sorted(params.items())))


@dataclass(frozen=True)
class FabricSpec:
    """The fabric dimension of a campaign point (hashable plain data).

    ``churn`` drives dynamic sessions between (router, host-port)
    endpoints; ``conns_per_router`` adds the static CBR background the
    legacy network load experiment used (driven by the point's
    ``target_load``; 0 disables it).  ``drain`` keeps stepping after the
    horizon until the network empties (bounded at 3x), which the static
    throughput experiment needs for exact delivered counts.
    """

    topology: TopologySpec
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    path_policy: str = "first-fit"
    #: K-shortest candidate paths enumerated per endpoint pair.
    k_paths: int = 4
    #: Setup attempts per session (primary + alternates), capped by the
    #: number of candidate paths.
    max_path_attempts: int = 2
    signaling: SignalingConfig = field(default_factory=SignalingConfig)
    #: Path-balance sampling stride, cycles.
    sample_stride: int = 500
    #: Static background CBR connections per source router (0 = none).
    conns_per_router: int = 0
    drain: bool = False
    #: Arbiter-stream derivation: ``"shared"`` (one stream steps every
    #: router — the legacy serial semantics) or ``"per-router"`` (each
    #: router draws from its own ``(seed, router_id)``-derived stream —
    #: required for sharded execution, and the semantics the sharded
    #: byte-identity contract is stated against).  Changes results, so it
    #: is part of the point hash; the default stays out of ``to_dict`` so
    #: every existing cache key stays warm.
    rng_mode: str = "shared"

    def __post_init__(self) -> None:
        if self.rng_mode not in ("shared", "per-router"):
            raise ValueError(
                f"unknown rng_mode {self.rng_mode!r}; "
                "known: shared, per-router"
            )
        if self.path_policy not in PATH_POLICIES:
            raise ValueError(
                f"unknown path policy {self.path_policy!r}; "
                f"known: {', '.join(PATH_POLICIES)}"
            )
        if self.k_paths < 1:
            raise ValueError("k_paths must be >= 1")
        if self.max_path_attempts < 1:
            raise ValueError("max_path_attempts must be >= 1")
        if self.sample_stride < 1:
            raise ValueError("sample_stride must be >= 1")
        if self.conns_per_router < 0:
            raise ValueError("conns_per_router must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        out = {
            "topology": self.topology.to_dict(),
            "churn": self.churn.to_dict(),
            "path_policy": self.path_policy,
            "k_paths": self.k_paths,
            "max_path_attempts": self.max_path_attempts,
            "signaling": self.signaling.to_dict(),
            "sample_stride": self.sample_stride,
            "conns_per_router": self.conns_per_router,
            "drain": self.drain,
        }
        if self.rng_mode != "shared":
            out["rng_mode"] = self.rng_mode
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FabricSpec":
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            churn=ChurnConfig.from_dict(data["churn"]),
            path_policy=data.get("path_policy", "first-fit"),
            k_paths=data.get("k_paths", 4),
            max_path_attempts=data.get("max_path_attempts", 2),
            signaling=SignalingConfig.from_dict(data.get("signaling", {})),
            sample_stride=data.get("sample_stride", 500),
            conns_per_router=data.get("conns_per_router", 0),
            drain=data.get("drain", False),
            rng_mode=data.get("rng_mode", "shared"),
        )
