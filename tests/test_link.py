"""Tests for repro.router.link (phit-level pipeline model)."""

import pytest

from repro.router.config import RouterConfig
from repro.router.link import (
    PhitPipeline,
    pipelined_latency_phits,
    store_and_forward_latency_phits,
)


class TestClosedForms:
    def test_single_hop_equal(self):
        # One hop: pipelining cannot help; both equal serialization time.
        assert pipelined_latency_phits(64, 1, stage_delay=1) == 64
        assert store_and_forward_latency_phits(64, 1) == 64

    def test_pipelining_beats_store_and_forward_multi_hop(self):
        for hops in (2, 3, 5):
            assert pipelined_latency_phits(64, hops) < \
                store_and_forward_latency_phits(64, hops)

    def test_pipelined_growth_is_per_hop_constant(self):
        # Each extra hop adds 1 + stage_delay phit times, not a full flit.
        l2 = pipelined_latency_phits(64, 2, stage_delay=1)
        l3 = pipelined_latency_phits(64, 3, stage_delay=1)
        assert l3 - l2 == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            pipelined_latency_phits(0, 1)
        with pytest.raises(ValueError):
            store_and_forward_latency_phits(64, 0)


class TestSimulationMatchesClosedForm:
    @pytest.mark.parametrize("phits", [1, 2, 8, 64])
    @pytest.mark.parametrize("hops", [1, 2, 3, 6])
    @pytest.mark.parametrize("stage_delay", [0, 1, 3])
    def test_cut_through(self, phits, hops, stage_delay):
        pipe = PhitPipeline(phits, hops, cut_through=True,
                            stage_delay=stage_delay)
        assert pipe.simulate() == pipe.closed_form()

    @pytest.mark.parametrize("phits", [1, 8, 64])
    @pytest.mark.parametrize("hops", [1, 2, 4])
    def test_store_and_forward(self, phits, hops):
        pipe = PhitPipeline(phits, hops, cut_through=False)
        assert pipe.simulate() == pipe.closed_form()


class TestPaperClaim:
    def test_large_flit_latency_hidden_by_phit_pipelining(self):
        """Paper §2: large flits would increase latency, but phit-level
        pipelining avoids it — crossing NIC link + crossbar + output link
        costs barely more than one flit serialization."""
        config = RouterConfig()  # 64 phits per flit
        hops = 3  # NIC->router link, crossbar, router->sink link
        pipelined = PhitPipeline.from_config(config, hops, cut_through=True)
        naive = PhitPipeline.from_config(config, hops, cut_through=False)
        # Pipelined: ~1.06 flit cycles; store-and-forward: ~3 flit cycles.
        assert pipelined.latency_flit_cycles(config) < 1.2
        assert naive.latency_flit_cycles(config) > 2.9

    def test_from_config_uses_phit_width(self):
        config = RouterConfig(flit_size_bits=256, phit_size_bits=16)
        pipe = PhitPipeline.from_config(config, 2)
        assert pipe.phits_per_flit == 16
