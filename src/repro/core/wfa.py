"""Wave Front Arbiter (WFA) — the comparison baseline (Tamir & Chi 1993).

The WFA is a symmetric crossbar arbiter built from an N x N array of
arbitration cells, one per crosspoint.  An arbitration *wave* sweeps the
array along anti-diagonals from the top-left to the bottom-right corner; a
cell grants its request iff no cell above it in the same column and no
cell to its left in the same row has already granted.  Cells on the same
diagonal touch disjoint rows and columns, so each diagonal's cells decide
concurrently in hardware — the scheme is fast and cheap, and produces a
maximal matching.

Two fairness variants are provided:

* plain WFA: the wave always starts at diagonal 0, giving crosspoints near
  the top-left persistent precedence (the original paper's basic array);
* **wrapped WFA** (default): diagonals are wrapped (cell ``(i, j)`` lies
  on diagonal ``(i + j) mod N``) and the starting diagonal rotates every
  arbitration, so precedence circulates — the variant normally used in
  practice and the fair one the MMR paper compares against.

The WFA is *priority-blind*: it sees only the boolean request matrix.
Which VC transmits on a granted (input, output) pair is still decided by
the link scheduler's ranking (the best-level candidate), but the matching
itself ignores QoS — exactly the deficiency the paper demonstrates.

**Requests per input.**  On the MMR's multiplexed crossbar a conventional
symmetric arbiter receives *one* request per input link: the link
scheduler has already selected the head-of-line virtual channel, and the
crossbar cell array only resolves output conflicts among those N heads
(paper §2: "arbitration is needed at the input side (link scheduling), to
select one virtual channel from each physical channel, but it is also
needed within the switch").  ``max_levels=1`` (the default) models this —
and the resulting head-of-line blocking is what pins WFA's saturation
near 70-75% in the paper's figures, while the COA exploits all candidate
levels.  Pass ``max_levels=None`` for a VOQ-style variant that sees every
candidate level (the "wfa-multi" registry entry, used by the ablation
benches to separate multi-candidate selection from priority awareness).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .matching import (
    Arbiter,
    Candidate,
    Grant,
    best_candidate_for,
    buffer_best_vc,
    buffer_request_matrix,
    request_matrix,
    restrict_levels,
)

if TYPE_CHECKING:
    from .candidates import CandidateBuffer

__all__ = ["WaveFrontArbiter"]


class WaveFrontArbiter(Arbiter):
    """Wrapped (or plain) wave front arbiter over the request matrix."""

    name = "wfa"

    def __init__(
        self,
        num_ports: int,
        wrapped: bool = True,
        max_levels: int | None = 1,
    ) -> None:
        if max_levels is not None and max_levels <= 0:
            raise ValueError("max_levels must be positive or None")
        self.num_ports = num_ports
        self.wrapped = wrapped
        self.max_levels = max_levels
        tags = []
        if not wrapped:
            tags.append("plain")
        if max_levels is None:
            tags.append("multi")
        elif max_levels > 1:
            tags.append(f"levels={max_levels}")
        if tags:
            self.name = f"wfa[{','.join(tags)}]"
        self._start_diag = 0

    def reset(self) -> None:
        self._start_diag = 0

    def skip_idle_cycles(self, n: int) -> None:
        """Rotate the start diagonal as if ``n`` empty sweeps had run.

        :meth:`_sweep` advances the wrapped variant's start diagonal on
        every arbitration — with or without requests — so skipped idle
        cycles must rotate it analytically to keep skip-enabled runs
        grant-identical to the reference loop.  The plain variant is
        stateless and needs nothing.
        """
        if self.wrapped:
            self._start_diag = (self._start_diag + n) % self.num_ports

    def match(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        n = self.num_ports
        candidates = restrict_levels(candidates, self.max_levels)
        requests = request_matrix(candidates, n)
        return [
            (i, best_candidate_for(candidates, i, j).vc, j)
            for i, j in self._sweep(requests)
        ]

    def match_buffer(
        self,
        buf: CandidateBuffer,
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Buffer-native WFA sweep; no rng, state advances identically.

        The wave is a pure function of the request matrix and the rotating
        start diagonal, and :func:`buffer_request_matrix` reproduces the
        object path's matrix exactly, so both entry points grant the same
        crosspoints and rotate the start diagonal in lockstep.
        """
        requests = buffer_request_matrix(buf, self.num_ports, self.max_levels)
        return [
            (i, buffer_best_vc(buf, i, j, self.max_levels), j)
            for i, j in self._sweep(requests)
        ]

    def _sweep(self, requests: np.ndarray) -> list[tuple[int, int]]:
        """Run one arbitration wave; granted (input, output) crosspoints."""
        n = self.num_ports
        row_free = np.ones(n, dtype=bool)
        col_free = np.ones(n, dtype=bool)
        grants: list[tuple[int, int]] = []

        if self.wrapped:
            diag_order = [(self._start_diag + d) % n for d in range(n)]
            self._start_diag = (self._start_diag + 1) % n
        else:
            # Unwrapped array: 2N-1 anti-diagonals i + j = d.
            diag_order = list(range(2 * n - 1))

        for d in diag_order:
            if self.wrapped:
                cells = ((i, (d - i) % n) for i in range(n))
            else:
                cells = ((i, d - i) for i in range(max(0, d - n + 1), min(d, n - 1) + 1))
            for i, j in cells:
                if requests[i, j] and row_free[i] and col_free[j]:
                    row_free[i] = False
                    col_free[j] = False
                    grants.append((i, j))
        return grants
