"""A8 — scalability: does the COA/WFA gap survive a bigger crossbar?

The paper evaluates a 4x4 MMR.  Matching theory says the head-of-line
limit of a single-request maximal matcher is 1-(1-1/N)^N of link
bandwidth under uniform traffic — 68.4% at N=4, falling toward
1-1/e ≈ 63.2% as N grows — so the WFA's wall should *drop slightly* on a
bigger switch while the COA, with its four candidate levels, keeps
tracking the offered load.  This bench doubles the router to 8x8 and
re-measures both arbiters at the 4x4 knee loads.
"""

import pytest

from conftest import BENCH_SEED
from repro.analysis import render_table
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_cbr_workload

PORTS = (4, 8)
LOADS = (0.6, 0.8)


def _run():
    scale = get_scale("ci")
    control = RunControl(scale.cbr_cycles, scale.cbr_warmup)
    out = {}
    for ports in PORTS:
        for arbiter in ("coa", "wfa"):
            for load in LOADS:
                config = default_config(num_ports=ports)
                sim = SingleRouterSim(config, arbiter=arbiter,
                                      seed=BENCH_SEED)
                workload = build_cbr_workload(sim.router, load,
                                              sim.rng.workload)
                out[(ports, arbiter, load)] = sim.run(workload, control)
    return out


@pytest.mark.benchmark(group="scalability")
def test_scalability_with_port_count(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    rows = [
        [f"{p}x{p}", arb, f"{load:.0%}", r.offered_load * 100,
         r.throughput * 100, r.flit_delay_us["overall"]]
        for (p, arb, load), r in results.items()
    ]
    print(render_table(
        ["router", "arbiter", "target", "offered %", "throughput %",
         "mean delay us"],
        rows,
        title="A8 — COA vs WFA on 4x4 and 8x8 routers (CBR)",
    ))

    for ports in PORTS:
        # COA keeps delivering the offered load at 80% on both sizes.
        assert results[(ports, "coa", 0.8)].normalized_throughput > 0.97, ports
        # WFA is saturated at 80% on both sizes...
        assert results[(ports, "wfa", 0.8)].normalized_throughput < 0.9, ports
    # ...and its ceiling does not *improve* with size (theory: the
    # single-request matching limit falls toward 1 - 1/e).
    assert results[(8, "wfa", 0.8)].throughput <= \
        results[(4, "wfa", 0.8)].throughput + 0.02
    # At 60% everyone still delivers (below every knee).
    for ports in PORTS:
        for arb in ("coa", "wfa"):
            assert results[(ports, arb, 0.6)].normalized_throughput > 0.97
