"""Idle-cycle event-skipping engine: bit-identity and twin-drift sweep.

The engine's contract is absolute: a ``skip_idle=True`` run must be
bit-identical to the reference loop — the full ``SimResult.to_dict()``
payload AND the RNG stream fingerprint — because a skipped cycle consults
no RNG and moves no state the reference loop would have moved (see
``docs/architecture.md``, "Event-skipping engine").  This module pins:

* bit-identity across every registered arbiter, every priority scheme,
  both pipelines (buffer hot path and object reference), telemetry and
  session twins, over multiple seeds;
* the warmup-covers-the-run edge case (``warmup_cycles >= cycles`` is
  legal, measures nothing, and serializes to strict JSON);
* the de-drifted injection walk shared by all cycle loops
  (:func:`~repro.sim.simulation.inject_due_flits` /
  :func:`~repro.sim.simulation.next_injection_cycle`) against a naive
  per-cycle reference, under hypothesis-generated feeds with empty
  ports, cycle-0 flits and same-cycle bursts.
"""

import dataclasses
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ARBITER_NAMES, SCHEME_NAMES
from repro.obs import TelemetryConfig, TelemetrySession
from repro.router import RouterConfig
from repro.sessions import ChurnConfig, SessionEngine, SessionsSpec
from repro.sim import RunControl
from repro.sim.simulation import (
    SimResult,
    SingleRouterSim,
    inject_due_flits,
    next_injection_cycle,
)
from repro.traffic.mixes import PortFeed, build_cbr_workload

CFG = RouterConfig(num_ports=4, vcs_per_link=16, candidate_levels=4)

CHURN = ChurnConfig(
    arrivals_per_kcycle=4.0,
    mean_hold_cycles=600.0,
    mix=(("cbr-low", 0.5), ("vbr", 0.3), ("best-effort", 0.2)),
)


def _run(skip, arbiter="coa", scheme="siabp", seed=0, cycles=900,
         warmup=150, load=0.12, fast=True, telemetry=False, sessions=False):
    """One run's (canonical result JSON, RNG fingerprint) signature."""
    sim = SingleRouterSim(
        CFG, arbiter, scheme, seed, fast_path=fast, skip_idle=skip
    )
    workload = build_cbr_workload(sim.router, load, sim.rng.workload)
    kwargs = {}
    if telemetry:
        kwargs["telemetry"] = TelemetrySession(TelemetryConfig(stride=64))
    if sessions:
        kwargs["sessions"] = SessionEngine.from_spec(
            CFG, SessionsSpec(churn=CHURN), cycles, sim.rng.sessions
        )
    result = sim.run(
        workload, RunControl(cycles=cycles, warmup_cycles=warmup), **kwargs
    )
    return (
        json.dumps(result.to_dict(), sort_keys=True),
        sim.rng.state_fingerprint(),
    )


# ----------------------------------------------------------------------
# Bit-identity: skip-enabled == reference, everywhere
# ----------------------------------------------------------------------


class TestSkipBitIdentity:
    @pytest.mark.parametrize("arbiter", ARBITER_NAMES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_arbiter(self, arbiter, seed):
        assert _run(False, arbiter=arbiter, seed=seed) == _run(
            True, arbiter=arbiter, seed=seed
        )

    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    def test_every_scheme(self, scheme):
        assert _run(False, scheme=scheme, seed=1) == _run(
            True, scheme=scheme, seed=1
        )

    @pytest.mark.parametrize("arbiter", ["coa", "wfa", "islip", "random"])
    def test_object_reference_path(self, arbiter):
        # The engine must also be exact on the object pipeline, and both
        # pipelines must land on the same bits.
        ref = _run(False, arbiter=arbiter, fast=False)
        assert _run(True, arbiter=arbiter, fast=False) == ref
        assert _run(True, arbiter=arbiter, fast=True) == ref

    def test_telemetry_twin(self):
        assert _run(False, telemetry=True) == _run(True, telemetry=True)

    def test_sessions_twin(self):
        assert _run(False, sessions=True) == _run(True, sessions=True)

    def test_sessions_plus_telemetry_twin(self):
        both = dict(sessions=True, telemetry=True)
        assert _run(False, **both) == _run(True, **both)

    @pytest.mark.parametrize("load", [0.01, 0.05, 0.5, 0.9])
    def test_load_extremes(self, load):
        assert _run(False, load=load) == _run(True, load=load)

    @given(seed=st.integers(0, 1_000_000))
    @settings(max_examples=10, deadline=None)
    def test_random_seeds(self, seed):
        assert _run(False, seed=seed, cycles=400, warmup=70) == _run(
            True, seed=seed, cycles=400, warmup=70
        )

    def test_engine_actually_skips(self):
        # Guard against the engine silently disabling itself: at low
        # load the full pipeline must run on well under half the cycles.
        sim = SingleRouterSim(CFG, "coa", "siabp", 0, skip_idle=True)
        workload = build_cbr_workload(sim.router, 0.05, sim.rng.workload)
        stepped = 0
        original = sim.router.step

        def counting_step(now, rng):
            nonlocal stepped
            stepped += 1
            return original(now, rng)

        sim.router.step = counting_step
        sim.run(workload, RunControl(cycles=2000, warmup_cycles=0))
        assert stepped < 1000, f"full pipeline ran on {stepped}/2000 cycles"


# ----------------------------------------------------------------------
# Warmup edge case: warmup_cycles >= cycles
# ----------------------------------------------------------------------


class TestWarmupCoversRun:
    @pytest.mark.parametrize("warmup", [10, 25])
    @pytest.mark.parametrize("skip", [False, True])
    def test_zero_measured_cycles(self, warmup, skip):
        sim = SingleRouterSim(CFG, "coa", "siabp", 0, skip_idle=skip)
        workload = build_cbr_workload(sim.router, 0.4, sim.rng.workload)
        control = RunControl(cycles=10, warmup_cycles=warmup)
        assert control.measured_cycles == 0
        result = sim.run(workload, control)
        # Nothing measured: counters were reset at the end of the run,
        # throughput has a zero denominator (NaN -> null in JSON), and
        # utilization's cycles==0 guard reports 0.0.
        assert math.isnan(result.throughput)
        assert result.utilization == 0.0
        assert all(v == 0 for v in result.flits.values())
        payload = result.to_dict()
        assert payload["throughput"] is None
        json.dumps(payload, allow_nan=False)  # strict JSON
        back = SimResult.from_dict(payload)
        assert math.isnan(back.throughput)

    def test_warmup_equal_cycles_identical_with_skip(self):
        kw = dict(cycles=64, warmup=64, load=0.3)
        assert _run(False, **kw) == _run(True, **kw)

    def test_warmup_cut_inside_skipped_span(self):
        # Warmup boundary lands mid-idle-gap: the fast-forward must
        # reset counters exactly where the reference loop would.
        kw = dict(cycles=600, warmup=173, load=0.03, seed=5)
        assert _run(False, **kw) == _run(True, **kw)


# ----------------------------------------------------------------------
# Shared injection walk vs naive reference (twin-drift regression)
# ----------------------------------------------------------------------


class _RecorderNIC:
    """Captures (vc, cycle, frame_id, frame_last, seen_at) per inject."""

    def __init__(self):
        self.flits = []
        self.now = 0

    def inject(self, vc, cycle, frame_id, frame_last):
        self.flits.append((vc, cycle, frame_id, frame_last, self.now))


def _naive_walk(feeds, horizon):
    """Per-cycle reference: deliver due flits by scanning every cycle."""
    nics = [_RecorderNIC() for _ in feeds]
    delivered = [0] * len(feeds)
    for now in range(horizon):
        for port, feed in enumerate(feeds):
            nics[port].now = now
            while (
                delivered[port] < len(feed.cycles)
                and feed.cycles[delivered[port]] <= now
            ):
                i = delivered[port]
                nics[port].inject(
                    int(feed.vcs[i]), int(feed.cycles[i]),
                    int(feed.frame_ids[i]), bool(feed.frame_last[i]),
                )
                delivered[port] += 1
    return [nic.flits for nic in nics]


@st.composite
def feed_sets(draw):
    """1-4 ports of sorted feeds: empty ports, cycle-0 flits and
    same-cycle bursts all arise naturally from the strategy."""
    n_ports = draw(st.integers(min_value=1, max_value=4))
    feeds = []
    for _ in range(n_ports):
        cycles = sorted(
            draw(st.lists(st.integers(0, 30), min_size=0, max_size=12))
        )
        k = len(cycles)
        vcs = draw(st.lists(st.integers(0, 7), min_size=k, max_size=k))
        feeds.append(
            PortFeed(
                cycles=np.asarray(cycles, dtype=np.int64),
                vcs=np.asarray(vcs, dtype=np.int64),
                frame_ids=np.arange(k, dtype=np.int64),
                frame_last=np.zeros(k, dtype=bool),
            )
        )
    return feeds


class TestInjectionWalk:
    @given(feeds=feed_sets())
    @settings(max_examples=120, deadline=None)
    def test_cycle_by_cycle_matches_naive(self, feeds):
        nics = [_RecorderNIC() for _ in feeds]
        pointers = [0] * len(feeds)
        for now in range(32):
            for nic in nics:
                nic.now = now
            inject_due_flits(feeds, pointers, nics, now)
        assert [n.flits for n in nics] == _naive_walk(feeds, 32)

    @given(feeds=feed_sets())
    @settings(max_examples=120, deadline=None)
    def test_event_driven_jumps_match_naive(self, feeds):
        # Visit only the cycles next_injection_cycle names (the skip
        # engine's schedule) — every flit must still land exactly once,
        # on exactly its due cycle, in feed order.
        nics = [_RecorderNIC() for _ in feeds]
        pointers = [0] * len(feeds)
        horizon = 32
        now = next_injection_cycle(feeds, pointers, horizon)
        while now < horizon:
            for nic in nics:
                nic.now = now
            inject_due_flits(feeds, pointers, nics, now)
            nxt = next_injection_cycle(feeds, pointers, horizon)
            assert nxt > now, "walk must make progress"
            now = nxt
        assert [n.flits for n in nics] == _naive_walk(feeds, horizon)
        assert all(
            ptr == len(feed.cycles) for ptr, feed in zip(pointers, feeds)
        )

    @given(feeds=feed_sets())
    @settings(max_examples=60, deadline=None)
    def test_flits_delivered_on_their_cycle(self, feeds):
        nics = [_RecorderNIC() for _ in feeds]
        pointers = [0] * len(feeds)
        for now in range(32):
            for nic in nics:
                nic.now = now
            inject_due_flits(feeds, pointers, nics, now)
        for nic in nics:
            for _vc, cycle, _fid, _last, seen_at in nic.flits:
                assert seen_at == cycle

    def test_same_cycle_burst_and_cycle_zero(self):
        feed = PortFeed(
            cycles=np.asarray([0, 0, 0, 4, 4], dtype=np.int64),
            vcs=np.asarray([3, 1, 2, 0, 1], dtype=np.int64),
            frame_ids=np.arange(5, dtype=np.int64),
            frame_last=np.asarray([False, False, True, False, True]),
        )
        nic = _RecorderNIC()
        pointers = [0]
        assert next_injection_cycle([feed], pointers, 99) == 0
        inject_due_flits([feed], pointers, [nic], 0)
        assert [f[0] for f in nic.flits] == [3, 1, 2]  # feed order kept
        assert next_injection_cycle([feed], pointers, 99) == 4
        inject_due_flits([feed], pointers, [nic], 4)
        assert len(nic.flits) == 5
        assert next_injection_cycle([feed], pointers, 99) == 99

    def test_empty_feeds(self):
        feed = PortFeed(
            cycles=np.asarray([], dtype=np.int64),
            vcs=np.asarray([], dtype=np.int64),
            frame_ids=np.asarray([], dtype=np.int64),
            frame_last=np.asarray([], dtype=bool),
        )
        nic = _RecorderNIC()
        pointers = [0]
        inject_due_flits([feed], pointers, [nic], 0)
        assert nic.flits == []
        assert next_injection_cycle([feed], pointers, 1234) == 1234


# ----------------------------------------------------------------------
# Twin loops stay in lockstep after the de-drift refactor
# ----------------------------------------------------------------------


class TestTwinLoopDrift:
    def test_disabled_twins_match_plain(self):
        """Plain vs telemetry vs zero-churn sessions: same bits.

        All three cycle loops now share the injection walk; a drifted
        twin would change grants and therefore the result payload or
        the arbiter RNG fingerprint.
        """
        plain = _run(False)
        tel = _run(False, telemetry=True)
        assert tel == plain

        zero = dataclasses.replace(CHURN, arrivals_per_kcycle=0.0)

        def zero_churn(skip):
            sim = SingleRouterSim(CFG, "coa", "siabp", 0, skip_idle=skip)
            workload = build_cbr_workload(sim.router, 0.12, sim.rng.workload)
            engine = SessionEngine.from_spec(
                CFG, SessionsSpec(churn=zero), 900, sim.rng.sessions
            )
            result = sim.run(
                workload, RunControl(cycles=900, warmup_cycles=150),
                sessions=engine,
            )
            return (
                json.dumps(result.to_dict(), sort_keys=True),
                sim.rng.state_fingerprint(),
            )

        assert zero_churn(False) == plain
        assert zero_churn(True) == plain

    @pytest.mark.parametrize("seed", [0, 3])
    def test_skip_twins_match_each_other(self, seed):
        # Skip-enabled telemetry/session twins against their own
        # reference loops (the instrumented results differ from plain
        # only through the enabled feature, never through the skipping).
        for kw in ({"telemetry": True}, {"sessions": True}):
            assert _run(False, seed=seed, **kw) == _run(True, seed=seed, **kw)
