"""Connection descriptors and the per-router connection table.

The MMR is connection-oriented for multimedia traffic: every CBR/VBR flow
holds a dedicated virtual channel on each link of its path, with bandwidth
reserved in flit-cycle slots per round at connection-setup time.
Best-effort traffic needs no reservation (it travels under virtual
cut-through) but still occupies a virtual channel.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Iterator

from .config import RouterConfig

__all__ = ["TrafficClass", "Connection", "ConnectionTable"]


class TrafficClass(enum.IntEnum):
    """Service classes distinguished by the MMR."""

    CBR = 0
    VBR = 1
    BEST_EFFORT = 2


@dataclass(frozen=True)
class Connection:
    """One established connection through the router.

    Attributes
    ----------
    conn_id:
        Global identifier, unique across the simulation.
    in_port / vc:
        Input physical link and the virtual channel reserved on it.
    out_port:
        Output physical link the connection is routed to.
    traffic_class:
        CBR, VBR or best-effort.
    avg_slots:
        Reserved flit-cycle slots per round for the *average* (CBR:
        constant) bandwidth.  This is the SIABP priority seed and the
        quantity CBR admission sums.  Best-effort connections have
        ``avg_slots == 1`` by convention (minimum seed, no reservation).
    peak_slots:
        Slots per round at the connection's *peak* rate (VBR only; equal
        to ``avg_slots`` for CBR).  VBR admission sums this against
        ``round * concurrency_factor``.
    """

    conn_id: int
    in_port: int
    vc: int
    out_port: int
    traffic_class: TrafficClass
    avg_slots: int
    peak_slots: int

    def __post_init__(self) -> None:
        if self.conn_id < 0:
            raise ValueError("conn_id must be >= 0")
        if self.avg_slots <= 0:
            raise ValueError("avg_slots must be positive")
        if self.peak_slots < self.avg_slots:
            raise ValueError(
                f"peak_slots ({self.peak_slots}) must be >= avg_slots "
                f"({self.avg_slots})"
            )

    @property
    def is_reserved(self) -> bool:
        """True for classes that reserve bandwidth (CBR/VBR)."""
        return self.traffic_class is not TrafficClass.BEST_EFFORT

    def avg_rate_bps(self, config: RouterConfig) -> float:
        """Average bit rate implied by the reservation."""
        return config.slots_to_rate(self.avg_slots)

    def peak_rate_bps(self, config: RouterConfig) -> float:
        """Peak bit rate implied by the reservation."""
        return config.slots_to_rate(self.peak_slots)


class ConnectionTable:
    """All connections established through one router.

    Enforces the structural invariants the hardware enforces by
    construction: one connection per (input port, VC) pair, ports and VCs
    within range.
    """

    def __init__(self, config: RouterConfig) -> None:
        self._config = config
        self._by_id: dict[int, Connection] = {}
        # (in_port, vc) -> Connection
        self._by_vc: dict[tuple[int, int], Connection] = {}
        # Per-port min-heap of candidate free VCs.  Entries are *lazy*:
        # a VC may appear while occupied (it was free when pushed, or
        # ``add`` took it explicitly) or appear twice; ``free_vc`` skips
        # stale tops.  This keeps setup O(log V) amortized under churn
        # while preserving the lowest-numbered-free-VC semantics the
        # setup path (and its tests) pin.
        self._free_heaps: list[list[int]] = [
            list(range(config.vcs_per_link)) for _ in range(config.num_ports)
        ]

    def add(self, conn: Connection) -> None:
        """Register a connection; raises on any structural conflict."""
        cfg = self._config
        if not (0 <= conn.in_port < cfg.num_ports):
            raise ValueError(f"in_port {conn.in_port} out of range")
        if not (0 <= conn.out_port < cfg.num_ports):
            raise ValueError(f"out_port {conn.out_port} out of range")
        if not (0 <= conn.vc < cfg.vcs_per_link):
            raise ValueError(f"vc {conn.vc} out of range")
        if conn.conn_id in self._by_id:
            raise ValueError(f"duplicate conn_id {conn.conn_id}")
        key = (conn.in_port, conn.vc)
        if key in self._by_vc:
            raise ValueError(
                f"VC {conn.vc} on input port {conn.in_port} already taken "
                f"by connection {self._by_vc[key].conn_id}"
            )
        self._by_id[conn.conn_id] = conn
        self._by_vc[key] = conn

    def remove(self, conn_id: int) -> Connection:
        """Tear a connection down, freeing its VC."""
        conn = self._by_id.pop(conn_id, None)
        if conn is None:
            raise KeyError(f"unknown connection {conn_id}")
        del self._by_vc[(conn.in_port, conn.vc)]
        heapq.heappush(self._free_heaps[conn.in_port], conn.vc)
        return conn

    def replace(self, conn_id: int, new_conn: Connection) -> Connection:
        """Swap a connection in place (renegotiation): same id, port, VC.

        Returns the previous descriptor.  Only the reservation fields may
        change; identity and placement are pinned so no VC bookkeeping
        (heaps, router per-VC arrays) needs to move.
        """
        old = self._by_id.get(conn_id)
        if old is None:
            raise KeyError(f"unknown connection {conn_id}")
        if (
            new_conn.conn_id != conn_id
            or new_conn.in_port != old.in_port
            or new_conn.vc != old.vc
            or new_conn.out_port != old.out_port
        ):
            raise ValueError("replace may not change identity or placement")
        self._by_id[conn_id] = new_conn
        self._by_vc[(new_conn.in_port, new_conn.vc)] = new_conn
        return old

    def get(self, conn_id: int) -> Connection:
        return self._by_id[conn_id]

    def at_vc(self, in_port: int, vc: int) -> Connection | None:
        """Connection holding (in_port, vc), if any."""
        return self._by_vc.get((in_port, vc))

    def free_vc(self, in_port: int) -> int | None:
        """Lowest-numbered free VC on an input port, or ``None`` if full.

        Amortized O(log V) via the lazy per-port heap (the historical
        linear scan made setup O(V) — hot under connection churn).  This
        is a query, not an allocation: the returned VC stays at the heap
        top until :meth:`add` occupies it.
        """
        heap = self._free_heaps[in_port]
        while heap:
            vc = heap[0]
            if (in_port, vc) not in self._by_vc:
                return vc
            heapq.heappop(heap)  # stale entry: occupied since pushed
        return None

    def on_input(self, in_port: int) -> list[Connection]:
        """Connections entering through a given input port."""
        return [c for c in self._by_id.values() if c.in_port == in_port]

    def on_output(self, out_port: int) -> list[Connection]:
        """Connections leaving through a given output port."""
        return [c for c in self._by_id.values() if c.out_port == out_port]

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Connection]:
        return iter(self._by_id.values())

    def __contains__(self, conn_id: int) -> bool:
        return conn_id in self._by_id
