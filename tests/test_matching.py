"""Tests for repro.core.matching (shared arbiter types and invariants)."""

import numpy as np
import pytest

from repro.core.matching import (
    Candidate,
    best_candidate_for,
    is_conflict_free,
    is_maximal,
    matching_size,
    request_matrix,
)


def cand(i, v, o, prio=1.0, level=0):
    return Candidate(i, v, o, prio, level)


class TestConflictFree:
    def test_empty_is_conflict_free(self):
        assert is_conflict_free([], 4)

    def test_valid_matching(self):
        assert is_conflict_free([(0, 0, 1), (1, 3, 0)], 4)

    def test_duplicate_input_rejected(self):
        assert not is_conflict_free([(0, 0, 1), (0, 1, 2)], 4)

    def test_duplicate_output_rejected(self):
        assert not is_conflict_free([(0, 0, 1), (2, 0, 1)], 4)

    def test_out_of_range_rejected(self):
        assert not is_conflict_free([(4, 0, 1)], 4)
        assert not is_conflict_free([(0, 0, 4)], 4)
        assert not is_conflict_free([(-1, 0, 1)], 4)


class TestMaximal:
    def test_empty_candidates_trivially_maximal(self):
        assert is_maximal([[], []], [], 2)

    def test_detects_missed_grant(self):
        cands = [[cand(0, 0, 1)], []]
        assert not is_maximal(cands, [], 2)
        assert is_maximal(cands, [(0, 0, 1)], 2)

    def test_blocked_request_does_not_break_maximality(self):
        cands = [[cand(0, 0, 1)], [cand(1, 0, 1)]]
        # Output 1 already taken: input 1's request cannot be served.
        assert is_maximal(cands, [(0, 0, 1)], 2)

    def test_matching_size(self):
        assert matching_size([(0, 0, 1), (1, 0, 0)]) == 2


class TestRequestMatrix:
    def test_collapses_levels(self):
        cands = [
            [cand(0, 0, 1, level=0), cand(0, 1, 2, level=1)],
            [cand(1, 0, 1, level=0)],
        ]
        r = request_matrix(cands, 3)
        expected = np.zeros((3, 3), dtype=bool)
        expected[0, 1] = expected[0, 2] = expected[1, 1] = True
        np.testing.assert_array_equal(r, expected)


class TestBestCandidateFor:
    def test_picks_lowest_level(self):
        cands = [
            [cand(0, 3, 1, prio=10, level=0), cand(0, 5, 1, prio=99, level=1)],
        ]
        best = best_candidate_for(cands, 0, 1)
        assert best.vc == 3  # level beats raw priority: the link
        # scheduler already ranked level 0 highest.

    def test_missing_request_raises(self):
        with pytest.raises(ValueError):
            best_candidate_for([[cand(0, 0, 1)]], 0, 2)
