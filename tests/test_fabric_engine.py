"""Tests for repro.fabric.engine: lifecycle, determinism, re-admission.

The acceptance gates of the fabric subsystem live here:

* same seed replays bit-identically (payload, result, RNG fingerprints);
* a zero-churn fabric run is bit-identical to a plain
  ``MultiRouterNetwork`` loop driven by the same primitives;
* on a loaded fat-tree, ECMP and WRR re-admission measurably lower
  blocking versus first-fit at fixed seeds.
"""

import dataclasses

import pytest

from repro.fabric.churn import generate_fabric_timeline
from repro.fabric.engine import FabricSim, build_static_load
from repro.fabric.spec import FabricSpec, TopologySpec
from repro.network.multirouter import MultiRouterNetwork
from repro.router.config import RouterConfig
from repro.sessions.churn import ChurnConfig
from repro.sim.engine import RngStreams

CHURN = ChurnConfig(
    arrivals_per_kcycle=2.0,
    mean_hold_cycles=2_500.0,
    mix=(("cbr-high", 1.0),),
)


def make_config(**overrides):
    base = dict(num_ports=6, vcs_per_link=8, vc_buffer_depth=2,
                candidate_levels=4, flit_cycles_per_round=800)
    base.update(overrides)
    return RouterConfig(**base)


def make_spec(**overrides):
    base = dict(topology=TopologySpec.torus(2, 3), churn=CHURN)
    base.update(overrides)
    return FabricSpec(**base)


class TestTimeline:
    def test_deterministic(self):
        spec = make_spec()
        topo = spec.topology.build()
        hosts = spec.topology.host_routers()
        a = generate_fabric_timeline(topo, hosts, make_config(), CHURN,
                                     5_000, RngStreams(3).sessions)
        b = generate_fabric_timeline(topo, hosts, make_config(), CHURN,
                                     5_000, RngStreams(3).sessions)
        assert len(a) == len(b) > 0
        for fa, fb in zip(a, b):
            assert (fa.src_router, fa.dst_router) == (
                fb.src_router, fb.dst_router)
            assert fa.spec.arrival_cycle == fb.spec.arrival_cycle
            assert fa.spec.hold_cycles == fb.spec.hold_cycles

    def test_endpoints_are_host_ports(self):
        spec = make_spec(topology=TopologySpec.fat_tree(4))
        topo = spec.topology.build()
        hosts = spec.topology.host_routers()
        config = make_config()
        timeline = generate_fabric_timeline(
            topo, hosts, config, CHURN, 6_000, RngStreams(0).sessions)
        assert timeline
        for fs in timeline:
            assert fs.src_router in hosts
            assert fs.dst_router in hosts
            assert fs.src_router != fs.dst_router
            assert (topo.degree(fs.src_router) <= fs.spec.in_port
                    < config.num_ports)
            assert (topo.degree(fs.dst_router) <= fs.spec.out_port
                    < config.num_ports)

    def test_zero_rate_draws_nothing(self):
        spec = make_spec(churn=ChurnConfig(arrivals_per_kcycle=0.0))
        rng = RngStreams(5)
        before = rng.state_fingerprint()
        out = generate_fabric_timeline(
            spec.topology.build(), spec.topology.host_routers(),
            make_config(), spec.churn, 5_000, rng.sessions)
        assert out == []
        assert rng.state_fingerprint() == before

    def test_validation(self):
        spec = make_spec()
        topo = spec.topology.build()
        with pytest.raises(ValueError):
            generate_fabric_timeline(topo, [0], make_config(), CHURN,
                                     1_000, RngStreams(0).sessions)
        with pytest.raises(ValueError):
            generate_fabric_timeline(topo, [0, 1], make_config(), CHURN,
                                     0, RngStreams(0).sessions)


class TestDeterminism:
    def run_once(self, seed=0, cycles=5_000, **spec_overrides):
        sim = FabricSim(make_spec(**spec_overrides), make_config(),
                        seed=seed)
        result = sim.run(0.0, cycles)
        return result, sim

    @pytest.mark.parametrize("policy", ["first-fit", "ecmp", "wrr"])
    def test_same_seed_identical(self, policy):
        r1, s1 = self.run_once(path_policy=policy)
        r2, s2 = self.run_once(path_policy=policy)
        assert r1.to_dict() == r2.to_dict()
        assert s1.engine.to_payload() == s2.engine.to_payload()
        assert s1.fingerprint() == s2.fingerprint()
        assert s1.engine.stats.offered > 0

    def test_different_seed_differs(self):
        _, s1 = self.run_once(seed=0)
        _, s2 = self.run_once(seed=1)
        assert s1.engine.to_payload() != s2.engine.to_payload()

    def test_zero_churn_bit_identical_to_plain_network(self):
        cycles = 3_000
        config = make_config()
        spec = make_spec(
            churn=ChurnConfig(arrivals_per_kcycle=0.0),
            conns_per_router=4, drain=True,
        )
        sim = FabricSim(spec, config, seed=2)
        sim.run(0.35, cycles)

        rng = RngStreams(2)
        net = MultiRouterNetwork(spec.topology.build(), config)
        conns, schedules = build_static_load(net, 4, 0.35, cycles,
                                             rng.workload)
        pointers = [0] * len(conns)
        arb = rng.arbiter
        for now in range(cycles):
            for idx, conn in enumerate(conns):
                times = schedules[idx]
                ptr = pointers[idx]
                while ptr < len(times) and times[ptr] <= now:
                    net.inject(conn, gen_cycle=now)
                    ptr += 1
                pointers[idx] = ptr
            net.step(now, arb)
        now = cycles
        while net.total_buffered() > 0 and now < cycles * 3:
            net.step(now, arb)
            now += 1

        assert sim.net.delivered == net.delivered > 0
        assert sim.net.total_buffered() == net.total_buffered()
        assert sim.net.lost_flits == net.lost_flits
        fab_stat, plain_stat = sim.net.end_to_end_delay, net.end_to_end_delay
        assert (fab_stat.n, fab_stat.mean, fab_stat.max) == (
            plain_stat.n, plain_stat.mean, plain_stat.max)
        assert sim.fingerprint() == rng.state_fingerprint()
        assert sim.engine.stats.offered == 0


class TestLifecycle:
    def test_sessions_inject_and_release(self):
        result, sim = TestDeterminism().run_once(cycles=6_000)
        engine = sim.engine
        payload = engine.to_payload()
        assert engine.stats.offered > 0
        assert engine.stats.admitted > 0
        assert payload["network"]["dynamic_injected"] > 0
        assert payload["network"]["delivered"] > 0
        assert payload["network"]["lost_flits"] == 0
        # Erlang bookkeeping: offered = admitted + blocked.
        assert engine.stats.offered == (
            engine.stats.admitted + engine.stats.blocked)
        # Released sessions drained fully before teardown.
        released = sum(c["released"] for c in payload["by_class"].values())
        assert released == payload["network"]["released_connections"]
        kinds = {line.split()[1] for line in payload["event_log"]}
        assert {"arrive", "admit"} <= kinds

    def test_hop_histogram_matches_topology(self):
        _, sim = TestDeterminism().run_once(cycles=6_000)
        hops = sim.engine.hop_histogram
        assert hops
        # torus(2,3) diameter is 2 links; alternates can be longer but
        # every admitted path traverses >= 1 link.
        assert min(hops) >= 1
        assert sum(hops.values()) == sim.engine.stats.admitted

    def test_blocked_at_hop_populated_under_pressure(self):
        hot = dataclasses.replace(CHURN, arrivals_per_kcycle=8.0)
        _, sim = TestDeterminism().run_once(cycles=6_000, churn=hot)
        assert sim.engine.stats.blocked > 0
        assert sum(sim.engine.blocked_at_hop.values()) >= (
            sim.engine.stats.blocked)

    def test_audit_passes_at_finish(self):
        # finish() audits every router ledger; run() already called it.
        _, sim = TestDeterminism().run_once(cycles=4_000)
        for router in sim.net.routers:
            router.admission.audit(router.table)


class TestReadmission:
    def fat_tree_blocking(self, policy, seed):
        spec = make_spec(
            topology=TopologySpec.fat_tree(4),
            churn=dataclasses.replace(CHURN, arrivals_per_kcycle=4.0),
            path_policy=policy,
            k_paths=4,
            max_path_attempts=2,
        )
        sim = FabricSim(spec, make_config(), seed=seed)
        sim.run(0.0, 6_000)
        stats = sim.engine.stats
        return stats.blocked / stats.offered, sim.engine

    @pytest.mark.parametrize("policy", ["ecmp", "wrr"])
    def test_alternate_path_policies_beat_first_fit(self, policy):
        """ECMP/WRR re-admission lowers fat-tree blocking vs first-fit.

        Fixed seeds; the margin is wide (tens of percent relative), so
        this is a stable regression gate, not a statistical flake.
        """
        for seed in (0, 1):
            base, _ = self.fat_tree_blocking("first-fit", seed)
            alt, engine = self.fat_tree_blocking(policy, seed)
            assert alt < base, (
                f"{policy} blocking {alt:.3f} not below first-fit "
                f"{base:.3f} at seed {seed}"
            )
            assert engine.stats.readmitted_alt > 0

    def test_alternate_paths_balance_load(self):
        _, ff = self.fat_tree_blocking("first-fit", 0)
        _, wrr = self.fat_tree_blocking("wrr", 0)
        jain_ff = ff.path_balance_series[-1][3]
        jain_wrr = wrr.path_balance_series[-1][3]
        assert jain_wrr > jain_ff


class TestStaticLoad:
    def test_zero_conns_is_empty(self):
        net = MultiRouterNetwork(TopologySpec.ring(4).build(), make_config())
        conns, schedules = build_static_load(net, 0, 0.5, 1_000,
                                             RngStreams(0).workload)
        assert conns == [] and schedules == []

    def test_load_validation(self):
        net = MultiRouterNetwork(TopologySpec.ring(4).build(), make_config())
        with pytest.raises(ValueError):
            build_static_load(net, 4, 0.0, 1_000, RngStreams(0).workload)
