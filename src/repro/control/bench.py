"""Control-plane overhead benchmark and determinism checks.

Produces the ``BENCH_control.json`` artifact and the CI gates behind it:

* the ``control=None`` engine path must be within measurement noise of
  itself (two interleaved timings of the identical code path — the
  disabled bound, gated below 1%);
* a control-enabled engine (estimators stepping, lossy signaling with
  retries) must stay within 5% of the control-disabled engine;
* a control-disabled run must be *bit-identical* to a plain run —
  same :meth:`SimResult.to_dict` and same RNG fingerprint — on both the
  healthy simulator and the fault-injecting harness;
* same-seed control-enabled runs must replay byte-identically, control
  payload included (retry/backoff/give-up logs are deterministic).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from time import perf_counter_ns
from typing import Any

from ..sessions.churn import ChurnConfig
from ..sessions.signaling import SessionEngine, SessionsSpec
from ..sim.engine import RunControl
from .config import ControlConfig, RetryPolicy

__all__ = [
    "BENCH_CONTROL",
    "ControlBenchStats",
    "ControlBenchReport",
    "run_control_bench",
    "check_control_overhead",
    "write_control_report",
]

#: Churn profile shared by every variant (same as the sessions bench).
BENCH_CHURN = ChurnConfig(
    arrivals_per_kcycle=2.0,
    mean_hold_cycles=3_000.0,
    mix=(("cbr-low", 0.4), ("cbr-medium", 0.3), ("vbr", 0.2),
         ("best-effort", 0.1)),
)

#: Control config the enabled variant runs: lossy signaling so the retry
#: machinery does real work, default estimator gains and water marks.
BENCH_CONTROL = ControlConfig(retry=RetryPolicy(loss_rate=0.02))


@dataclass
class ControlBenchStats:
    """One variant's timing (best of the interleaved repetitions)."""

    cycles_per_sec: float
    wall_s: float
    wall_s_all: list[float] = field(default_factory=list)


@dataclass
class ControlBenchReport:
    """Everything ``BENCH_control.json`` records."""

    ports: int
    vcs: int
    levels: int
    arbiter: str
    scheme: str
    load: float
    seed: int
    cycles: int
    repeats: int
    plain: ControlBenchStats
    disabled: ControlBenchStats
    enabled: ControlBenchStats
    #: (disabled - plain) / plain: both time the identical control=None
    #: engine path, so this bounds the measurement noise the gate allows.
    overhead_disabled: float
    #: (enabled - disabled) / disabled: cost of estimators + retries.
    overhead_enabled: float
    #: Control-disabled churn run is bit-identical to a plain churn run
    #: (SimResult dicts, session payloads and RNG fingerprints match).
    disabled_identical: bool
    #: Same on the fault-injecting harness: a faulty run with a
    #: zero-churn control-disabled engine matches a plain faulty run.
    faulty_disabled_identical: bool
    #: Same-seed control-enabled runs replayed byte-identically
    #: (SimResult, sessions payload, control payload, RNG fingerprints).
    replay_identical: bool
    #: Signaling volume context for the enabled run.
    setup_timeouts: int
    setup_retries: int
    pressure_samples: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def run_control_bench(
    *,
    ports: int = 4,
    vcs: int = 64,
    levels: int = 4,
    arbiter: str = "coa",
    scheme: str = "siabp",
    load: float = 0.7,
    seed: int = 0,
    cycles: int = 20_000,
    repeats: int = 5,
) -> ControlBenchReport:
    """Measure control-plane overhead on the paper config, best-of-N.

    Three variants are timed with interleaved repetitions so background
    load hits all of them: *plain* and *disabled* both run a churn
    engine with ``control=None`` (identical code path — their delta is
    pure noise and is the disabled-overhead bound), *enabled* runs the
    same churn under :data:`BENCH_CONTROL`.  The faulty-harness identity
    check runs once, untimed, after the timing loop.
    """
    from ..perf.harness import make_cbr_sim

    control = RunControl(cycles=cycles, warmup_cycles=0)
    spec_off = SessionsSpec(churn=BENCH_CHURN)
    spec_on = SessionsSpec(churn=BENCH_CHURN, control=BENCH_CONTROL)

    def timed(spec: SessionsSpec):
        sim, workload = make_cbr_sim(
            ports, vcs, levels, arbiter, scheme, load, seed, True
        )
        engine = SessionEngine.from_spec(
            sim.router.config, spec, cycles, sim.rng.sessions
        )
        t0 = perf_counter_ns()
        result = sim.run(workload, control, sessions=engine)
        wall = (perf_counter_ns() - t0) / 1e9
        return wall, result, sim.rng.state_fingerprint(), engine

    plain_walls: list[float] = []
    disabled_walls: list[float] = []
    enabled_walls: list[float] = []
    plain_run = disabled_run = None
    enabled_runs: list[tuple[Any, Any, Any]] = []
    for _ in range(repeats):
        wall, result, fp, engine = timed(spec_off)
        plain_walls.append(wall)
        plain_run = (result, fp, engine)
        wall, result, fp, engine = timed(spec_off)
        disabled_walls.append(wall)
        disabled_run = (result, fp, engine)
        wall, result, fp, engine = timed(spec_on)
        enabled_walls.append(wall)
        enabled_runs.append((result, fp, engine))

    def stats(walls: list[float]) -> ControlBenchStats:
        best = min(walls)
        return ControlBenchStats(
            cycles_per_sec=cycles / best if best > 0 else float("inf"),
            wall_s=best,
            wall_s_all=walls,
        )

    plain = stats(plain_walls)
    disabled = stats(disabled_walls)
    enabled = stats(enabled_walls)
    disabled_identical = (
        plain_run[0].to_dict() == disabled_run[0].to_dict()
        and plain_run[1] == disabled_run[1]
        and plain_run[2].to_payload() == disabled_run[2].to_payload()
    )
    first_result, first_fp, first_engine = enabled_runs[0]
    first_sessions = first_engine.to_payload()
    first_control = first_engine.control_payload()
    replay_identical = all(
        r.to_dict() == first_result.to_dict()
        and fp == first_fp
        and e.to_payload() == first_sessions
        and e.control_payload() == first_control
        for r, fp, e in enabled_runs[1:]
    )
    faulty_disabled_identical = _check_faulty_identity(
        ports, vcs, arbiter, scheme, load, seed, cycles
    )
    return ControlBenchReport(
        ports=ports,
        vcs=vcs,
        levels=levels,
        arbiter=arbiter,
        scheme=scheme,
        load=load,
        seed=seed,
        cycles=cycles,
        repeats=repeats,
        plain=plain,
        disabled=disabled,
        enabled=enabled,
        overhead_disabled=(disabled.wall_s - plain.wall_s) / plain.wall_s,
        overhead_enabled=(enabled.wall_s - disabled.wall_s) / disabled.wall_s,
        disabled_identical=disabled_identical,
        faulty_disabled_identical=faulty_disabled_identical,
        replay_identical=replay_identical,
        setup_timeouts=first_control["signaling"]["setup_timeouts"],
        setup_retries=first_control["signaling"]["setup_retries"],
        pressure_samples=len(first_control["pressure_series"]),
    )


def _check_faulty_identity(
    ports: int,
    vcs: int,
    arbiter: str,
    scheme: str,
    load: float,
    seed: int,
    cycles: int,
) -> bool:
    """Faulty-harness twin identity: plain vs zero-churn disabled engine.

    A zero-arrival, control-disabled engine must not perturb a faulty
    run at all — same result dict, same RNG fingerprint.
    """
    from ..faults.harness import FaultySingleRouterSim
    from ..faults.models import FaultConfig
    from ..sim.experiments import default_config
    from ..traffic.mixes import build_cbr_workload

    config = default_config(num_ports=ports, vcs_per_link=vcs)
    faults = FaultConfig(corruption_rate=0.01, credit_loss_rate=0.002)
    control = RunControl(cycles=cycles, warmup_cycles=0)
    zero_churn = ChurnConfig(arrivals_per_kcycle=0.0)

    def run(with_engine: bool):
        sim = FaultySingleRouterSim(
            config, arbiter=arbiter, scheme=scheme, seed=seed, faults=faults
        )
        workload = build_cbr_workload(sim.router, load, sim.rng.workload)
        engine = None
        if with_engine:
            engine = SessionEngine.from_spec(
                config, SessionsSpec(churn=zero_churn), cycles,
                sim.rng.sessions,
            )
        result = sim.run(workload, control, sessions=engine)
        return result.to_dict(), sim.rng.state_fingerprint()

    return run(False) == run(True)


def check_control_overhead(
    report: ControlBenchReport,
    max_disabled: float = 0.01,
    max_enabled: float = 0.05,
) -> tuple[bool, str]:
    """Gate control-plane overhead and determinism (CI).

    Negative measured overheads (timing noise) count as zero.
    """
    problems = []
    disabled = max(0.0, report.overhead_disabled)
    enabled = max(0.0, report.overhead_enabled)
    if disabled > max_disabled:
        problems.append(
            f"control-disabled overhead {disabled:.2%} > {max_disabled:.2%}"
        )
    if enabled > max_enabled:
        problems.append(
            f"control-enabled overhead {enabled:.2%} > {max_enabled:.2%}"
        )
    if not report.disabled_identical:
        problems.append(
            "control-disabled run diverged from the plain churn run "
            "(results, payloads or RNG state differ)"
        )
    if not report.faulty_disabled_identical:
        problems.append(
            "zero-churn disabled engine perturbed the faulty harness run"
        )
    if not report.replay_identical:
        problems.append(
            "same-seed control-enabled runs did not replay identically"
        )
    if problems:
        return False, "; ".join(problems)
    return True, (
        f"control overhead OK: disabled {disabled:.2%} "
        f"(max {max_disabled:.2%}), enabled {enabled:.2%} "
        f"(max {max_enabled:.2%}), replay identical over "
        f"{report.repeats} runs"
    )


def write_control_report(report: ControlBenchReport, path: str | Path) -> Path:
    """Serialize the report to JSON (the ``BENCH_control.json`` format)."""
    path = Path(path)
    path.write_text(
        json.dumps(report.to_dict(), indent=2, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return path
