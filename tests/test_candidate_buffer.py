"""Tests for repro.core.candidates (the zero-allocation candidate buffer).

Covers the buffer's array semantics, the sparse Python-native twin and
its lazy array materialization, the exact integer priority keys (no
float64 collapse above 2**53), and the equivalence of the buffer fill
with the object-path selection entry points.
"""

import numpy as np
import pytest

from repro.core.candidates import CandidateBuffer, TIER_SHIFT
from repro.core.link_scheduler import RESERVED_SCALE, LinkScheduler
from repro.core.priorities import (
    FIFOPriority,
    IABP,
    SIABP,
    StaticPriority,
)
from repro.router.config import RouterConfig
from repro.router.vc_memory import VCMemory


def make(vcs=8, levels=4, ports=3, scheme=None, depth=4):
    cfg = RouterConfig(num_ports=ports, vcs_per_link=vcs,
                       candidate_levels=levels, vc_buffer_depth=depth)
    sched = LinkScheduler(cfg, scheme or SIABP())
    return cfg, VCMemory(cfg), sched


def conn_arrays(cfg, rng, reserved_frac=0.5):
    n, v = cfg.num_ports, cfg.vcs_per_link
    slots = rng.integers(1, 200, size=(n, v)).astype(np.int64)
    dests = rng.integers(0, n, size=(n, v)).astype(np.int64)
    reserved = rng.random((n, v)) < reserved_frac
    return slots, dests, reserved


def tier_scale(reserved):
    return np.where(reserved, RESERVED_SCALE, 1.0)


def random_occupancy(mem, cfg, rng, steps=120, now0=0):
    """Drive push/pop traffic; returns the final cycle."""
    now = now0
    n, v = cfg.num_ports, cfg.vcs_per_link
    for _ in range(steps):
        now += 1
        p, vc = int(rng.integers(n)), int(rng.integers(v))
        if rng.random() < 0.6 and mem.free_space(p, vc):
            mem.push(p, vc, now, -1, False, now)
        elif mem.occupancy_of(p, vc):
            mem.pop(p, vc)
    return now


class TestConstruction:
    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            CandidateBuffer(0, 4)
        with pytest.raises(ValueError):
            CandidateBuffer(4, 0)

    def test_starts_empty(self):
        buf = CandidateBuffer(3, 2)
        assert buf.total() == 0
        assert buf.to_candidates() == [[], [], []]
        assert not buf.sparse_valid


class TestFillEquivalence:
    """select_into must produce exactly the select_batch candidates."""

    @pytest.mark.parametrize(
        "scheme", [SIABP(), StaticPriority(), FIFOPriority(), IABP(100)]
    )
    def test_buffer_matches_object_path(self, scheme):
        cfg, mem, _ = make(scheme=scheme)
        sched = LinkScheduler(cfg, scheme)
        buf = CandidateBuffer(cfg.num_ports, cfg.candidate_levels)
        rng = np.random.default_rng(3)
        slots, dests, reserved = conn_arrays(cfg, rng)
        scale = tier_scale(reserved)
        now = 0
        for _ in range(30):
            now = random_occupancy(mem, cfg, rng, steps=15, now0=now)
            batch = sched.select_batch(
                mem.heads_all(), slots, dests, now, scale
            )
            sched.select_into(
                buf, mem.heads_all(), slots, dests, now, reserved
            )
            assert buf.to_candidates() == batch

    def test_empty_router_fill(self):
        cfg, mem, sched = make()
        buf = CandidateBuffer(cfg.num_ports, cfg.candidate_levels)
        slots = np.ones((cfg.num_ports, cfg.vcs_per_link), dtype=np.int64)
        dests = np.zeros_like(slots)
        sched.select_into(buf, mem.heads_all(), slots, dests, 5)
        assert buf.total() == 0
        assert buf.to_candidates() == [[] for _ in range(cfg.num_ports)]
        assert buf.sparse_valid and all(not row for row in buf.sparse)


class TestSparseTwin:
    def test_sparse_rows_match_arrays(self):
        cfg, mem, sched = make()
        buf = CandidateBuffer(cfg.num_ports, cfg.candidate_levels)
        rng = np.random.default_rng(11)
        slots, dests, reserved = conn_arrays(cfg, rng)
        now = random_occupancy(mem, cfg, rng)
        sched.select_into(buf, mem.heads_all(), slots, dests, now, reserved)
        assert buf.sparse_valid
        for p in range(cfg.num_ports):
            row = buf.sparse[p]
            assert len(row) == int(buf.count[p])
            for level, (key, vc, out) in enumerate(row):
                assert key == int(buf.prio_int[p, level])
                assert vc == int(buf.vc[p, level])
                assert out == int(buf.out_port[p, level])

    def test_lazy_arrays_sync_after_sparse_fill(self):
        """Arrays read after a sparse fill reflect that fill, not stale data."""
        cfg, mem, sched = make(vcs=4, levels=2, ports=2)
        buf = CandidateBuffer(cfg.num_ports, cfg.candidate_levels)
        slots = np.full((2, 4), 7, dtype=np.int64)
        dests = np.ones((2, 4), dtype=np.int64)
        mem.push(0, 2, 0, -1, False, 0)
        sched.select_into(buf, mem.heads_all(), slots, dests, 3)
        # First read triggers the sync.
        assert int(buf.count[0]) == 1 and int(buf.count[1]) == 0
        assert int(buf.vc[0, 0]) == 2
        assert int(buf.out_port[0, 0]) == 1
        # Refill with different state; arrays must follow.
        mem.pop(0, 2)
        mem.push(1, 3, 0, -1, False, 4)
        sched.select_into(buf, mem.heads_all(), slots, dests, 6)
        assert int(buf.count[0]) == 0 and int(buf.count[1]) == 1
        assert int(buf.vc[1, 0]) == 3

    def test_float_fill_invalidates_sparse(self):
        cfg, mem, _ = make(scheme=IABP(100))
        sched_f = LinkScheduler(cfg, IABP(100))
        sched_i = LinkScheduler(cfg, SIABP())
        buf = CandidateBuffer(cfg.num_ports, cfg.candidate_levels)
        rng = np.random.default_rng(5)
        slots, dests, reserved = conn_arrays(cfg, rng)
        now = random_occupancy(mem, cfg, rng)
        sched_i.select_into(buf, mem.heads_all(), slots, dests, now, reserved)
        assert buf.sparse_valid and buf.integer_keys
        sched_f.select_into(buf, mem.heads_all(), slots, dests, now, reserved)
        assert not buf.sparse_valid and not buf.integer_keys
        # And the float fill's arrays agree with the float object path.
        batch = sched_f.select_batch(
            mem.heads_all(), slots, dests, now, tier_scale(reserved)
        )
        assert buf.to_candidates() == batch


class TestExactPriorities:
    def test_priority_of_unfolds_reserved_tier(self):
        buf = CandidateBuffer(2, 2)
        key = 12345
        buf.sparse[0][:] = [(key + (1 << TIER_SHIFT), 3, 1)]
        buf.sparse[1][:] = [(key, 0, 0)]
        buf.mark_sparse_filled()
        assert buf.priority_of(0, 0) == key * (1 << 200)
        assert buf.priority_of(1, 0) == key

    def test_no_collapse_above_2_53(self):
        """Adjacent integer keys above 2**53 stay distinct and ordered.

        In float64 the pair (2**53, 2**53 + 1) collapses to the same
        value; the integer key path must keep them apart and rank the
        larger one first.
        """
        lo, hi = 2**53, 2**53 + 1
        assert float(lo) == float(hi)  # the float64 trap this guards
        cfg, mem, _ = make(vcs=4, levels=2, ports=1, scheme=StaticPriority())
        sched = LinkScheduler(cfg, StaticPriority())
        buf = CandidateBuffer(1, 2)
        slots = np.array([[lo, hi, 1, 1]], dtype=np.int64)
        dests = np.zeros((1, 4), dtype=np.int64)
        mem.push(0, 0, 0, -1, False, 0)
        mem.push(0, 1, 0, -1, False, 0)
        sched.select_into(buf, mem.heads_all(), slots, dests, 1)
        assert int(buf.vc[0, 0]) == 1  # the +1 key outranks
        assert int(buf.vc[0, 1]) == 0
        assert buf.priority_of(0, 0) == hi
        assert buf.priority_of(0, 1) == lo

    def test_overflow_guard_sparse_and_dense(self):
        cfg, mem, _ = make(vcs=2, levels=2, ports=1, scheme=StaticPriority())
        sched = LinkScheduler(cfg, StaticPriority())
        buf = CandidateBuffer(1, 2)
        slots = np.array([[1 << 62, 1]], dtype=np.int64)
        dests = np.zeros((1, 2), dtype=np.int64)
        mem.push(0, 0, 0, -1, False, 0)
        with pytest.raises(OverflowError):
            sched.select_into(buf, mem.heads_all(), slots, dests, 1)
        with pytest.raises(OverflowError):
            sched.select_batch(mem.heads_all(), slots, dests, 1)
