"""Best-effort traffic: Poisson packet arrivals under virtual cut-through.

The MMR carries best-effort messages with no bandwidth reservation; they
fill whatever capacity the multimedia connections leave unused.  The
paper's evaluation concentrates on CBR/VBR, but the architecture (and the
extension benches here) mixes in best-effort background load, so this
source models the standard open-loop cluster workload: packets arrive as
a Poisson process and carry a geometrically distributed number of flits.

Packets are tracked like application frames (``frame_id`` per packet,
last flit marked) so packet delay can be measured the same way as frame
delay.
"""

from __future__ import annotations

import numpy as np

from .base import InjectionSchedule, TrafficSource

__all__ = ["BestEffortSource"]


class BestEffortSource(TrafficSource):
    """Poisson packet source with geometric packet lengths.

    Parameters
    ----------
    load:
        Long-run average load in flits per cycle (fraction of a link).
    mean_packet_flits:
        Mean packet length; lengths are ``1 + Geometric``.
    """

    name = "best-effort"

    def __init__(self, load: float, mean_packet_flits: float = 8.0) -> None:
        if not (0 < load < 1):
            raise ValueError("load must be in (0, 1)")
        if mean_packet_flits < 1:
            raise ValueError("mean_packet_flits must be >= 1")
        self.load = load
        self.mean_packet_flits = mean_packet_flits

    def mean_load(self) -> float:
        return self.load

    def schedule(self, horizon: int, rng: np.random.Generator) -> InjectionSchedule:
        if horizon <= 0:
            return InjectionSchedule.empty()
        mean_len = self.mean_packet_flits
        packet_rate = self.load / mean_len  # packets per cycle
        expected_packets = max(1, int(horizon * packet_rate * 1.5) + 8)
        gaps = rng.exponential(1.0 / packet_rate, size=expected_packets)
        starts = np.cumsum(gaps)
        starts = starts[starts < horizon].astype(np.int64)
        if starts.size == 0:
            return InjectionSchedule.empty()
        if mean_len > 1:
            # numpy's geometric counts trials (support {1, 2, ...}) with
            # mean 1/p, so p = 1/mean gives exactly the requested mean.
            lengths = rng.geometric(p=1.0 / mean_len, size=starts.size)
        else:
            lengths = np.ones(starts.size, dtype=np.int64)
        cycles_parts: list[np.ndarray] = []
        frame_ids_parts: list[np.ndarray] = []
        last_parts: list[np.ndarray] = []
        cursor = 0  # one source emits at most one flit per cycle
        for pkt_id, (t0, length) in enumerate(zip(starts, lengths)):
            # Flits of one packet are generated back to back; a packet
            # arriving while the previous one is still being emitted
            # queues behind it (the source's own injection link is
            # serial).
            start = max(int(t0), cursor)
            times = start + np.arange(length, dtype=np.int64)
            cursor = start + int(length)
            cycles_parts.append(times)
            frame_ids_parts.append(np.full(length, pkt_id, dtype=np.int64))
            last = np.zeros(length, dtype=bool)
            last[-1] = True
            last_parts.append(last)
        cycles = np.concatenate(cycles_parts)
        frame_ids = np.concatenate(frame_ids_parts)
        frame_last = np.concatenate(last_parts)
        keep = cycles < horizon
        if not keep.all():
            cycles, frame_ids, frame_last = (
                cycles[keep],
                frame_ids[keep],
                frame_last[keep],
            )
        return InjectionSchedule(cycles, frame_ids, frame_last)
