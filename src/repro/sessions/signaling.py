"""Session signaling: setup/teardown protocol and the lifecycle engine.

The MMR establishes connections with pipelined circuit switching — a
probe reserves, an ACK confirms — which takes time.  This module models
that control plane for *dynamic* sessions:

* an arriving session's setup completes ``setup_latency_cycles`` after
  arrival; only then is the CAC decision taken and (on admission) a VC
  allocated and the reservation committed, all against the live router
  state at the decision instant;
* a departing session first *drains* (injection has ended; its NIC queue
  and VC buffer must empty — the router refuses to tear down a VC with
  flits in flight), then its teardown completes
  ``teardown_latency_cycles`` later, releasing VC and reservation;
* a VBR session renegotiates its peak reservation at GOP boundaries via
  :meth:`~repro.router.router.MMRouter.renegotiate_peak`, again after a
  signaling delay; a rejected renegotiation keeps the old reservation
  (commit/rollback is atomic inside the admission controller).

:class:`SessionEngine` drives all of this from inside the simulation
loop via the same twin-loop pattern as telemetry: ``sim.run`` without
``sessions`` never touches any of it.  The engine consumes **no
randomness at run time** — the churn timeline is fully precomputed — so
the event log and every RNG fingerprint are byte-replayable.

:func:`readmit_elsewhere` is the shared re-admission primitive: the
fault-recovery path (``repro.faults``) routes its dead-port teardown +
re-admission through it (and through ``AdmissionController`` proper), so
the reservation ledgers and the connection table can never disagree —
``AdmissionController.audit`` asserts exactly that after every recovery.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..obs.qos import bounds_for
from ..router.config import RouterConfig
from ..router.connection import Connection
from ..router.router import MMRouter
from ..router.routing import SetupResult
from .churn import ChurnConfig, SessionSpec, generate_timeline
from .metrics import SessionEventLog, SessionStats
from .policies import CacPolicy, CacRequest, QosFeedback, make_policy

if TYPE_CHECKING:
    from ..control.config import ControlConfig, RetryPolicy
    from ..control.plane import ControlPlane

__all__ = [
    "SignalingConfig",
    "SessionsSpec",
    "SessionEngine",
    "readmit_elsewhere",
]


@dataclass(frozen=True)
class SignalingConfig:
    """Control-plane latencies, in flit cycles."""

    setup_latency_cycles: int = 4
    teardown_latency_cycles: int = 2
    reneg_latency_cycles: int = 2

    def __post_init__(self) -> None:
        if self.setup_latency_cycles < 1:
            raise ValueError("setup_latency_cycles must be >= 1")
        if self.teardown_latency_cycles < 1:
            raise ValueError("teardown_latency_cycles must be >= 1")
        if self.reneg_latency_cycles < 1:
            raise ValueError("reneg_latency_cycles must be >= 1")

    def to_dict(self) -> dict[str, int]:
        return {
            "setup_latency_cycles": self.setup_latency_cycles,
            "teardown_latency_cycles": self.teardown_latency_cycles,
            "reneg_latency_cycles": self.reneg_latency_cycles,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "SignalingConfig":
        return cls(**dict(data))


@dataclass(frozen=True)
class SessionsSpec:
    """Everything that defines a churn run besides the static point.

    Plain data (hashable, JSON round-trip) so campaign points can carry
    it and content-address the results.
    """

    churn: ChurnConfig = ChurnConfig()
    policy: str = "paper"
    signaling: SignalingConfig = SignalingConfig()
    #: Reservation-utilization sampling stride, cycles.
    sample_stride: int = 500
    #: Closed-loop control plane; ``None`` keeps pre-control behavior
    #: (and the spec hash) bit-identical.
    control: ControlConfig | None = None

    def __post_init__(self) -> None:
        if self.sample_stride < 1:
            raise ValueError("sample_stride must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "churn": self.churn.to_dict(),
            "policy": self.policy,
            "signaling": self.signaling.to_dict(),
            "sample_stride": self.sample_stride,
        }
        # Omitted when None so pre-control spec hashes stay warm.
        if self.control is not None:
            out["control"] = self.control.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionsSpec":
        control = data.get("control")
        if control is not None:
            from ..control.config import ControlConfig

            control = ControlConfig.from_dict(control)
        return cls(
            churn=ChurnConfig.from_dict(data["churn"]),
            policy=data.get("policy", "paper"),
            signaling=SignalingConfig.from_dict(data.get("signaling", {})),
            sample_stride=data.get("sample_stride", 500),
            control=control,
        )


# ----------------------------------------------------------------------
# Shared re-admission primitive (fault recovery + sessions)
# ----------------------------------------------------------------------


def readmit_elsewhere(
    router: MMRouter,
    conn: Connection,
    avoid_out_port: int | None = None,
) -> SetupResult:
    """Try to re-establish a torn-down connection, output by output.

    Probes output ports starting at the connection's original one and
    wrapping around (the deterministic search order the recovery tests
    pin), skipping ``avoid_out_port`` (a dead link).  Every attempt goes
    through ``MMRouter.establish`` — i.e. through the admission
    controller's check/commit — never around it.  Returns the first
    accepting :class:`SetupResult`, or the last rejection.
    """
    n = router.config.num_ports
    last: SetupResult | None = None
    for k in range(n):
        out_port = (conn.out_port + k) % n
        if out_port == avoid_out_port:
            continue
        result = router.establish(
            conn.in_port,
            out_port,
            conn.traffic_class,
            conn.avg_slots,
            conn.peak_slots,
        )
        if result.accepted:
            return result
        last = result
    if last is None:  # every port was the avoided one (n == 1)
        return SetupResult(False, None, "no eligible output port", 0)
    return last


# ----------------------------------------------------------------------
# The lifecycle engine
# ----------------------------------------------------------------------

_SETUP = 0
_STOP = 1
_TEARDOWN = 2
_RENEG = 3


class _LiveSession:
    """Runtime state of one timeline session."""

    __slots__ = ("spec", "state", "conn", "offset", "ptr", "attempts")

    def __init__(self, spec: SessionSpec) -> None:
        self.spec = spec
        self.state = "setup"
        self.conn: Connection | None = None
        #: Admission instant; injection schedule offset.
        self.offset = 0
        self.ptr = 0
        #: Setup attempts that have timed out so far (control plane).
        self.attempts = 0


@dataclass
class SessionEngine:
    """Drives session lifecycles inside the simulation loop.

    One instance per run.  All decisions replay a precomputed timeline
    through a deterministic completion queue; the only inputs are the
    router's own state (admission ledgers, buffer occupancy) and the
    measured departures — no run-time randomness.
    """

    config: RouterConfig
    spec: SessionsSpec
    timeline: list[SessionSpec]
    policy: CacPolicy = field(init=False)
    stats: SessionStats = field(init=False)
    event_log: SessionEventLog = field(init=False)
    feedback: QosFeedback = field(init=False)

    def __post_init__(self) -> None:
        spec = self.spec
        self.control_plane: ControlPlane | None = None
        self._retry: RetryPolicy | None = None
        if spec.control is not None or spec.policy == "adaptive":
            # Importing the plane registers the "adaptive" policy.
            from ..control.plane import ControlFeedback, ControlPlane
        if spec.control is not None:
            self.control_plane = ControlPlane(self.config, spec.control)
            self._retry = spec.control.retry
            self.feedback = ControlFeedback(self.control_plane)
        else:
            self.feedback = QosFeedback()
        self.policy = make_policy(spec.policy)
        if spec.control is not None and hasattr(self.policy, "brake_cap"):
            self.policy.brake_cap = spec.control.brake_cap
        self.event_log = SessionEventLog()
        self.stats = SessionStats(
            policy=spec.policy, churn=spec.churn, cycles=0
        )
        self._router: MMRouter | None = None
        self._metrics = None
        self._telemetry = None
        self._next_arrival = 0
        self._seq = 0
        #: (cycle, seq, kind, live, extra) completion heap.
        self._pending: list[tuple[int, int, int, _LiveSession, int]] = []
        self._injecting: list[_LiveSession] = []
        self._draining: list[_LiveSession] = []
        self._deadline_of: dict[tuple[int, int], int] = {}
        self._live: list[_LiveSession] = [
            _LiveSession(s) for s in self.timeline
        ]
        #: Output port the fault harness reported dead (signaling fails).
        self.dead_out_port: int | None = None
        self._live_by_conn: dict[int, _LiveSession] = {}
        # Precomputed signaling draws (seed_signaling_draws).
        self._setup_loss = None
        self._setup_jitter = None
        self._reneg_loss = None
        self._reneg_jitter = None
        #: sid -> index of its first renegotiation message in the draws.
        self._reneg_base: dict[int, int] = {}
        #: message index -> timed-out attempts so far.
        self._reneg_tries: dict[int, int] = {}
        self._reneg_total = 0
        if self._retry is not None:
            total = 0
            for s in self.timeline:
                self._reneg_base[s.sid] = total
                total += len(s.reneg_plan)
            self._reneg_total = total

    @classmethod
    def from_spec(
        cls,
        config: RouterConfig,
        spec: SessionsSpec,
        horizon_cycles: int,
        rng,
    ) -> "SessionEngine":
        """Generate the churn timeline and wrap it in an engine."""
        timeline = generate_timeline(config, spec.churn, horizon_cycles, rng)
        engine = cls(config=config, spec=spec, timeline=timeline)
        if spec.control is not None:
            engine.seed_signaling_draws(rng)
        return engine

    def seed_signaling_draws(self, rng) -> None:
        """Precompute every signaling loss/jitter draw from ``rng``.

        One row per timeline session (indexed by ``sid``) for setups and
        one row per planned renegotiation message, each ``max_retries +
        1`` attempts wide — the cycle loop itself never draws, so retry
        schedules replay bit-identically.  Control-disabled runs skip
        this entirely and leave the stream untouched.
        """
        retry = self._retry
        cols = retry.max_retries + 1
        n = len(self.timeline)
        self._setup_loss = rng.random((n, cols)) < retry.loss_rate
        self._setup_jitter = rng.integers(
            0, retry.jitter_cycles + 1, size=(n, retry.max_retries)
        )
        total = self._reneg_total
        self._reneg_loss = rng.random((total, cols)) < retry.loss_rate
        self._reneg_jitter = rng.integers(
            0, retry.jitter_cycles + 1, size=(total, retry.max_retries)
        )

    # ------------------------------------------------------------------
    # Loop hooks (called by SingleRouterSim._run_sessions)
    # ------------------------------------------------------------------

    def begin(self, router: MMRouter, workload, metrics, control, telemetry=None):
        self._router = router
        self._metrics = metrics
        self._telemetry = telemetry
        self.stats.cycles = control.cycles
        # Deadlines for the *static* reserved connections too: the
        # measurement-based CAC should see violations of any admitted
        # guarantee, not only the dynamic ones.
        for item in workload.loads:
            self._track_deadline(item.conn)

    def _push(self, cycle: int, kind: int, live: _LiveSession, extra: int = 0):
        heapq.heappush(self._pending, (cycle, self._seq, kind, live, extra))
        self._seq += 1

    def _track_deadline(self, conn: Connection) -> None:
        deadline = bounds_for(conn, self.config).deadline_cycles
        if deadline is not None:
            self._deadline_of[(conn.in_port, conn.vc)] = deadline

    def on_cycle(self, now: int) -> None:
        """Process due signaling completions, arrivals and drains."""
        cp = self.control_plane
        if cp is not None and now % cp.cfg.estimator_stride == 0:
            cp.step(now, self._router)
        pending = self._pending
        while pending and pending[0][0] <= now:
            _cycle, _seq, kind, live, extra = heapq.heappop(pending)
            if kind == _SETUP:
                self._complete_setup(now, live)
            elif kind == _STOP:
                self._stop_injection(now, live)
            elif kind == _TEARDOWN:
                self._complete_teardown(now, live)
            else:
                self._complete_reneg(now, live, extra)
        timeline = self._live
        i = self._next_arrival
        sig = self.spec.signaling
        while i < len(timeline) and timeline[i].spec.arrival_cycle <= now:
            live = timeline[i]
            i += 1
            self.stats.note_offered(live.spec)
            self.event_log.record(
                now,
                "arrive",
                live.spec.sid,
                f"class={live.spec.cls_name} port={live.spec.in_port}"
                f"->{live.spec.out_port} hold={live.spec.hold_cycles}",
            )
            self._push(now + sig.setup_latency_cycles, _SETUP, live)
        self._next_arrival = i
        if self._draining:
            self._poll_drains(now)
        if now % self.spec.sample_stride == 0:
            self._sample_utilization(now)

    def inject(self, now: int) -> int:
        """Deposit every due flit of every active session into its NIC.

        Returns the number of flits deposited, so the fault harness can
        keep its exact conservation check (the healthy loop ignores it).
        """
        nics = self._router.nics
        lst = self._injecting
        keep = 0
        deposited = 0
        for live in lst:
            spec = live.spec
            cycles = spec.cycles
            end = len(cycles)
            ptr = live.ptr
            off = live.offset
            nic = nics[spec.in_port]
            vc = live.conn.vc
            while ptr < end and cycles[ptr] + off <= now:
                nic.inject(
                    vc,
                    int(cycles[ptr] + off),
                    int(spec.frame_ids[ptr]),
                    bool(spec.frame_last[ptr]),
                )
                ptr += 1
            deposited += ptr - live.ptr
            live.ptr = ptr
            if ptr < end:
                lst[keep] = live
                keep += 1
        del lst[keep:]
        return deposited

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` where :meth:`on_cycle` or
        :meth:`inject` does any work.

        The event-skipping engine clamps its fast-forward target here so
        no signaling completion, arrival, dynamic-session flit, drain
        poll, utilization sample or control-plane estimator step is ever
        skipped.  Drains poll router occupancy every cycle, so a
        non-empty drain list pins the engine to the next cycle.
        """
        if self._draining:
            return now
        spec = self.spec
        nxt = now + (-now % spec.sample_stride)
        cp = self.control_plane
        if cp is not None:
            c = now + (-now % cp.cfg.estimator_stride)
            if c < nxt:
                nxt = c
        pending = self._pending
        if pending:
            c = pending[0][0]
            if c < nxt:
                nxt = c
        timeline = self._live
        i = self._next_arrival
        if i < len(timeline):
            c = timeline[i].spec.arrival_cycle
            if c < nxt:
                nxt = c
        for live in self._injecting:
            cycles = live.spec.cycles
            if live.ptr < len(cycles):
                c = int(cycles[live.ptr]) + live.offset
                if c < nxt:
                    nxt = c
        return nxt if nxt > now else now

    def on_departures(self, now: int, departures) -> None:
        """Feed measured deadline violations to the CAC feedback window."""
        deadlines = self._deadline_of
        if not deadlines:
            return
        for dep in departures:
            deadline = deadlines.get((dep.in_port, dep.vc))
            if deadline is not None and now - dep.gen_cycle > deadline:
                self.feedback.note(now)

    def finish(self) -> None:
        """Close out the run: count survivors, audit the ledgers."""
        self.stats.expired_active = sum(
            1
            for live in self._live
            if live.state in ("active", "draining", "closing", "setup")
            and live.spec.arrival_cycle < self.stats.cycles
        )
        router = self._router
        if router is not None:
            router.admission.audit(router.table)

    def to_payload(self) -> dict[str, Any]:
        return self.stats.to_payload(self.event_log)

    def control_payload(self) -> dict[str, Any]:
        """Strict-JSON payload for the campaign ``control`` channel."""
        payload = self.control_plane.to_payload()
        s = self.stats
        payload["signaling"] = {
            "setup_timeouts": s.setup_timeouts,
            "setup_retries": s.setup_retries,
            "reneg_timeouts": s.reneg_timeouts,
            "reneg_retries": s.reneg_retries,
            "reneg_giveups": s.reneg_giveups,
            "readmitted_alt": s.readmitted_alt,
            "blocked_timeout": s.blocked_timeout,
            "dropped": s.dropped,
        }
        return payload

    # ------------------------------------------------------------------
    # Completion handlers
    # ------------------------------------------------------------------

    def _complete_setup(self, now: int, live: _LiveSession) -> None:
        spec = live.spec
        router = self._router
        if self._retry is not None:
            cause = self._setup_obstruction(live)
            if cause is not None:
                self._signaling_timeout(now, live, cause)
                return
        request = CacRequest(
            in_port=spec.in_port,
            out_port=spec.out_port,
            traffic_class=spec.traffic_class,
            avg_slots=spec.avg_slots,
            peak_slots=spec.peak_slots,
        )
        decision = self.policy.decide(
            request, router.admission, self.feedback, now
        )
        if decision:
            result = router.establish(
                spec.in_port,
                spec.out_port,
                spec.traffic_class,
                spec.avg_slots,
                spec.peak_slots,
            )
        else:
            result = None
        if result is None or not result.accepted:
            reason = decision.reason if result is None else result.reason
            live.state = "blocked"
            self.stats.note_blocked(spec)
            self.event_log.record(
                now, "block", spec.sid, f"class={spec.cls_name} reason={reason}"
            )
            return
        self._admit(now, live, result.connection)

    def _admit(
        self, now: int, live: _LiveSession, conn: Connection, alt: bool = False
    ) -> None:
        spec = live.spec
        live.state = "active"
        live.conn = conn
        live.offset = now
        self._live_by_conn[conn.conn_id] = live
        self.stats.note_admitted(spec)
        detail = (
            f"class={spec.cls_name} conn={conn.conn_id} vc={conn.vc} "
            f"avg={conn.avg_slots} peak={conn.peak_slots}"
        )
        if alt:
            detail += f" alt_out={conn.out_port}"
        self.event_log.record(now, "admit", spec.sid, detail)
        self._metrics.register_connection(
            conn.in_port, conn.vc, conn.conn_id, spec.cls_name
        )
        if self._telemetry is not None:
            self._telemetry.register_connection(conn, spec.cls_name)
        self._track_deadline(conn)
        if len(spec.cycles):
            self._injecting.append(live)
        sig = self.spec.signaling
        self._push(now + spec.hold_cycles, _STOP, live)
        if self._retry is None:
            for rel_cycle, new_peak in spec.reneg_plan:
                self._push(
                    now + rel_cycle + sig.reneg_latency_cycles,
                    _RENEG,
                    live,
                    new_peak,
                )
        else:
            # With retries in play, a renegotiation completion carries
            # its *message index* (into the precomputed draws); the new
            # peak is recovered from the plan at delivery time.
            base = self._reneg_base[spec.sid]
            for j, (rel_cycle, _new_peak) in enumerate(spec.reneg_plan):
                self._push(
                    now + rel_cycle + sig.reneg_latency_cycles,
                    _RENEG,
                    live,
                    base + j,
                )

    # ------------------------------------------------------------------
    # Signaling robustness (control plane only)
    # ------------------------------------------------------------------

    def _setup_obstruction(self, live: _LiveSession) -> str | None:
        """Why this setup attempt will time out, or ``None`` if it lands."""
        spec = live.spec
        if self.dead_out_port is not None and spec.out_port == self.dead_out_port:
            return "dead-port"
        # Draws are absent when the engine was built without from_spec;
        # such engines model a lossless signaling network.
        if self._setup_loss is not None and self._setup_loss[spec.sid, live.attempts]:
            return "loss"
        return None

    def _signaling_timeout(self, now: int, live: _LiveSession, cause: str) -> None:
        retry = self._retry
        spec = live.spec
        failed = live.attempts  # 0-based index of the attempt that failed
        live.attempts += 1
        self.stats.setup_timeouts += 1
        self.event_log.record(
            now,
            "setup-timeout",
            spec.sid,
            f"attempt={failed + 1} timeout={retry.timeout_cycles} cause={cause}",
        )
        if live.attempts > retry.max_retries:
            self._give_up_setup(now, live, cause)
            return
        backoff = retry.backoff_cycles(live.attempts)
        if self._setup_jitter is not None:
            backoff += int(self._setup_jitter[spec.sid, live.attempts - 1])
        self.stats.setup_retries += 1
        self.event_log.record(
            now,
            "retry",
            spec.sid,
            f"attempt={live.attempts + 1} backoff={backoff}",
        )
        self._push(now + retry.timeout_cycles + backoff, _SETUP, live)

    def _give_up_setup(self, now: int, live: _LiveSession, cause: str) -> None:
        spec = live.spec
        if cause == "dead-port" and self._admit_elsewhere(now, live):
            return
        live.state = "blocked"
        self.stats.note_blocked_timeout(spec)
        self.event_log.record(
            now,
            "block-timeout",
            spec.sid,
            f"class={spec.cls_name} cause={cause} attempts={live.attempts}",
        )

    def _admit_elsewhere(self, now: int, live: _LiveSession) -> bool:
        """Crank a dead-port setup back through :func:`readmit_elsewhere`."""
        result = readmit_elsewhere(
            self._router, live.spec, avoid_out_port=self.dead_out_port
        )
        if not result.accepted:
            return False
        self.stats.readmitted_alt += 1
        self._admit(now, live, result.connection, alt=True)
        return True

    # ------------------------------------------------------------------
    # Fault-harness notifications
    # ------------------------------------------------------------------

    def owns(self, conn_id: int) -> bool:
        """True when ``conn_id`` belongs to a live dynamic session."""
        return conn_id in self._live_by_conn

    def label_of(self, conn_id: int) -> str:
        live = self._live_by_conn.get(conn_id)
        return live.spec.cls_name if live is not None else "unlabelled"

    def on_dead_port(self, now: int, port: int) -> None:
        """The fault harness just killed output ``port``."""
        self.dead_out_port = port

    def on_conn_recovered(
        self, now: int, old_conn: Connection, new_conn: Connection | None
    ) -> None:
        """A fault tore ``old_conn`` down (and maybe re-admitted it)."""
        self._deadline_of.pop((old_conn.in_port, old_conn.vc), None)
        if new_conn is not None:
            self._track_deadline(new_conn)
        live = self._live_by_conn.pop(old_conn.conn_id, None)
        if live is None:
            return  # a static (workload) connection, not one of ours
        if new_conn is None:
            live.state = "dropped"
            live.conn = None
            self.stats.note_dropped(live.spec)
            self.event_log.record(
                now, "conn-dropped", live.spec.sid, f"conn={old_conn.conn_id}"
            )
            if live in self._injecting:
                self._injecting.remove(live)
            if live in self._draining:
                self._draining.remove(live)
            return
        live.conn = new_conn
        self._live_by_conn[new_conn.conn_id] = live
        self.event_log.record(
            now,
            "conn-migrated",
            live.spec.sid,
            f"conn={old_conn.conn_id}->{new_conn.conn_id} vc={new_conn.vc} "
            f"out={new_conn.out_port}",
        )

    def _stop_injection(self, now: int, live: _LiveSession) -> None:
        if live.state != "active":
            return  # dropped by a fault before its natural departure
        # The schedule spans [0, hold), so every flit has been deposited;
        # the session now drains whatever is still queued or buffered.
        live.state = "draining"
        self.event_log.record(
            now, "depart", live.spec.sid, f"conn={live.conn.conn_id}"
        )
        self._draining.append(live)

    def _poll_drains(self, now: int) -> None:
        router = self._router
        sig = self.spec.signaling
        keep = []
        for live in self._draining:
            conn = live.conn
            if (
                router.nics[conn.in_port].queue_length(conn.vc) == 0
                and router.vc_memory.occupancy_of(conn.in_port, conn.vc) == 0
            ):
                live.state = "closing"
                self._push(now + sig.teardown_latency_cycles, _TEARDOWN, live)
            else:
                keep.append(live)
        self._draining = keep

    def _complete_teardown(self, now: int, live: _LiveSession) -> None:
        if live.state != "closing":
            return  # a fault tore the connection down while we waited
        conn = live.conn
        self._router.teardown(conn.conn_id)
        self._deadline_of.pop((conn.in_port, conn.vc), None)
        self._live_by_conn.pop(conn.conn_id, None)
        live.state = "closed"
        self.stats.note_released(live.spec)
        self.event_log.record(
            now, "release", live.spec.sid, f"conn={conn.conn_id} vc={conn.vc}"
        )

    def _complete_reneg(self, now: int, live: _LiveSession, extra: int) -> None:
        if live.state != "active":
            return  # departed (or never admitted) before the ACK came back
        if self._retry is None:
            self._do_reneg(now, live, extra)
            return
        retry = self._retry
        midx = extra  # message index into the precomputed draws
        tries = self._reneg_tries.get(midx, 0)
        if self._reneg_loss is not None and self._reneg_loss[midx, tries]:
            tries += 1
            self._reneg_tries[midx] = tries
            self.stats.reneg_timeouts += 1
            self.event_log.record(
                now,
                "reneg-timeout",
                live.spec.sid,
                f"conn={live.conn.conn_id} attempt={tries}",
            )
            if tries > retry.max_retries:
                self.stats.reneg_giveups += 1
                self.event_log.record(
                    now,
                    "reneg-giveup",
                    live.spec.sid,
                    f"conn={live.conn.conn_id} attempts={tries}",
                )
                return  # keep the old peak reservation
            backoff = retry.backoff_cycles(tries) + int(
                self._reneg_jitter[midx, tries - 1]
            )
            self.stats.reneg_retries += 1
            self._push(now + retry.timeout_cycles + backoff, _RENEG, live, midx)
            return
        new_peak = live.spec.reneg_plan[midx - self._reneg_base[live.spec.sid]][1]
        self._do_reneg(now, live, new_peak)

    def _do_reneg(self, now: int, live: _LiveSession, new_peak: int) -> None:
        conn = live.conn
        old_peak = conn.peak_slots
        decision = self._router.renegotiate_peak(conn.conn_id, new_peak)
        if decision:
            live.conn = self._router.table.get(conn.conn_id)
            self.stats.reneg_ok += 1
            self.event_log.record(
                now,
                "renegotiate",
                live.spec.sid,
                f"conn={conn.conn_id} peak={old_peak}->{new_peak}",
            )
        else:
            self.stats.reneg_rejected += 1
            self.event_log.record(
                now,
                "reneg-reject",
                live.spec.sid,
                f"conn={conn.conn_id} peak={old_peak}->{new_peak}",
            )

    # ------------------------------------------------------------------

    def _sample_utilization(self, now: int) -> None:
        admission = self._router.admission
        n = self.config.num_ports
        in_frac = sum(admission.reserved_avg_load(p) for p in range(n)) / n
        out_frac = sum(admission.reserved_avg_load_out(p) for p in range(n)) / n
        self.stats.sample_utilization(now, in_frac, out_frac)
