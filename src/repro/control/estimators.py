"""Online pressure estimators: EWMAs and the anti-flap hysteresis band.

Measurement-based CAC so far counted raw violations in a sliding window
(:class:`~repro.sessions.policies.MeasurementPolicy`), which flaps: one
burst blocks admissions, one quiet window un-blocks them, repeat.  The
control plane replaces the raw counts with exponentially-weighted moving
averages updated on a fixed stride, and routes every open/close decision
through a two-threshold hysteresis band with a hold time — the classic
anti-flap pair (trip fast, recover slowly and only once the pressure has
*stayed* low).

Everything here is pure arithmetic on values the caller feeds in; no
randomness, no simulation imports — updates at the same cycles with the
same inputs reproduce the same estimates bit for bit.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Ewma", "ViolationRateEstimator", "HysteresisBand"]


class Ewma:
    """Exponentially-weighted moving average: ``v += alpha * (x - v)``."""

    __slots__ = ("alpha", "value", "samples")

    def __init__(self, alpha: float, initial: float = 0.0) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value = initial
        self.samples = 0

    def update(self, x: float) -> float:
        self.value += self.alpha * (x - self.value)
        self.samples += 1
        return self.value


class ViolationRateEstimator:
    """EWMA-smoothed deadline-violation rate, in violations per kilocycle.

    ``note()`` accumulates violations as the engine observes departures;
    ``step()`` folds the accumulated count into the EWMA once per
    ``stride`` cycles and resets the accumulator.  The instantaneous
    sample is ``pending / stride * 1000`` so the estimate is independent
    of the stride choice.
    """

    __slots__ = ("stride", "_ewma", "_pending")

    def __init__(self, alpha: float, stride: int) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride
        self._ewma = Ewma(alpha)
        self._pending = 0

    def note(self) -> None:
        """Record one deadline violation (between steps)."""
        self._pending += 1

    def step(self) -> float:
        """Fold the pending count into the EWMA; returns the estimate."""
        sample = self._pending / self.stride * 1000.0
        self._pending = 0
        return self._ewma.update(sample)

    @property
    def value(self) -> float:
        """Current estimate, violations per kilocycle."""
        return self._ewma.value

    @property
    def samples(self) -> int:
        return self._ewma.samples


class HysteresisBand:
    """Two-threshold overload detector with a recovery hold time.

    States: ``"normal"`` and ``"high"``.  The band trips to ``high`` the
    moment the observed value reaches ``high``; it returns to ``normal``
    only once the value has stayed strictly below ``low`` continuously
    for ``hold_cycles``.  Values inside ``[low, high)`` hold the current
    state and reset the below-low clock — the anti-flap dead zone.
    """

    __slots__ = ("low", "high", "hold_cycles", "state", "_below_since",
                 "transitions")

    def __init__(self, low: float, high: float, hold_cycles: int) -> None:
        if not (low < high):
            raise ValueError("need low < high")
        if hold_cycles < 1:
            raise ValueError("hold_cycles must be >= 1")
        self.low = low
        self.high = high
        self.hold_cycles = hold_cycles
        self.state = "normal"
        self._below_since: int | None = None
        #: (cycle, new state) pairs, in order.
        self.transitions: list[tuple[int, str]] = []

    def observe(self, now: int, value: float) -> str:
        """Feed one estimate; returns the (possibly new) state."""
        if value >= self.high:
            self._below_since = None
            if self.state != "high":
                self.state = "high"
                self.transitions.append((now, "high"))
        elif value < self.low:
            if self._below_since is None:
                self._below_since = now
            if (
                self.state == "high"
                and now - self._below_since >= self.hold_cycles
            ):
                self.state = "normal"
                self.transitions.append((now, "normal"))
        else:
            # Dead zone: hold the state, restart the recovery clock.
            self._below_since = None
        return self.state

    def cleared_for(self, now: int) -> int:
        """Cycles the value has stayed below ``low`` (0 unless clearing)."""
        if self._below_since is None:
            return 0
        return now - self._below_since

    def to_payload(self) -> dict[str, Any]:
        return {
            "low": self.low,
            "high": self.high,
            "hold_cycles": self.hold_cycles,
            "state": self.state,
            "transitions": [[cycle, state] for cycle, state in self.transitions],
        }
