"""Shared infrastructure for the reproduction benches.

Each bench regenerates one table or figure of the paper (see DESIGN.md §4
for the experiment index) by running the simulation harness, printing the
reproduced rows/series, and asserting the *shape* claims (who wins, where
the knees fall).

Expensive sweeps are shared: Fig. 8, Fig. 9 and the jitter study all read
the same VBR load sweeps, so the sweeps are computed once per pytest
session through :func:`cached`.  The pytest-benchmark timing therefore
measures "time to produce this figure's data" — the full simulation cost
lands on the first bench that needs a given sweep, cache hits on the rest.

Run with:  pytest benchmarks/ --benchmark-only

The benches can additionally opt into the campaign layer's on-disk
result cache and worker pool (see docs/architecture.md, "Campaign
orchestration"): set ``REPRO_BENCH_STORE=/path/to/store`` to persist and
reuse sweep points across bench sessions, and ``REPRO_BENCH_JOBS=N`` to
fan sweep points out over N worker processes.  Both default to off so a
plain ``pytest benchmarks/`` measures real simulation cost.
"""

from __future__ import annotations

import os
from typing import Any, Callable

import pytest

from repro.sim.experiments import cbr_delay_experiment, vbr_experiment

#: Load grids used by the benches (coarser than the paper's plots, dense
#: around the knees the assertions target).
CBR_BENCH_LOADS = (0.3, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9)
VBR_BENCH_LOADS = (0.3, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85)

#: Seed shared by every bench: arbiters compare on identical workloads.
BENCH_SEED = 2002  # the paper's year

_cache: dict[str, Any] = {}


def cached(key: str, compute: Callable[[], Any]) -> Any:
    """Session-wide memoization of experiment results."""
    if key not in _cache:
        _cache[key] = compute()
    return _cache[key]


def _campaign_store():
    """Cross-session result store, opt-in via REPRO_BENCH_STORE."""
    root = os.environ.get("REPRO_BENCH_STORE")
    if not root:
        return None
    from repro.campaign import ResultStore

    return ResultStore(root)


def _campaign_jobs() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def cbr_result():
    return cached(
        "cbr",
        lambda: cbr_delay_experiment(
            loads=CBR_BENCH_LOADS, seed=BENCH_SEED, scale="ci",
            jobs=_campaign_jobs(), store=_campaign_store(),
        ),
    )


def vbr_result(model: str):
    return cached(
        f"vbr-{model}",
        lambda: vbr_experiment(
            model=model, loads=VBR_BENCH_LOADS, seed=BENCH_SEED, scale="ci",
            jobs=_campaign_jobs(), store=_campaign_store(),
        ),
    )


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED
