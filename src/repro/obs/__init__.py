"""Observability subsystem: always-on QoS telemetry for the MMR testbed.

The paper's claims are *per-connection* (bounded delay and jitter for
reserved CBR/VBR traffic), but end-of-run aggregates can only say how a
class did on average.  This package provides the instrumentation layer
that makes the guarantees observable:

* :mod:`~repro.obs.hist` — log-bucketed streaming histograms with a
  provable relative-error bound, exact counts, and cross-worker merging;
* :mod:`~repro.obs.qos` — per-connection deadline/jitter tracking with
  bounds derived from each connection's reservation (paper §2);
* :mod:`~repro.obs.timeseries` — strided sampling of utilization,
  backlogs, and credits into fixed-size ring buffers (JSONL/CSV export);
* :mod:`~repro.obs.flight` — a flight recorder dumped on watchdog trips
  and QoS violation bursts;
* :mod:`~repro.obs.export` — the :class:`TelemetrySession` that wires it
  all into a run, the artifact schema, and the overhead benchmark behind
  ``BENCH_obs.json``.

Import discipline: nothing in this package imports ``repro.sim`` or
``repro.perf`` at module level — ``repro.sim.metrics`` imports
:mod:`repro.obs.hist`, so that direction must stay acyclic.
"""

from .export import (
    TELEMETRY_SCHEMA,
    ObsBenchReport,
    TelemetryConfig,
    TelemetrySession,
    check_obs_overhead,
    run_obs_bench,
    validate_timeseries_jsonl,
    write_obs_report,
)
from .flight import FlightDump, FlightRecorder
from .hist import LogHistogram
from .qos import ConnectionQos, QosBounds, QosTracker, bounds_for
from .timeseries import TIMESERIES_FIELDS, TimeSeriesRecorder

__all__ = [
    "TELEMETRY_SCHEMA",
    "TIMESERIES_FIELDS",
    "ConnectionQos",
    "FlightDump",
    "FlightRecorder",
    "LogHistogram",
    "ObsBenchReport",
    "QosBounds",
    "QosTracker",
    "TelemetryConfig",
    "TelemetrySession",
    "TimeSeriesRecorder",
    "bounds_for",
    "check_obs_overhead",
    "run_obs_bench",
    "validate_timeseries_jsonl",
    "write_obs_report",
]
