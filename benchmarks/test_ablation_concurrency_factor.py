"""A6 — ablation: the VBR admission concurrency factor.

Paper §2: a VBR connection is admitted only if the summed *peak*
bandwidth stays within round x concurrency factor; "the concurrency
factor is a trade-off between the ability to make QoS guarantees, the
number of connections that can be concurrently serviced, and link
utilization."  The paper states the trade-off without plotting it — this
bench does, sweeping the factor at a fixed (high) VBR demand under COA.

Expected shape:
  * factor 1 (no overbooking): peak sums cap admissions well below the
    average-bandwidth budget — few connections, low utilization, and the
    best (lowest) frame delays;
  * growing factors admit more connections and carry more load;
  * past the point where the *average* rule becomes binding, larger
    factors admit nothing extra (the curve flattens) — overbooking peaks
    is safe precisely because averages still fit.
"""

import pytest

from conftest import BENCH_SEED
from repro.analysis import render_table
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_vbr_workload

FACTORS = (1.0, 1.5, 2.0, 4.0, 8.0)
TARGET_LOAD = 0.8


def _run():
    scale = get_scale("ci")
    control = RunControl(
        cycles=scale.vbr_cycles, warmup_cycles=scale.vbr_warmup
    )
    out = {}
    for factor in FACTORS:
        config = default_config(concurrency_factor=factor)
        sim = SingleRouterSim(config, arbiter="coa", seed=BENCH_SEED)
        workload = build_vbr_workload(
            sim.router, TARGET_LOAD, sim.rng.workload, model="SR",
            frame_time_cycles=scale.vbr_frame_time_cycles,
            bandwidth_scale=scale.vbr_bandwidth_scale,
            num_gops=scale.vbr_num_gops,
        )
        out[factor] = sim.run(workload, control)
    return out


@pytest.mark.benchmark(group="ablation-concurrency")
def test_ablation_concurrency_factor(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    rows = [
        [factor, r.connections, r.offered_load * 100, r.utilization * 100,
         r.overall_frame_delay_us]
        for factor, r in results.items()
    ]
    print(render_table(
        ["concurrency factor", "admitted conns", "carried load %",
         "utilization %", "frame delay us"],
        rows,
        title=f"A6 — VBR admission concurrency factor at {TARGET_LOAD:.0%} "
              "demand (COA, SR)",
    ))

    # More overbooking admits more connections and carries more load...
    assert results[1.0].connections < results[2.0].connections
    assert results[1.0].offered_load < results[2.0].offered_load
    # ...monotonically (weakly) across the sweep.
    factors = list(FACTORS)
    for a, b in zip(factors, factors[1:]):
        assert results[a].connections <= results[b].connections
    # The strictest factor keeps QoS easiest (lowest frame delay).
    assert results[1.0].overall_frame_delay_us <= \
        min(r.overall_frame_delay_us for f, r in results.items() if f >= 4.0)
    # Once averages bind, further overbooking buys nothing.
    assert results[8.0].connections == pytest.approx(
        results[4.0].connections, abs=max(2, 0.1 * results[4.0].connections)
    )
