"""GPS fluid reference engine + WFQ-vs-GPS differential tests.

The fluid engine is the analytic ground truth for the packetized
fair-queueing schemes: WFQ (PGPS) must serve flits in the order GPS
finishes them, and no flit may finish more than one packet time behind
its fluid finish instant (Parekh–Gallager).  The differential tests pin
both, against the scheme driven standalone and through the full router
pipeline (crossbar, credits, candidate buffer).
"""

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.fairness import worst_case_gps_lag
from repro.fq.gps import FluidFlow, GpsFluid
from repro.fq.schemes import WFQ
from repro.router import MMRouter, RouterConfig, TrafficClass


class TestFluidFlowValidation:
    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            FluidFlow(0, 0, ((0, 1),))

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            FluidFlow(0, 1, ((0, 0),))

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError):
            FluidFlow(0, 1, ((3, 1), (3, 1)))
        with pytest.raises(ValueError):
            FluidFlow(0, 1, ((-1, 1),))

    def test_engine_rejects_duplicate_ids_and_bad_capacity(self):
        f = FluidFlow(0, 1, ((0, 1),))
        with pytest.raises(ValueError):
            GpsFluid([f, FluidFlow(0, 1, ((0, 1),))])
        with pytest.raises(ValueError):
            GpsFluid([f], capacity=0)
        with pytest.raises(ValueError):
            GpsFluid([])


class TestGpsFluid:
    def test_single_flow_serves_at_capacity(self):
        res = GpsFluid([FluidFlow(7, 3, ((0, 4),))]).run()
        assert res.finish_times[7] == [1, 2, 3, 4]
        assert res.service_at(7, Fraction(5, 2)) == Fraction(5, 2)
        assert res.service_at(7, 100) == 4

    def test_equal_weights_split_evenly(self):
        res = GpsFluid([
            FluidFlow(0, 1, ((0, 2),)),
            FluidFlow(1, 1, ((0, 2),)),
        ]).run()
        assert res.finish_times[0] == [2, 4]
        assert res.finish_times[1] == [2, 4]
        # Simultaneous finishes break on flow-given order.
        assert res.finish_order() == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_weighted_rates_exact(self):
        # w=2 drains at 2/3, w=1 at 1/3; after the heavy flow empties at
        # t=3 the light one gets the whole link.
        res = GpsFluid([
            FluidFlow(0, 2, ((0, 2),)),
            FluidFlow(1, 1, ((0, 2),)),
        ]).run()
        assert res.finish_times[0] == [Fraction(3, 2), 3]
        assert res.finish_times[1] == [3, 4]
        assert res.service_at(1, 3) == 1
        assert res.service_at(1, 4) == 2

    def test_idle_gap_then_arrival(self):
        res = GpsFluid([FluidFlow(0, 1, ((0, 1), (5, 1)))]).run()
        assert res.finish_times[0] == [1, 6]
        assert res.service_at(0, 5) == 1

    def test_work_conservation(self):
        flows = [
            FluidFlow(0, 1, ((0, 3),)),
            FluidFlow(1, 4, ((0, 5),)),
            FluidFlow(2, 2, ((2, 4),)),
        ]
        res = GpsFluid(flows).run()
        # While any backlog exists the link serves exactly at capacity:
        # total service at every breakpoint equals elapsed time.
        times = sorted({t for c in res.service_curves.values() for t, _ in c})
        for t in times:
            total = sum(res.service_at(f.flow_id, t) for f in flows)
            arrived = sum(
                k for f in flows for at, k in f.arrivals if at <= t
            )
            assert total <= t
            assert total <= arrived
        end = times[-1]
        assert sum(res.service_at(f.flow_id, end) for f in flows) == 12

    def test_capacity_scales_times(self):
        res = GpsFluid([FluidFlow(0, 1, ((0, 4),))], capacity=2).run()
        assert res.finish_times[0] == [
            Fraction(1, 2), 1, Fraction(3, 2), 2
        ]


def _run_packetized_wfq(weights, counts):
    """Serve all-backlogged flows on a dedicated unit-capacity link."""
    n = len(weights)
    wfq = WFQ(1, n)
    for vc, w in enumerate(weights):
        wfq.on_setup(0, vc, 0, w, True)
    backlog = list(counts)
    order = []
    actual = {vc: [] for vc in range(n)}
    t = 0
    while any(backlog):
        occ = np.array([b > 0 for b in backlog])
        keys = wfq.keys_port(0, occ)
        vc = int(np.argmax(keys))  # first max = lowest-VC tie-break
        wfq.on_service(0, vc, 0, t)
        backlog[vc] -= 1
        order.append(vc)
        actual[vc].append(t + 1)
        t += 1
    return order, actual


class TestWfqMatchesGps:
    def test_differential_standalone(self):
        weights = [1, 2, 4, 8]
        counts = [6, 10, 14, 20]
        order, actual = _run_packetized_wfq(weights, counts)
        gps = GpsFluid([
            FluidFlow(vc, w, ((0, c),))
            for vc, (w, c) in enumerate(zip(weights, counts))
        ]).run()
        assert order == [fid for fid, _ in gps.finish_order()]
        lag = worst_case_gps_lag(gps.finish_times, actual)
        assert lag <= 1.0 + 1e-9

    # Tier-1 GPS-lag property test: for any all-backlogged workload with
    # scale-dividing weights, packetized WFQ must reproduce the fluid
    # finish order exactly and never finish a flit more than one packet
    # time behind fluid GPS (the PGPS bound with L_max/C = 1 cycle).
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([1, 2, 4, 8, 16]),
                st.integers(min_value=1, max_value=12),
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_gps_lag_bounded_property(self, flows):
        weights = [w for w, _ in flows]
        counts = [c for _, c in flows]
        order, actual = _run_packetized_wfq(weights, counts)
        gps = GpsFluid([
            FluidFlow(vc, w, ((0, c),))
            for vc, (w, c) in enumerate(zip(weights, counts))
        ]).run()
        assert order == [fid for fid, _ in gps.finish_order()]
        lag = worst_case_gps_lag(gps.finish_times, actual)
        assert lag <= 1.0 + 1e-9


class TestWfqThroughRouter:
    """The acceptance differential: full router vs fluid reference."""

    def test_router_service_order_matches_gps(self):
        config = RouterConfig(num_ports=2, vcs_per_link=8,
                              vc_buffer_depth=32, candidate_levels=2)
        router = MMRouter(config, arbiter="coa", scheme="wfq")
        rng = np.random.default_rng(0)
        weights = [1, 2, 4, 8]
        counts = [6, 10, 14, 20]
        conns = []
        for w in weights:
            conn = router.establish(0, 1, TrafficClass.CBR, w).connection
            assert conn is not None
            conns.append(conn)
        # Preload every flit at cycle 0, consuming a credit per push the
        # way NIC acceptance would (credit conservation must hold when
        # departures later return them).
        for conn, count in zip(conns, counts):
            for _ in range(count):
                router.credits.consume(conn.in_port, conn.vc)
                router.vc_memory.push(conn.in_port, conn.vc, 0, -1, False, 0)

        vc_to_flow = {conn.vc: i for i, conn in enumerate(conns)}
        order = []
        actual = {i: [] for i in range(len(conns))}
        for t in range(sum(counts) + 50):
            for dep in router.step(t, rng):
                flow = vc_to_flow[dep.vc]
                order.append(flow)
                actual[flow].append(t + 1)
        assert len(order) == sum(counts)

        gps = GpsFluid([
            FluidFlow(i, w, ((0, c),))
            for i, (w, c) in enumerate(zip(weights, counts))
        ]).run()
        assert order == [fid for fid, _ in gps.finish_order()]
        lag = worst_case_gps_lag(gps.finish_times, actual)
        assert math.isfinite(lag)
        assert lag <= 1.0 + 1e-9
