"""Fault injection, detection, recovery and graceful QoS degradation.

The robustness subsystem for the MMR testbed: deterministic fault models
(:class:`FaultConfig`, :class:`FaultInjector`), a replayable event log
(:class:`FaultSchedule`), QoS-ordered load shedding
(:class:`DegradationPolicy`), run-level invariants (:class:`SimWatchdog`)
and the fault-aware simulation harness
(:class:`FaultySingleRouterSim`).  See ``docs/architecture.md`` for the
full fault model and recovery design.
"""

from .degradation import (
    LEVEL_CLAMP_VBR_PEAK,
    LEVEL_NORMAL,
    LEVEL_SHED_BEST_EFFORT,
    DegradationPolicy,
)
from .harness import FaultySingleRouterSim
from .injector import FaultInjector
from .integrity import corrupt_word, crc8, flit_words, verify
from .models import FaultConfig, FaultKind
from .schedule import FaultEvent, FaultSchedule
from .watchdog import SimWatchdog, WatchdogError

__all__ = [
    "FaultKind",
    "FaultConfig",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "DegradationPolicy",
    "LEVEL_NORMAL",
    "LEVEL_SHED_BEST_EFFORT",
    "LEVEL_CLAMP_VBR_PEAK",
    "SimWatchdog",
    "WatchdogError",
    "FaultySingleRouterSim",
    "crc8",
    "flit_words",
    "corrupt_word",
    "verify",
]
