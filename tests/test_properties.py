"""Hypothesis property tests over every registered arbiter and scheme.

These are the repo-wide invariants DESIGN.md §6 commits to:

* every arbiter produces a conflict-free matching on any candidate set;
* matchings are maximal with respect to the requests the arbiter sees
  (all levels for COA/greedy/random, the head-of-line level for the
  conventional arbiters, per their ``max_levels``);
* arbiters never invent grants (every grant corresponds to a candidate);
* determinism: the same candidates and RNG state give the same matching.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.matching import (
    Candidate,
    is_conflict_free,
    is_maximal,
    restrict_levels,
)
from repro.core.registry import ARBITER_NAMES, make_arbiter
from repro.router.config import RouterConfig

CONFIG = RouterConfig(num_ports=4, vcs_per_link=8, candidate_levels=4)

#: Visibility of each registered arbiter (keep in sync with registry).
_HEAD_OF_LINE = {"wfa", "wfa-plain", "islip", "islip-1", "pim", "pim-1"}


def _visible(name: str, candidates):
    return restrict_levels(candidates, 1 if name in _HEAD_OF_LINE else None)


@st.composite
def candidate_sets(draw):
    """Random per-port candidate lists with distinct outputs per port.

    A physical link's candidates are distinct VCs; their outputs may
    collide across levels only if two VCs share a destination — allowed.
    Priorities descend with level, as the link scheduler guarantees.
    """
    n = CONFIG.num_ports
    out = []
    for port in range(n):
        k = draw(st.integers(min_value=0, max_value=CONFIG.candidate_levels))
        prios = sorted(
            (draw(st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
             for _ in range(k)),
            reverse=True,
        )
        port_cands = []
        for level in range(k):
            port_cands.append(
                Candidate(
                    in_port=port,
                    vc=draw(st.integers(0, CONFIG.vcs_per_link - 1)),
                    out_port=draw(st.integers(0, n - 1)),
                    priority=prios[level],
                    level=level,
                )
            )
        out.append(port_cands)
    return out


@settings(max_examples=60, deadline=None)
@given(cands=candidate_sets(), seed=st.integers(0, 2**31 - 1))
def test_every_arbiter_produces_valid_maximal_matchings(cands, seed):
    for name in ARBITER_NAMES:
        arbiter = make_arbiter(name, CONFIG)
        grants = arbiter.match(cands, np.random.default_rng(seed))
        visible = _visible(name, cands)
        assert is_conflict_free(grants, CONFIG.num_ports), name
        assert is_maximal(visible, grants, CONFIG.num_ports), name
        # No invented grants: each grant maps to a visible candidate.
        visible_keys = {
            (c.in_port, c.vc, c.out_port) for port in visible for c in port
        }
        for grant in grants:
            assert grant in visible_keys, (name, grant)


@settings(max_examples=30, deadline=None)
@given(cands=candidate_sets(), seed=st.integers(0, 2**31 - 1))
def test_arbiters_are_deterministic_given_rng_state(cands, seed):
    for name in ARBITER_NAMES:
        a = make_arbiter(name, CONFIG)
        b = make_arbiter(name, CONFIG)
        g1 = a.match(cands, np.random.default_rng(seed))
        g2 = b.match(cands, np.random.default_rng(seed))
        assert g1 == g2, name


@settings(max_examples=30, deadline=None)
@given(cands=candidate_sets(), seed=st.integers(0, 2**31 - 1))
def test_coa_grants_respect_priority_on_contested_outputs(cands, seed):
    """On the row the COA serves, the granted request has the maximum
    priority among the live requests for that output at that level —
    verified indirectly: no *level-0* candidate with a strictly higher
    priority lost its output to a lower-priority level-0 candidate."""
    arbiter = make_arbiter("coa", CONFIG)
    grants = arbiter.match(cands, np.random.default_rng(seed))
    granted_by_output = {g[2]: g for g in grants}
    level0 = {}
    for port in cands:
        for cand in port:
            if cand.level == 0:
                level0[(cand.in_port, cand.out_port)] = cand.priority
    matched_inputs = {g[0] for g in grants}
    for (in_port, out_port), prio in level0.items():
        if in_port in matched_inputs:
            continue  # the input got served elsewhere
        winner = granted_by_output.get(out_port)
        if winner is None:
            continue
        winner_prio = level0.get((winner[0], out_port))
        if winner_prio is not None:
            # A losing level-0 request can never outrank the level-0
            # winner of the same output.
            assert winner_prio >= prio
