"""MMR router substrate: buffers, flow control, crossbar, admission.

See DESIGN.md §3 for the module map.  The composition root is
:class:`repro.router.MMRouter`.
"""

from .admission import AdmissionController, AdmissionDecision
from .config import DEFAULT_CONFIG, RouterConfig
from .connection import Connection, ConnectionTable, TrafficClass
from .credits import CreditState
from .crossbar import Crossbar, Departure
from .flit import FRAME_NONE, Flit, FlitType
from .link import PhitPipeline, pipelined_latency_phits, store_and_forward_latency_phits
from .presets import PRESETS, config_from_dict, config_to_dict, preset
from .nic import NIC
from .router import MMRouter
from .routing import SetupResult, SetupUnit
from .vc_memory import HeadView, InterleavedRam, VCMemory

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DEFAULT_CONFIG",
    "RouterConfig",
    "Connection",
    "ConnectionTable",
    "TrafficClass",
    "CreditState",
    "Crossbar",
    "Departure",
    "FRAME_NONE",
    "PhitPipeline",
    "pipelined_latency_phits",
    "store_and_forward_latency_phits",
    "PRESETS",
    "config_from_dict",
    "config_to_dict",
    "preset",
    "Flit",
    "FlitType",
    "NIC",
    "MMRouter",
    "SetupResult",
    "SetupUnit",
    "HeadView",
    "InterleavedRam",
    "VCMemory",
]
