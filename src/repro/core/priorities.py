"""Priority biasing functions for link scheduling.

The MMR's link scheduler ranks the head flits of a physical link's virtual
channels by a *biased priority* that combines the QoS a connection
requested (its reserved bandwidth) with the QoS its head flit is receiving
(its queuing delay).  The paper discusses two biasing functions plus the
degenerate schemes we keep as baselines:

* **IABP** (Inter-Arrival Based Priority): ``priority = queuing_delay /
  IAT`` where the inter-arrival time ``IAT = round / reserved_slots``.
  Equivalent to ``delay * reserved_slots / round`` — a product, i.e. a
  theoretical reference needing a divider (or multiplier) per VC, too
  slow/large for the router's cycle time.
* **SIABP** (Simple IABP): the practical scheme.  The priority register is
  seeded with the connection's reserved slots per round (an integer) and
  shifted left each time the queuing-delay counter sets a bit for the
  first time — i.e. each time the delay crosses a power of two.  In closed
  form: ``priority = slots << bit_length(delay)``.  Hardware cost: a
  shifter plus combinational logic (see :mod:`repro.core.hwcost`).
* **StaticPriority**: rank by reserved bandwidth only (no aging) — shows
  why biasing is needed (low-bandwidth connections starve... never age).
* **FIFOPriority**: rank by queuing delay only (oldest first) — shows why
  bandwidth awareness is needed.

All schemes are vectorized: they map numpy arrays of reserved slots and
queuing delays to an array of priorities, so the link scheduler evaluates
a whole physical link's VCs in a handful of vector operations.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "PriorityScheme",
    "IABP",
    "SIABP",
    "StaticPriority",
    "FIFOPriority",
    "bit_length",
]

#: Cap on the SIABP shift amount.  Reserved slots fit comfortably in
#: ~20 bits; capping the shift at 40 keeps priorities inside int64 while
#: preserving the ordering for any delay the simulator can produce.
_MAX_SHIFT = 40


def bit_length(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative int64 arrays.

    ``bit_length(0) == 0``, ``bit_length(1) == 1``, ``bit_length(2) == 2``,
    ``bit_length(3) == 2`` ... exactly matching Python's semantics.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise ValueError("bit_length requires non-negative values")
    # frexp represents v as m * 2**e with m in [0.5, 1); e is exactly the
    # bit length for integers below 2**53 (np.log2 would round values
    # like 2**49 - 1 up and overshoot by one).  frexp(0) yields e == 0,
    # matching bit_length(0) == 0.
    _m, exp = np.frexp(values.astype(np.float64))
    return exp.astype(np.int64)


class PriorityScheme(abc.ABC):
    """Maps (reserved slots, queuing delay) to a biased priority."""

    #: Registry/display name; subclasses override.
    name: str = "scheme"
    #: True when priorities are exact integers (hardware-realizable).
    integer_valued: bool = False

    @abc.abstractmethod
    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        """Vectorized priority computation.

        Parameters
        ----------
        slots:
            Reserved flit-cycle slots per round, per VC (static).
        delay:
            Queuing delay of each VC's head flit, in flit cycles, measured
            since the flit entered the router's VC memory.
        """

    def scalar(self, slots: int, delay: int) -> float:
        """Convenience scalar form (tests, examples)."""
        return float(
            self.compute(
                np.asarray([slots], dtype=np.int64),
                np.asarray([delay], dtype=np.int64),
            )[0]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class IABP(PriorityScheme):
    """Inter-Arrival Based Priority: ``delay / IAT`` (reference model).

    ``IAT = round_cycles / slots`` so the priority is
    ``delay * slots / round_cycles``.  Floating point; grows linearly with
    delay, faster for high-bandwidth connections.
    """

    name = "iabp"
    integer_valued = False

    def __init__(self, round_cycles: int) -> None:
        if round_cycles <= 0:
            raise ValueError("round_cycles must be positive")
        self.round_cycles = round_cycles

    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        return (
            delay.astype(np.float64) * slots.astype(np.float64) / self.round_cycles
        )


class SIABP(PriorityScheme):
    """Simple IABP: shift-based hardware approximation of IABP.

    ``priority = slots << bit_length(delay)`` (shift capped to keep int64
    exact).  The seed (``delay == 0``) is the reserved slots themselves;
    every time the delay counter sets a new most-significant bit the
    priority doubles.  Piecewise-exponential envelope of IABP's linear
    growth: within a factor of two of ``2 * slots * delay``.
    """

    name = "siabp"
    integer_valued = True

    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        shift = np.minimum(bit_length(delay), _MAX_SHIFT)
        return slots.astype(np.int64) << shift


class StaticPriority(PriorityScheme):
    """Rank by reserved bandwidth only — no aging (baseline)."""

    name = "static"
    integer_valued = True

    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        return slots.astype(np.int64).copy()


class FIFOPriority(PriorityScheme):
    """Rank by queuing delay only — oldest-first (baseline)."""

    name = "fifo"
    integer_valued = True

    def compute(self, slots: np.ndarray, delay: np.ndarray) -> np.ndarray:
        return delay.astype(np.int64).copy()
