"""Hypothesis property tests over the whole router pipeline.

Random workloads, random arbiters, random stepping — the invariants that
must survive anything:

* flow control conservation (credits + in-flight + buffered == slots);
* per-connection FIFO delivery: a connection's flits depart in exactly
  the order they were generated (streams must never reorder);
* loss-free delivery: after draining, departures == injections;
* departures only ever occur for established connections.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.registry import ARBITER_NAMES
from repro.router import MMRouter, RouterConfig, TrafficClass


def build_router(arbiter: str) -> MMRouter:
    cfg = RouterConfig(num_ports=3, vcs_per_link=6, vc_buffer_depth=2,
                       candidate_levels=3, flit_cycles_per_round=600)
    return MMRouter(cfg, arbiter=arbiter)


@st.composite
def scenario(draw):
    arbiter = draw(st.sampled_from(ARBITER_NAMES))
    seed = draw(st.integers(0, 2**31 - 1))
    num_conns = draw(st.integers(1, 12))
    inject_prob = draw(st.floats(0.05, 0.6))
    cycles = draw(st.integers(20, 120))
    return arbiter, seed, num_conns, inject_prob, cycles


@settings(max_examples=40, deadline=None)
@given(params=scenario())
def test_pipeline_invariants_under_random_traffic(params):
    arbiter, seed, num_conns, inject_prob, cycles = params
    rng = np.random.default_rng(seed)
    router = build_router(arbiter)

    conns = []
    for _ in range(num_conns):
        in_port = int(rng.integers(3))
        out_port = int(rng.integers(3))
        tclass = TrafficClass.CBR if rng.random() < 0.8 else \
            TrafficClass.BEST_EFFORT
        res = router.establish(in_port, out_port, tclass,
                               avg_slots=int(rng.integers(1, 40)))
        if res.accepted:
            conns.append(res.connection)
    if not conns:
        return

    # Per-connection generation sequence numbers ride in gen_cycle.
    seq = {c.conn_id: 0 for c in conns}
    injected = 0
    departed: dict[int, list[int]] = {c.conn_id: [] for c in conns}

    def record(deps):
        nonlocal_departed = 0
        for dep in deps:
            conn_id = router.connection_at(dep.in_port, dep.vc)
            assert conn_id >= 0, "departure from an unestablished VC"
            departed[conn_id].append(dep.gen_cycle)
            nonlocal_departed += 1
        return nonlocal_departed

    arb_rng = np.random.default_rng(seed + 1)
    for t in range(cycles):
        for conn in conns:
            if rng.random() < inject_prob:
                router.nics[conn.in_port].inject(conn.vc, gen_cycle=seq[conn.conn_id])
                seq[conn.conn_id] += 1
                injected += 1
        record(router.step(t, arb_rng))
        router.check_flow_control_invariant()

    # Drain completely (loss-free router must empty once sources stop).
    t = cycles
    while router.nic_backlog() + router.buffered_flits() > 0:
        record(router.step(t, arb_rng))
        t += 1
        assert t < cycles + 50_000, "router failed to drain"

    total_departed = sum(len(v) for v in departed.values())
    assert total_departed == injected
    for conn in conns:
        gens = departed[conn.conn_id]
        # FIFO per connection: sequence numbers in generation order.
        assert gens == sorted(gens)
        assert gens == list(range(seq[conn.conn_id]))
