"""Fabric subsystem: session churn over multi-router topologies.

Merges the session-lifecycle engine with
:class:`~repro.network.multirouter.MultiRouterNetwork`: deterministic
churn timelines with (router, port) endpoints, multi-hop hop-by-hop
admission with per-hop rollback, pluggable alternate-path policies
(first-fit / ECMP hash / residual-weighted WRR), and blocked-at-hop
re-admission over the next candidate path.

``repro.fabric.experiments`` (campaign sweeps, Kaufman–Roberts
references) is intentionally *not* imported here — it pulls in
``repro.campaign``; import it explicitly, mirroring
``repro.sessions.experiments``.
"""

from .churn import FabricSession, generate_fabric_timeline
from .engine import (
    FABRIC_SCHEMA,
    FabricEngine,
    FabricSim,
    build_static_load,
    execute_fabric_point,
)
from .paths import (
    PATH_POLICIES,
    PathProvider,
    make_path_policy,
    residual_bottleneck,
    stable_hash,
)
from .spec import TOPOLOGY_KINDS, FabricSpec, TopologySpec, parse_topology

__all__ = [
    "FABRIC_SCHEMA",
    "PATH_POLICIES",
    "TOPOLOGY_KINDS",
    "FabricEngine",
    "FabricSession",
    "FabricSim",
    "FabricSpec",
    "PathProvider",
    "TopologySpec",
    "build_static_load",
    "execute_fabric_point",
    "generate_fabric_timeline",
    "make_path_policy",
    "parse_topology",
    "residual_bottleneck",
    "stable_hash",
]
