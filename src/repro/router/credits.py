"""Credit-based flow control between the NICs and the router.

The MMR avoids flit loss with per-connection credit flow control: the NIC
may only forward a flit to the router when the corresponding virtual
channel has free buffer space, which the NIC learns through credits
returned when flits leave the router through the crossbar.  Credits travel
in a single phit, so their return latency is a small constant number of
flit cycles (links are short in a cluster).

:class:`CreditState` tracks the NIC-side credit counters for every
(input port, VC) pair plus the in-flight credit returns.  It also carries
the *fault ledger* used by the robustness harness (:mod:`repro.faults`):
single-phit credit returns are the most fragile control path in the
router, so the fault models can destroy or duplicate them, and
:class:`CreditWatchdog` implements the detection/recovery side — counter
resynchronisation with bounded retries and exponential backoff instead of
a hard failure.
"""

from __future__ import annotations

import numpy as np

from .config import RouterConfig

__all__ = ["CreditState", "CreditWatchdog"]


class CreditState:
    """NIC-side credit counters with delayed credit return.

    Invariant (checked by tests and :meth:`check_conservation`): for every
    (port, vc),

    ``credits + in_flight - extra_flight - extra_landed + occupancy + lost
    == vc_buffer_depth``

    where ``lost`` counts credits destroyed by fault injection and not
    yet resynchronised, ``extra_flight`` counts injected duplicate
    credits still on the wire, and ``extra_landed`` counts duplicates
    that already landed and inflate the counter (they are removed by the
    watchdog resync, or cancel against a later overflowing landing).  In
    a healthy run all fault terms are zero and the invariant reduces to
    ``credits + in_flight + occupancy == depth``.
    """

    def __init__(self, config: RouterConfig) -> None:
        n, v = config.num_ports, config.vcs_per_link
        depth = config.vc_buffer_depth
        # All per-(port, vc) ledgers are plain nested lists: every hot
        # operation (consume / schedule_return / deliver) touches single
        # cells, where Python list indexing beats numpy scalar indexing
        # severalfold.  Vectorized consumers (expected,
        # check_conservation, counters) materialize arrays on demand.
        self._credits = [[depth] * v for _ in range(n)]
        self._delay = config.credit_return_delay
        self._depth = depth
        # cycle -> list of (port, vc) credits that land on that cycle
        self._pending: dict[int, list[tuple[int, int]]] = {}
        self._in_flight = 0
        # Per-(port, vc) in-flight returns (watchdog + conservation ledger).
        self._in_flight_pv = [[0] * v for _ in range(n)]
        # Fault ledger, per VC: credits destroyed in flight; duplicates
        # still on the wire; duplicates landed into the counter.
        self._lost_pv = [[0] * v for _ in range(n)]
        self._extra_flight_pv = [[0] * v for _ in range(n)]
        self._extra_landed_pv = [[0] * v for _ in range(n)]
        #: Credits destroyed by fault injection (lifetime total).
        self.lost_total = 0
        #: Duplicate credits injected (lifetime total).
        self.duplicated_total = 0
        #: Duplicate credits detected and discarded at landing.
        self.duplicates_discarded = 0
        #: Counter resynchronisations performed (see :meth:`resync`).
        self.resyncs = 0
        #: Optional hook called as ``(port, vc, now)`` when a duplicate
        #: credit is discarded at landing (fault-event logging).
        self.on_duplicate_discard = None
        # Per-port bitmask of VCs with credits > 0 (hot-path view: lets
        # the NIC link controller test eligibility without numpy calls).
        self._mask = [(1 << v) - 1 for _ in range(n)]

    @property
    def counters(self) -> np.ndarray:
        """(ports, vcs) credit counters (read-only, built on demand)."""
        arr = np.array(self._credits, dtype=np.int64)
        arr.flags.writeable = False
        return arr

    def counters_for(self, port: int) -> np.ndarray:
        """Read-only snapshot of one port's credit row."""
        arr = np.array(self._credits[port], dtype=np.int64)
        arr.flags.writeable = False
        return arr

    def available(self, port: int, vc: int) -> int:
        return self._credits[port][vc]

    @property
    def in_flight(self) -> int:
        """Credits currently travelling back to the NICs."""
        return self._in_flight

    def in_flight_for(self, port: int, vc: int) -> int:
        """Credits of one (port, vc) currently travelling back."""
        return self._in_flight_pv[port][vc]

    def mask_for(self, port: int) -> int:
        """Bitmask of this port's VCs holding at least one credit."""
        return self._mask[port]

    def consume(self, port: int, vc: int) -> None:
        """NIC forwards a flit: spend one credit."""
        remaining = self._credits[port][vc] - 1
        if remaining < 0:
            raise RuntimeError(
                f"credit underflow at port {port} vc {vc}: the NIC link "
                "controller must not forward without a credit"
            )
        self._credits[port][vc] = remaining
        if remaining == 0:
            self._mask[port] &= ~(1 << vc)

    def schedule_return(self, port: int, vc: int, now: int) -> None:
        """A flit left the router: send a credit back to the NIC."""
        land = now + self._delay
        self._pending.setdefault(land, []).append((port, vc))
        self._in_flight += 1
        self._in_flight_pv[port][vc] += 1

    def deliver(self, now: int) -> None:
        """Land all credits whose return delay has elapsed.

        Call once per cycle *before* the NIC link controllers run, so a
        credit sent ``credit_return_delay`` cycles ago is usable this
        cycle.  Land-cycles at or before ``now`` are all drained, so a
        skipped cycle can never strand in-flight credits and deadlock a
        virtual channel.
        """
        if not self._pending:
            return
        due = [cycle for cycle in self._pending if cycle <= now]
        if not due:
            return
        due.sort()
        for cycle in due:
            landed = self._pending.pop(cycle)
            for port, vc in landed:
                self._in_flight_pv[port][vc] -= 1
                new = self._credits[port][vc] + 1
                if new > self._depth:
                    # A credit beyond the buffer depth can only be an
                    # injected duplicate (still flying, or one that
                    # landed earlier and inflated the counter); anything
                    # else is a real flow-control bug and must stay fatal.
                    if self._extra_flight_pv[port][vc] > 0:
                        self._extra_flight_pv[port][vc] -= 1
                    elif self._extra_landed_pv[port][vc] > 0:
                        self._extra_landed_pv[port][vc] -= 1
                    else:
                        raise RuntimeError(
                            f"credit overflow at port {port} vc {vc}: more "
                            "credits returned than buffer slots exist"
                        )
                    self.duplicates_discarded += 1
                    if self.on_duplicate_discard is not None:
                        self.on_duplicate_discard(port, vc, now)
                    continue
                if self._extra_flight_pv[port][vc] > 0:
                    # One of this VC's pending credits is a duplicate;
                    # whichever physical credit this one is, the counter
                    # is now inflated by it (repaired by the watchdog's
                    # surplus resync before the NIC can overfill).
                    self._extra_flight_pv[port][vc] -= 1
                    self._extra_landed_pv[port][vc] += 1
                self._credits[port][vc] = new
                if new == 1:
                    self._mask[port] |= 1 << vc
            self._in_flight -= len(landed)

    # ------------------------------------------------------------------
    # Fault injection and recovery (see repro.faults)
    # ------------------------------------------------------------------

    def fault_lose(self, port: int, vc: int) -> None:
        """Destroy the credit a departure would have returned.

        Called by the fault injector *instead of* :meth:`schedule_return`:
        the single-phit credit is corrupted or dropped on the wire and
        never reaches the NIC.  The ledger records the loss so
        conservation stays checkable and the watchdog can resync.
        """
        self._lost_pv[port][vc] += 1
        self.lost_total += 1

    def fault_duplicate(self, port: int, vc: int, now: int) -> None:
        """Inject one duplicate credit return for (port, vc).

        Called *in addition to* the legitimate :meth:`schedule_return` of
        the same departure.  The duplicate lands like a real credit; if
        the counter is already full at landing it is detected and
        discarded, otherwise it inflates the counter until the watchdog
        resyncs (surplus detection).
        """
        land = now + self._delay
        self._pending.setdefault(land, []).append((port, vc))
        self._in_flight += 1
        self._in_flight_pv[port][vc] += 1
        self._extra_flight_pv[port][vc] += 1
        self.duplicated_total += 1

    def restore(self, port: int, vc: int, count: int) -> None:
        """Return ``count`` credits immediately (teardown drain path).

        When a connection is force-torn-down its buffered flits are
        discarded without traversing the crossbar; the buffer slots they
        held become free at once, so their credits return without the
        wire delay.
        """
        if count <= 0:
            return
        new = self._credits[port][vc] + count
        if new > self._depth:
            raise RuntimeError(
                f"credit restore overflow at port {port} vc {vc}: "
                f"{new} > depth {self._depth}"
            )
        self._credits[port][vc] = new
        self._mask[port] |= 1 << vc

    def reset_vc(self, port: int, vc: int) -> None:
        """Return one VC to its pristine state (teardown recovery path).

        Cancels the VC's in-flight returns, clears its fault ledger and
        refills the counter to the buffer depth.  Only valid once the
        VC's router buffer has drained (force-teardown does that); a
        re-admitted connection then starts from a clean credit state.
        """
        removed = 0
        for cycle in list(self._pending):
            entries = self._pending[cycle]
            kept = [entry for entry in entries if entry != (port, vc)]
            if len(kept) != len(entries):
                removed += len(entries) - len(kept)
                if kept:
                    self._pending[cycle] = kept
                else:
                    del self._pending[cycle]
        self._in_flight -= removed
        self._in_flight_pv[port][vc] = 0
        self._lost_pv[port][vc] = 0
        self._extra_flight_pv[port][vc] = 0
        self._extra_landed_pv[port][vc] = 0
        self._credits[port][vc] = self._depth
        self._mask[port] |= 1 << vc

    def expected(self, occupancy: np.ndarray) -> np.ndarray:
        """Ground-truth credit counters implied by the router occupancy.

        Duplicates still on the wire are excluded from the in-flight term:
        they will land on top of the legitimate credits, so the counter a
        healthy NIC *should* show right now does not account for them.
        Consequently ``counters - expected == extra_landed - lost`` — a
        surplus only becomes visible (and repairable) once the duplicate
        actually lands.
        """
        return (
            self._depth
            - occupancy
            - np.array(self._in_flight_pv, dtype=np.int64)
            + np.array(self._extra_flight_pv, dtype=np.int64)
        )

    def resync(self, port: int, vc: int, occupancy: int) -> int:
        """Reset one VC's counter from the router's authoritative state.

        Returns the signed correction applied.  Clears the VC's fault
        ledger: after a resync the plain conservation invariant holds
        again for this VC.
        """
        target = (
            self._depth
            - occupancy
            - self._in_flight_pv[port][vc]
            + self._extra_flight_pv[port][vc]
        )
        if not (0 <= target <= self._depth):
            raise RuntimeError(
                f"resync target {target} out of range at port {port} vc {vc}"
            )
        delta = target - self._credits[port][vc]
        self._credits[port][vc] = target
        if target > 0:
            self._mask[port] |= 1 << vc
        else:
            self._mask[port] &= ~(1 << vc)
        # The resync repairs exactly the landed drift (lost credits and
        # landed duplicates); duplicates still flying are left in the
        # ledger so their eventual landing is still accounted for.
        self._lost_pv[port][vc] = 0
        self._extra_landed_pv[port][vc] = 0
        self.resyncs += 1
        return delta

    def check_conservation(self, occupancy: np.ndarray) -> None:
        """Assert the per-VC ledger invariant (see class docstring)."""
        total = (
            np.array(self._credits, dtype=np.int64)
            + np.array(self._in_flight_pv, dtype=np.int64)
            - np.array(self._extra_flight_pv, dtype=np.int64)
            - np.array(self._extra_landed_pv, dtype=np.int64)
            + occupancy
            + np.array(self._lost_pv, dtype=np.int64)
        )
        if not (total == self._depth).all():
            bad = np.argwhere(total != self._depth)
            port, vc = (int(x) for x in bad[0])
            raise AssertionError(
                f"credit conservation violated at port {port} vc {vc}: "
                f"credits({self._credits[port][vc]}) + "
                f"in_flight({self._in_flight_pv[port][vc]}) - "
                f"extra_flight({self._extra_flight_pv[port][vc]}) - "
                f"extra_landed({self._extra_landed_pv[port][vc]}) + "
                f"occupancy({int(occupancy[port, vc])}) + "
                f"lost({self._lost_pv[port][vc]}) != depth({self._depth})"
            )


class CreditWatchdog:
    """Detects and repairs credit-counter drift caused by faulty returns.

    Detection compares each VC's counter against the ground truth implied
    by the router occupancy and the in-flight returns:

    * **surplus** (counter too high — a duplicate credit landed): repaired
      immediately, before the NIC can forward into a buffer slot that
      does not exist;
    * **deficit** (counter too low — a credit return was lost): repaired
      only after the deficit persists for a timeout, because a slow credit
      is indistinguishable from a lost one.  Repeated deficits on the same
      VC back off exponentially (``timeout * backoff**attempts``) and give
      up after ``max_retries`` resyncs, at which point the caller should
      escalate (tear the connection down and re-admit it).
    """

    def __init__(
        self,
        credits: CreditState,
        timeout: int = 16,
        max_retries: int = 5,
        backoff: int = 2,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff < 1:
            raise ValueError("backoff must be >= 1")
        self.credits = credits
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        # (port, vc) -> cycle the current deficit was first observed.
        self._deficit_since: dict[tuple[int, int], int] = {}
        # (port, vc) -> resync attempts so far (escalation memory).
        self._attempts: dict[tuple[int, int], int] = {}
        self._given_up: set[tuple[int, int]] = set()

    def reset(self, port: int, vc: int) -> None:
        """Forget a VC's escalation state (after teardown/re-admission)."""
        key = (port, vc)
        self._deficit_since.pop(key, None)
        self._attempts.pop(key, None)
        self._given_up.discard(key)

    def scan(self, now: int, occupancy: np.ndarray) -> list[tuple[str, int, int, int]]:
        """One detection pass; returns ``(action, port, vc, delta)`` events.

        Actions: ``"surplus_resync"``, ``"deficit_resync"``, ``"giveup"``.
        """
        credits = self.credits
        diff = credits.counters - credits.expected(occupancy)
        events: list[tuple[str, int, int, int]] = []
        if (diff == 0).all():
            if self._deficit_since:
                self._deficit_since.clear()
            return events
        for port, vc in np.argwhere(diff > 0):
            port, vc = int(port), int(vc)
            delta = credits.resync(port, vc, int(occupancy[port, vc]))
            events.append(("surplus_resync", port, vc, delta))
        for port, vc in np.argwhere(diff < 0):
            key = (int(port), int(vc))
            if key in self._given_up:
                continue
            since = self._deficit_since.setdefault(key, now)
            attempts = self._attempts.get(key, 0)
            wait = self.timeout * self.backoff**attempts
            if now - since < wait:
                continue
            if attempts >= self.max_retries:
                self._given_up.add(key)
                self._deficit_since.pop(key, None)
                events.append(("giveup", key[0], key[1], 0))
                continue
            delta = credits.resync(key[0], key[1], int(occupancy[key]))
            self._attempts[key] = attempts + 1
            self._deficit_since.pop(key, None)
            events.append(("deficit_resync", key[0], key[1], delta))
        # Deficits that healed on their own (late credits) stop counting.
        healthy = [k for k in self._deficit_since if diff[k] >= 0]
        for key in healthy:
            del self._deficit_since[key]
        return events
