"""Tests for the Candidate-Order Arbiter (the paper's §4 algorithm)."""

import numpy as np
import pytest

from repro.core.coa import CandidateOrderArbiter
from repro.core.matching import Candidate, is_conflict_free, is_maximal


def cand(i, v, o, prio, level=0):
    return Candidate(i, v, o, prio, level)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestConstruction:
    def test_rejects_unknown_ordering(self):
        with pytest.raises(ValueError):
            CandidateOrderArbiter(4, 4, ordering="zigzag")

    def test_rejects_unknown_arbitration(self):
        with pytest.raises(ValueError):
            CandidateOrderArbiter(4, 4, arbitration="fifo")

    def test_name_reflects_variants(self):
        assert CandidateOrderArbiter(4, 4).name == "coa"
        assert "level_only" in CandidateOrderArbiter(4, 4, ordering="level_only").name


class TestBehaviour:
    def test_empty_candidates(self):
        coa = CandidateOrderArbiter(4, 4)
        assert coa.match([[], [], [], []], rng()) == []

    def test_single_request_granted(self):
        coa = CandidateOrderArbiter(4, 4)
        cands = [[cand(0, 3, 2, 10.0)], [], [], []]
        assert coa.match(cands, rng()) == [(0, 3, 2)]

    def test_highest_priority_wins_contention(self):
        coa = CandidateOrderArbiter(2, 1)
        cands = [[cand(0, 0, 1, prio=5.0)], [cand(1, 0, 1, prio=50.0)]]
        grants = coa.match(cands, rng())
        assert grants == [(1, 0, 1)]

    def test_least_conflicted_output_served_first(self):
        """Output with one request is matched before the 2-conflict one,
        letting all three inputs be served."""
        coa = CandidateOrderArbiter(3, 2)
        cands = [
            # Input 0: level0 -> out0 (contested), level1 -> out1
            [cand(0, 0, 0, 10.0, 0), cand(0, 1, 1, 4.0, 1)],
            # Input 1: level0 -> out0 (contested)
            [cand(1, 0, 0, 9.0, 0)],
            # Input 2: level0 -> out2 (alone, least conflicts)
            [cand(2, 0, 2, 1.0, 0)],
        ]
        grants = coa.match(cands, rng())
        # out2 is least conflicted at level 0, so input 2 always gets it;
        # out0 then goes to the higher-priority input 0, and input 1 is
        # left unmatched (its only candidate lost).
        assert set(grants) == {(2, 0, 2), (0, 0, 0)}

    def test_loser_recovers_via_higher_level(self):
        """An input that loses its level-0 output gets matched through its
        level-1 candidate — the point of multiple candidate levels."""
        coa = CandidateOrderArbiter(2, 2)
        cands = [
            [cand(0, 0, 0, 10.0, 0), cand(0, 1, 1, 1.0, 1)],
            [cand(1, 0, 0, 99.0, 0)],
        ]
        grants = coa.match(cands, rng())
        assert set(grants) == {(1, 0, 0), (0, 1, 1)}

    def test_levels_served_in_order(self):
        """A level-0 request beats a level-1 request for the same output
        even with lower priority (ordering is by level first)."""
        coa = CandidateOrderArbiter(2, 2)
        cands = [
            [cand(0, 0, 1, prio=1.0, level=0)],
            [cand(1, 7, 0, prio=50.0, level=0), cand(1, 8, 1, prio=50.0, level=1)],
        ]
        grants = coa.match(cands, rng())
        # Input 1 is matched on out0 (its level-0 request, conflict 1);
        # out1 then goes to input 0's level-0 request.
        assert set(grants) == {(1, 7, 0), (0, 0, 1)}

    def test_random_tie_break_covers_all_winners(self):
        coa = CandidateOrderArbiter(2, 1)
        cands = [[cand(0, 0, 1, 5.0)], [cand(1, 0, 1, 5.0)]]
        winners = {coa.match(cands, rng(s))[0][0] for s in range(64)}
        assert winners == {0, 1}

    def test_matching_conflict_free_and_maximal(self):
        generator = rng(42)
        coa = CandidateOrderArbiter(4, 4)
        for _ in range(200):
            cands = _random_candidates(generator, 4, 4)
            grants = coa.match(cands, generator)
            assert is_conflict_free(grants, 4)
            assert is_maximal(cands, grants, 4)


class TestReferenceEquivalence:
    @pytest.mark.parametrize("ordering", ["level_conflict", "level_only",
                                          "conflict_only", "random"])
    @pytest.mark.parametrize("arbitration", ["priority", "random"])
    def test_fast_path_matches_selection_matrix_path(self, ordering, arbitration):
        coa = CandidateOrderArbiter(4, 4, ordering, arbitration)
        generator = rng(7)
        for trial in range(100):
            cands = _random_candidates(generator, 4, 4, tie_heavy=True)
            fast = coa.match(cands, rng(trial))
            reference = coa.match_reference(cands, rng(trial))
            assert fast == reference


def _random_candidates(generator, n, levels, tie_heavy=False):
    out = []
    for p in range(n):
        k = int(generator.integers(0, levels + 1))
        port_cands = []
        hi = 4 if tie_heavy else 1000
        prios = sorted(
            (float(generator.integers(1, hi + 1)) for _ in range(k)), reverse=True
        )
        for level in range(k):
            port_cands.append(
                Candidate(p, level, int(generator.integers(n)), prios[level], level)
            )
        out.append(port_cands)
    return out
