#!/usr/bin/env python3
"""Quickstart: simulate one MMR router under a CBR mix.

Builds the paper's testbed (a 4x4 Multimedia Router with one NIC per
input link), fills it to 70% offered load with the paper's random CBR mix
(64 Kbps / 1.54 Mbps / 55 Mbps connections), and runs it twice — once
with the Candidate-Order Arbiter (the paper's proposal) and once with the
Wave Front Arbiter (the baseline) — printing the per-class average flit
delay each arbiter delivers.

Run:  python examples/quickstart.py
"""

from repro import RunControl, SingleRouterSim, default_config
from repro.analysis import render_table
from repro.traffic import build_cbr_workload

TARGET_LOAD = 0.85
CYCLES = 30_000
WARMUP = 5_000
SEED = 42


def main() -> None:
    config = default_config()
    print(
        f"MMR: {config.num_ports}x{config.num_ports} crossbar, "
        f"{config.vcs_per_link} VCs/link, {config.candidate_levels} candidate "
        f"levels, flit cycle {config.flit_cycle_us:.3f} us"
    )

    rows = []
    for arbiter in ("coa", "wfa"):
        # Same seed => identical workload; only the arbiter differs.
        sim = SingleRouterSim(config, arbiter=arbiter, scheme="siabp", seed=SEED)
        workload = build_cbr_workload(sim.router, TARGET_LOAD, sim.rng.workload)
        result = sim.run(workload, RunControl(cycles=CYCLES, warmup_cycles=WARMUP))
        rows.append(
            [
                arbiter,
                result.offered_load * 100,
                result.utilization * 100,
                result.flit_delay_us.get("low", float("nan")),
                result.flit_delay_us.get("medium", float("nan")),
                result.flit_delay_us.get("high", float("nan")),
                result.backlog,
            ]
        )

    print()
    print(
        render_table(
            ["arbiter", "offered %", "util %", "low us", "medium us",
             "high us", "backlog"],
            rows,
            title=f"CBR mix at {TARGET_LOAD:.0%} offered load "
                  f"({CYCLES} flit cycles, {WARMUP} warmup)",
        )
    )
    print(
        "\nAt this load the priority-blind WFA is past its saturation knee "
        "(the paper puts it near 70-75%): contention bleeds into the "
        "low/medium classes as orders-of-magnitude delay. The Candidate-"
        "Order Arbiter honours connection priorities and keeps every class "
        "flat until ~83-85% load."
    )


if __name__ == "__main__":
    main()
