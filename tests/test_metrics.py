"""Tests for repro.sim.engine and repro.sim.metrics."""

import numpy as np
import pytest

from repro.router.config import RouterConfig
from repro.router.crossbar import Departure
from repro.sim.engine import RngStreams, RunControl
from repro.sim.metrics import MetricsCollector, StreamingStat


class TestRngStreams:
    def test_streams_are_independent_and_deterministic(self):
        a, b = RngStreams(5), RngStreams(5)
        assert a.workload.random() == b.workload.random()
        assert a.arbiter.random() == b.arbiter.random()
        # Drawing from one stream does not move another.
        c, d = RngStreams(5), RngStreams(5)
        c.workload.random()
        assert c.arbiter.random() == d.arbiter.random()

    def test_different_seeds_differ(self):
        assert RngStreams(1).sources.random() != RngStreams(2).sources.random()

    def test_getitem_and_unknown_role(self):
        streams = RngStreams(0)
        assert streams["misc"] is streams.misc
        with pytest.raises(KeyError):
            streams["bogus"]


class TestRunControl:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunControl(cycles=0)
        with pytest.raises(ValueError):
            RunControl(cycles=10, warmup_cycles=-1)

    def test_warmup_may_cover_run(self):
        # Degenerate but legal: every cycle is warmup, nothing measured.
        assert RunControl(cycles=10, warmup_cycles=10).measured_cycles == 0
        assert RunControl(cycles=10, warmup_cycles=25).measured_cycles == 0

    def test_measured_cycles(self):
        assert RunControl(100, 20).measured_cycles == 80


class TestStreamingStat:
    def test_moments(self):
        stat = StreamingStat()
        for v in (1.0, 2.0, 6.0):
            stat.add(v)
        assert stat.n == 3
        assert stat.mean == pytest.approx(3.0)
        assert stat.max == 6.0
        assert stat.min == 1.0

    def test_empty_mean_is_nan(self):
        assert np.isnan(StreamingStat().mean)
        assert np.isnan(StreamingStat().percentile(50))

    def test_reservoir_percentiles_approximate(self):
        stat = StreamingStat(reservoir=512)
        rng = np.random.default_rng(0)
        values = rng.exponential(10.0, size=20_000)
        for v in values:
            stat.add(float(v))
        assert stat.percentile(50) == pytest.approx(
            np.percentile(values, 50), rel=0.15
        )

    def test_percentile_is_histogram_backed_within_error_bound(self):
        # Non-negative streams use the log-bucket histogram: the error is
        # bounded by its alpha (1%), far tighter than any reservoir, and
        # deterministic (no seed dependence).
        stat = StreamingStat(reservoir=64)  # tiny reservoir: can't do this
        rng = np.random.default_rng(42)
        values = rng.exponential(25.0, size=30_000)
        for v in values:
            stat.add(float(v))
        assert stat.histogram is not None
        for q in (50, 90, 99, 99.9):
            exact = np.percentile(values, q, method="inverted_cdf")
            assert stat.percentile(q) == pytest.approx(
                exact, rel=stat.histogram.alpha * 1.001
            )

    def test_percentile_falls_back_to_reservoir_on_negatives(self):
        stat = StreamingStat()
        for v in (-5.0, 1.0, 2.0, 3.0):
            stat.add(v)
        # The histogram refused the negative value, so it no longer
        # covers the stream and the reservoir answers instead.
        assert stat.histogram is None
        assert stat.percentile(0) == pytest.approx(-5.0)
        assert stat.min == -5.0 and stat.n == 4


def make_collector(measure_from=0):
    cfg = RouterConfig(num_ports=2, vcs_per_link=4, candidate_levels=1)
    labels = {0: "high", 1: "low"}
    conn_of_vc = {(0, 0): 0, (1, 0): 1}
    return cfg, MetricsCollector(cfg, labels, conn_of_vc, measure_from)


def dep(in_port=0, vc=0, gen=0, frame_id=-1, frame_last=False):
    return Departure(in_port, vc, 1, gen, gen, frame_id, frame_last)


class TestMetricsCollector:
    def test_flit_delay_grouping(self):
        cfg, mc = make_collector()
        mc.record(dep(in_port=0, gen=10), now=19)  # delay 10 cycles
        mc.record(dep(in_port=1, gen=0), now=4)    # delay 5 cycles
        assert mc.groups["high"].flit_delay.mean == pytest.approx(10)
        assert mc.groups["low"].flit_delay.mean == pytest.approx(5)
        assert mc.overall.flit_delay.mean == pytest.approx(7.5)
        assert mc.mean_flit_delay_us("high") == pytest.approx(
            cfg.cycles_to_us(10)
        )

    def test_warmup_cut_applies_to_generation_time(self):
        _cfg, mc = make_collector(measure_from=100)
        mc.record(dep(gen=50), now=200)   # generated before cut: ignored
        mc.record(dep(gen=150), now=200)  # counted
        assert mc.overall.flits == 1
        assert mc.total_departures == 2
        assert mc.measured_departures == 1

    def test_frame_delay_on_last_flit_only(self):
        _cfg, mc = make_collector()
        mc.record(dep(gen=0, frame_id=0, frame_last=False), now=3)
        mc.record(dep(gen=0, frame_id=0, frame_last=True), now=9)
        assert mc.overall.frames == 1
        assert mc.overall.frame_delay.mean == pytest.approx(10)

    def test_jitter_between_adjacent_frames(self):
        _cfg, mc = make_collector()
        mc.record(dep(gen=0, frame_id=0, frame_last=True), now=9)    # delay 10
        mc.record(dep(gen=100, frame_id=1, frame_last=True), now=115)  # 16
        mc.record(dep(gen=200, frame_id=2, frame_last=True), now=211)  # 12
        # |16-10| = 6 and |12-16| = 4 -> mean 5.
        assert mc.overall.jitter.n == 2
        assert mc.overall.jitter.mean == pytest.approx(5)

    def test_jitter_tracked_per_connection(self):
        _cfg, mc = make_collector()
        mc.record(dep(in_port=0, gen=0, frame_id=0, frame_last=True), now=9)
        mc.record(dep(in_port=1, gen=0, frame_id=0, frame_last=True), now=99)
        # First frame of each connection: no jitter samples yet.
        assert mc.overall.jitter.n == 0

    def test_throughput(self):
        _cfg, mc = make_collector()
        for t in range(10):
            mc.record(dep(gen=t), now=t)
        assert mc.throughput_flits_per_cycle(10) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            mc.throughput_flits_per_cycle(0)
