"""Replicated runs: seed ensembles and confidence intervals.

Single-seed sweeps (what the benches run at CI scale) are subject to
workload randomness: each load point draws its own connection mix and
destinations.  For publication-grade curves a point should be replicated
over independent seeds and reported with a confidence interval.  This
module provides that layer on top of :class:`SingleRouterSim` without
touching the single-run API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..analysis.stats import MeanCI, mean_ci
from ..router.config import RouterConfig
from ..router.router import MMRouter
from ..traffic.mixes import Workload
from .engine import RunControl
from .simulation import SimResult

__all__ = ["ReplicatedPoint", "replicate", "replicate_sweep", "spawn_seeds"]

#: Builds a workload onto a router: (router, workload_rng, target_load).
WorkloadBuilder = Callable[[MMRouter, np.random.Generator, float], Workload]


@dataclass(frozen=True)
class ReplicatedPoint:
    """Aggregate of one (arbiter, load) point over several seeds."""

    target_load: float
    results: tuple[SimResult, ...]

    @property
    def n(self) -> int:
        return len(self.results)

    @property
    def offered_load(self) -> MeanCI:
        return mean_ci([r.offered_load for r in self.results])

    @property
    def throughput(self) -> MeanCI:
        return mean_ci([r.throughput for r in self.results])

    @property
    def utilization(self) -> MeanCI:
        return mean_ci([r.utilization for r in self.results])

    def metric(self, pick: Callable[[SimResult], float]) -> MeanCI:
        """CI over an arbitrary per-run metric (NaN runs are dropped)."""
        values = [pick(r) for r in self.results]
        finite = [v for v in values if v == v]
        if not finite:
            return MeanCI(float("nan"), float("nan"), 0)
        return mean_ci(finite)

    def flit_delay_us(self, label: str = "overall") -> MeanCI:
        return self.metric(lambda r: r.flit_delay_us.get(label, float("nan")))

    def frame_delay_us(self) -> MeanCI:
        return self.metric(lambda r: r.overall_frame_delay_us)

    def jitter_us(self) -> MeanCI:
        return self.metric(lambda r: r.overall_jitter_us)


def spawn_seeds(root_seed: int, n: int) -> tuple[int, ...]:
    """``n`` collision-free child seeds derived from one root seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, whose children are
    independent streams by construction — unlike ad-hoc ``range(n)``
    lists, which collide with every other experiment that also counts
    from a small integer.  Each child is flattened to a 128-bit integer
    so it can be carried in specs, manifests, and ``seed=`` arguments.
    """
    if n <= 0:
        raise ValueError("need at least one seed")
    children = np.random.SeedSequence(root_seed).spawn(n)
    return tuple(
        int.from_bytes(child.generate_state(4, dtype=np.uint32).tobytes(), "little")
        for child in children
    )


def _resolve_seeds(
    seeds: Sequence[int] | None, n_seeds: int | None, root_seed: int
) -> Sequence[int]:
    if seeds is not None:
        if not seeds:
            raise ValueError("need at least one seed")
        return seeds
    if n_seeds is None:
        raise ValueError("pass seeds= or n_seeds=")
    return spawn_seeds(root_seed, n_seeds)


def replicate(
    builder: WorkloadBuilder,
    config: RouterConfig,
    arbiter: str,
    control: RunControl,
    target_load: float,
    seeds: Sequence[int] | None = None,
    scheme: str = "siabp",
    *,
    n_seeds: int | None = None,
    root_seed: int = 0,
    jobs: int = 1,
    store=None,
) -> ReplicatedPoint:
    """Run one (arbiter, load) point over independent seeds.

    Seeds come either from an explicit ``seeds=`` list (the historical
    API, kept for backward compatibility) or — preferred — from
    ``n_seeds=``/``root_seed=``, which derives collision-free child
    seeds via :func:`spawn_seeds`.  Points route through the campaign
    executor; with a declarative workload spec they can run in parallel
    (``jobs``) and hit the result cache (``store``).
    """
    from ..campaign.executor import execute_point, run_campaign
    from ..campaign.plan import CampaignPlan, WorkloadSpec

    use_seeds = _resolve_seeds(seeds, n_seeds, root_seed)
    if isinstance(builder, WorkloadSpec):
        plan = CampaignPlan.grid(
            f"replicate-{arbiter}",
            config,
            arbiters=(arbiter,),
            loads=(target_load,),
            seeds=use_seeds,
            workload=builder,
            control=control,
            scheme=scheme,
        )
        campaign = run_campaign(plan, jobs=jobs, store=store, write_manifest=False)
        return ReplicatedPoint(target_load, tuple(campaign.results()))
    results = [
        execute_point(builder, config, arbiter, control, target_load, seed, scheme)
        for seed in use_seeds
    ]
    return ReplicatedPoint(target_load, tuple(results))


def replicate_sweep(
    loads: Sequence[float],
    builder: WorkloadBuilder,
    config: RouterConfig,
    arbiter: str,
    control: RunControl,
    seeds: Sequence[int] | None = None,
    scheme: str = "siabp",
    *,
    n_seeds: int | None = None,
    root_seed: int = 0,
    jobs: int = 1,
    store=None,
) -> list[ReplicatedPoint]:
    """Replicated load sweep: one :class:`ReplicatedPoint` per load.

    With a declarative workload spec the whole load x seed grid is one
    campaign, so ``jobs=8`` fans all points out at once rather than
    parallelizing per load.
    """
    from ..campaign.executor import run_campaign
    from ..campaign.plan import CampaignPlan, WorkloadSpec

    use_seeds = _resolve_seeds(seeds, n_seeds, root_seed)
    if isinstance(builder, WorkloadSpec):
        plan = CampaignPlan.grid(
            f"replicate-sweep-{arbiter}",
            config,
            arbiters=(arbiter,),
            loads=loads,
            seeds=use_seeds,
            workload=builder,
            control=control,
            scheme=scheme,
        )
        campaign = run_campaign(plan, jobs=jobs, store=store, write_manifest=False)
        by_load: dict[float, list[SimResult]] = {load: [] for load in loads}
        for outcome in campaign.outcomes:
            by_load[outcome.spec.target_load].append(outcome.result)
        return [
            ReplicatedPoint(load, tuple(by_load[load])) for load in loads
        ]
    return [
        replicate(builder, config, arbiter, control, load, use_seeds, scheme)
        for load in loads
    ]
