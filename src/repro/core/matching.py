"""Shared types and invariants for switch-scheduling (crossbar arbitration).

Every arbiter in :mod:`repro.core` consumes the *candidates* produced by
link scheduling — per input port, up to ``candidate_levels`` virtual
channels ordered by descending biased priority — and produces a
*matching*: a conflict-free set of (input port, VC, output port) grants.

The checking helpers here (:func:`is_conflict_free`, :func:`is_maximal`)
are what the property-based tests run against every arbiter on random
request sets.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # import cycle: candidates.py needs Candidate
    from .candidates import CandidateBuffer

__all__ = [
    "Candidate",
    "Grant",
    "Arbiter",
    "is_conflict_free",
    "is_maximal",
    "matching_size",
    "request_matrix",
    "best_candidate_for",
    "restrict_levels",
    "buffer_request_matrix",
    "buffer_best_vc",
]


@dataclass(frozen=True, slots=True)
class Candidate:
    """One link-scheduling candidate: a head flit competing for an output.

    ``level`` is the candidate's rank within its input port (0 = highest
    priority), i.e. the row block it occupies in the selection matrix.

    ``priority`` is an exact Python ``int`` for integer-valued schemes
    (SIABP, static, fifo; the reserved tier folds in as ``key << 200``)
    and a ``float`` for float-valued ones (IABP).  Exact integers matter:
    a float here silently merges distinct priorities above 2**53, which
    breaks the biased ordering SIABP exists to preserve.
    """

    in_port: int
    vc: int
    out_port: int
    priority: int | float
    level: int


#: A single grant: (in_port, vc, out_port).
Grant = tuple[int, int, int]


class Arbiter(abc.ABC):
    """Base class for switch-scheduling algorithms.

    Subclasses implement :meth:`match`.  Arbiters are stateless with
    respect to the traffic (any fairness state such as rotating pointers
    is internal and advances once per call), and take the RNG explicitly
    so that experiments can give each arbiter its own tie-breaking stream
    while sharing the workload stream.
    """

    #: Registry/display name; subclasses override.
    name: str = "arbiter"

    @abc.abstractmethod
    def match(
        self,
        candidates: Sequence[Sequence[Candidate]],
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Compute a conflict-free matching.

        ``candidates[p]`` is input port ``p``'s candidate list, ordered by
        level (``candidates[p][k].level == k``).  Ports with no eligible
        flits contribute an empty list.
        """

    def match_buffer(
        self,
        buf: CandidateBuffer,
        rng: np.random.Generator,
    ) -> list[Grant]:
        """Compute a matching from a :class:`CandidateBuffer` (hot path).

        Semantics are pinned to :meth:`match`: for the same candidate set
        and an identically-seeded RNG the two must return identical
        grants (the differential tests assert it arbiter by arbiter).
        The default materializes the object view and delegates, so any
        external arbiter keeps working; the built-in arbiters override
        it with allocation-free implementations.
        """
        return self.match(buf.to_candidates(), rng)

    def reset(self) -> None:
        """Clear any internal fairness state (pointers); default no-op."""

    def skip_idle_cycles(self, n: int) -> None:
        """Advance per-cycle fairness state across ``n`` empty matchings.

        The event-skipping engine calls this instead of running ``n``
        :meth:`match` calls with no candidates.  The default no-op is
        correct for every arbiter whose state moves only on grants
        (iSLIP pointers, PIM/random draws, COA row picks all leave both
        their state and the RNG untouched on an empty request set); the
        wrapped WFA overrides it because its start diagonal rotates on
        every arbitration, requests or not.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# Invariant checks (used by the crossbar, the tests, and the benches)
# ----------------------------------------------------------------------


def is_conflict_free(matching: Sequence[Grant], num_ports: int) -> bool:
    """True iff no input port and no output port is matched twice."""
    ins: set[int] = set()
    outs: set[int] = set()
    for in_port, _vc, out_port in matching:
        if not (0 <= in_port < num_ports and 0 <= out_port < num_ports):
            return False
        if in_port in ins or out_port in outs:
            return False
        ins.add(in_port)
        outs.add(out_port)
    return True


def is_maximal(
    candidates: Sequence[Sequence[Candidate]],
    matching: Sequence[Grant],
    num_ports: int,
) -> bool:
    """True iff no grant can be added without breaking conflict-freedom.

    A maximal matching leaves no (unmatched input, unmatched output) pair
    with a pending request.  All the arbiters here produce maximal
    matchings; the property tests assert it.
    """
    ins = {g[0] for g in matching}
    outs = {g[2] for g in matching}
    for port_cands in candidates:
        for cand in port_cands:
            if cand.in_port not in ins and cand.out_port not in outs:
                return False
    return True


def matching_size(matching: Sequence[Grant]) -> int:
    """Number of matched pairs."""
    return len(matching)


def request_matrix(
    candidates: Sequence[Sequence[Candidate]], num_ports: int
) -> np.ndarray:
    """Collapse candidates into the N x N boolean request matrix.

    ``R[i, j]`` is True iff input ``i`` has at least one candidate bound
    for output ``j``.  Priority-blind arbiters (WFA, iSLIP, PIM) operate
    on this view.
    """
    r = np.zeros((num_ports, num_ports), dtype=bool)
    for port_cands in candidates:
        for cand in port_cands:
            r[cand.in_port, cand.out_port] = True
    return r


def restrict_levels(
    candidates: Sequence[Sequence[Candidate]], max_levels: int | None
) -> Sequence[Sequence[Candidate]]:
    """Drop candidates above a level cutoff (``None`` keeps everything).

    Conventional crossbar arbiters on the MMR's multiplexed crossbar see
    one request per input link — the head-of-line VC the link scheduler
    picked — so WFA/iSLIP/PIM default to ``max_levels=1``; their
    ``*-multi`` registry variants see every level (ablation A5).
    """
    if max_levels is None:
        return candidates
    if max_levels <= 0:
        raise ValueError("max_levels must be positive or None")
    return [[c for c in port if c.level < max_levels] for port in candidates]


def buffer_request_matrix(
    buf: CandidateBuffer, num_ports: int, max_levels: int | None = None
) -> np.ndarray:
    """Boolean request matrix from a candidate buffer.

    Mirrors :func:`request_matrix` + :func:`restrict_levels` on the
    object path: levels at or above ``max_levels`` do not request.
    """
    r = np.zeros((num_ports, num_ports), dtype=bool)
    cap = buf.levels if max_levels is None else min(max_levels, buf.levels)
    counts = buf.count
    outs = buf.out_port
    for p in range(num_ports):
        k = min(int(counts[p]), cap)
        if k:
            r[p, outs[p, :k]] = True
    return r


def buffer_best_vc(
    buf: CandidateBuffer,
    in_port: int,
    out_port: int,
    max_levels: int | None = None,
) -> int:
    """Lowest-level (highest-priority) VC of ``in_port`` for ``out_port``.

    Buffer twin of :func:`best_candidate_for`: buffer rows are ordered by
    level, so the first hit is the best candidate.
    """
    cap = buf.levels if max_levels is None else min(max_levels, buf.levels)
    k = min(int(buf.count[in_port]), cap)
    outs = buf.out_port[in_port]
    for level in range(k):
        if int(outs[level]) == out_port:
            return int(buf.vc[in_port, level])
    raise ValueError(
        f"no candidate from input {in_port} to output {out_port}; "
        "arbiter granted a non-existent request"
    )


def best_candidate_for(
    candidates: Sequence[Sequence[Candidate]], in_port: int, out_port: int
) -> Candidate:
    """Highest-priority candidate of ``in_port`` bound for ``out_port``.

    Used by priority-blind arbiters to decide *which VC* transmits once
    the (input, output) pair has been granted: the matching ignores
    priority, but the link scheduler's ranking still picks the flit.
    """
    best: Candidate | None = None
    for cand in candidates[in_port]:
        if cand.out_port == out_port and (best is None or cand.level < best.level):
            best = cand
    if best is None:
        raise ValueError(
            f"no candidate from input {in_port} to output {out_port}; "
            "arbiter granted a non-existent request"
        )
    return best
