"""Network topologies for multi-router MMR studies (paper §6 outlook).

The paper's evaluation uses a single router; its conclusions call for the
study to "be further extended to a network composed of several MMRs".
This module provides the topologies that extension runs on: regular
meshes/rings and arbitrary graphs (backed by networkx when richer
analysis is wanted), plus deterministic shortest-path routing tables —
the MMR uses source-routed pipelined circuit switching, so per-connection
paths are computed once at setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

__all__ = [
    "Topology",
    "mesh",
    "ring",
    "torus",
    "fat_tree",
    "fat_tree_edge_routers",
    "from_edges",
]


@dataclass(frozen=True)
class Topology:
    """A directed router-to-router connectivity graph.

    Nodes are router ids ``0..num_routers-1``.  Each directed edge is one
    physical link; ``port_map[(u, v)]`` gives the output port of ``u``
    that reaches ``v`` (and the input port of ``v`` it lands on — the MMR
    testbed wires link ``k`` of a router to link ``k`` of its peer, so
    the indices match by construction).
    """

    num_routers: int
    edges: tuple[tuple[int, int], ...]
    port_map: dict[tuple[int, int], int]

    def __post_init__(self) -> None:
        for u, v in self.edges:
            if not (0 <= u < self.num_routers and 0 <= v < self.num_routers):
                raise ValueError(f"edge ({u}, {v}) out of range")
            if u == v:
                raise ValueError("self-loop links are not allowed")

    def graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_routers))
        g.add_edges_from(self.edges)
        return g

    def neighbors(self, router: int) -> list[int]:
        return sorted(v for u, v in self.edges if u == router)

    def degree(self, router: int) -> int:
        """Number of inter-router links leaving a router."""
        return sum(1 for u, _v in self.edges if u == router)

    def max_degree(self) -> int:
        return max((self.degree(r) for r in range(self.num_routers)), default=0)

    def shortest_path(
        self,
        src: int,
        dst: int,
        avoid_routers: set[int] | frozenset[int] | tuple[int, ...] = (),
        avoid_links: set[tuple[int, int]] | tuple[tuple[int, int], ...] = (),
    ) -> list[int]:
        """Deterministic shortest router path (lowest-id tie-break).

        ``avoid_routers`` / ``avoid_links`` exclude failed elements from
        the search (fault recovery: reroute around a dead router or a
        dead directed link).  Raises ``ValueError`` when no path survives
        the exclusions.
        """
        avoid = set(avoid_routers)
        if src in avoid or dst in avoid:
            raise ValueError(
                f"no path from router {src} to {dst}: endpoint is down"
            )
        if src == dst:
            return [src]
        g = self.graph()
        g.remove_nodes_from(avoid & set(g.nodes))
        for u, v in avoid_links:
            if g.has_edge(u, v):
                g.remove_edge(u, v)
        try:
            # networkx BFS follows adjacency insertion order; re-sorting
            # neighbours makes the choice deterministic and id-ordered.
            paths = nx.all_shortest_paths(g, src, dst)
            return min(paths)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise ValueError(f"no path from router {src} to {dst}") from None

    def port_toward(self, u: int, v: int) -> int:
        """Output port of ``u`` on the direct link to ``v``."""
        try:
            return self.port_map[(u, v)]
        except KeyError:
            raise ValueError(f"no direct link {u} -> {v}") from None


def _bidirectional(pairs: list[tuple[int, int]], num_routers: int) -> Topology:
    """Assign port indices per router in edge-insertion order."""
    port_map: dict[tuple[int, int], int] = {}
    next_port = [0] * num_routers
    edges: list[tuple[int, int]] = []
    for u, v in pairs:
        for a, b in ((u, v), (v, u)):
            edges.append((a, b))
            port_map[(a, b)] = next_port[a]
            next_port[a] += 1
    return Topology(num_routers, tuple(edges), port_map)


def mesh(rows: int, cols: int) -> Topology:
    """2-D mesh with bidirectional links."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    pairs = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                pairs.append((node, node + 1))
            if r + 1 < rows:
                pairs.append((node, node + cols))
    return _bidirectional(pairs, rows * cols)


def ring(n: int) -> Topology:
    """Bidirectional ring of n routers."""
    if n < 2:
        raise ValueError("a ring needs at least 2 routers")
    pairs = [(i, (i + 1) % n) for i in range(n)] if n > 2 else [(0, 1)]
    return _bidirectional(pairs, n)


def torus(rows: int, cols: int) -> Topology:
    """2-D torus: a mesh with wrap-around links on every row and column.

    Wrap links are only added along a dimension of size > 2 — with two
    routers per row (or column) the wrap edge would duplicate the mesh
    edge and corrupt the per-router port assignment.  ``torus(1, n)``
    therefore degenerates to ``ring(n)`` and ``torus(2, 2)`` to
    ``mesh(2, 2)``, matching the usual k-ary n-cube definition.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    pairs = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                pairs.append((node, node + 1))
            if r + 1 < rows:
                pairs.append((node, node + cols))
    if cols > 2:
        for r in range(rows):
            pairs.append((r * cols + cols - 1, r * cols))
    if rows > 2:
        for c in range(cols):
            pairs.append(((rows - 1) * cols + c, c))
    return _bidirectional(pairs, rows * cols)


def fat_tree(k: int) -> Topology:
    """Three-stage k-ary fat-tree (k even): (k/2)^2 cores, k pods.

    Router numbering is deterministic: cores first (``0 .. (k/2)^2-1``),
    then per pod ``p`` the ``k/2`` aggregation routers followed by the
    ``k/2`` edge routers.  Aggregation router ``i`` of every pod uplinks
    to core group ``i`` (cores ``i*k/2 .. i*k/2 + k/2 - 1``); every edge
    router connects to all aggregation routers of its pod.  Hosts attach
    to the edge routers (see :func:`fat_tree_edge_routers`).
    """
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity k must be an even integer >= 2")
    half = k // 2
    num_cores = half * half
    pairs = []
    for pod in range(k):
        base = num_cores + pod * k
        for agg in range(half):
            for core in range(half):
                pairs.append((agg * half + core, base + agg))
        for edge in range(half):
            for agg in range(half):
                pairs.append((base + agg, base + half + edge))
    return _bidirectional(pairs, num_cores + k * k)


def fat_tree_edge_routers(k: int) -> tuple[int, ...]:
    """Router ids of the edge (host-facing) stage of ``fat_tree(k)``."""
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity k must be an even integer >= 2")
    half = k // 2
    num_cores = half * half
    return tuple(
        num_cores + pod * k + half + edge
        for pod in range(k)
        for edge in range(half)
    )


def from_edges(num_routers: int, pairs: list[tuple[int, int]]) -> Topology:
    """Arbitrary topology from undirected router pairs."""
    return _bidirectional(pairs, num_routers)
