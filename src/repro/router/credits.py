"""Credit-based flow control between the NICs and the router.

The MMR avoids flit loss with per-connection credit flow control: the NIC
may only forward a flit to the router when the corresponding virtual
channel has free buffer space, which the NIC learns through credits
returned when flits leave the router through the crossbar.  Credits travel
in a single phit, so their return latency is a small constant number of
flit cycles (links are short in a cluster).

:class:`CreditState` tracks the NIC-side credit counters for every
(input port, VC) pair plus the in-flight credit returns.
"""

from __future__ import annotations

import numpy as np

from .config import RouterConfig

__all__ = ["CreditState"]


class CreditState:
    """NIC-side credit counters with delayed credit return.

    Invariant (checked by tests): for every (port, vc),
    ``credits + in_flight_returns + router_occupancy == vc_buffer_depth``.
    """

    def __init__(self, config: RouterConfig) -> None:
        n, v = config.num_ports, config.vcs_per_link
        self._credits = np.full((n, v), config.vc_buffer_depth, dtype=np.int64)
        self._delay = config.credit_return_delay
        self._depth = config.vc_buffer_depth
        # cycle -> list of (port, vc) credits that land on that cycle
        self._pending: dict[int, list[tuple[int, int]]] = {}
        self._in_flight = 0
        # Per-port bitmask of VCs with credits > 0 (hot-path view: lets
        # the NIC link controller test eligibility without numpy calls).
        self._mask = [(1 << v) - 1 for _ in range(n)]

    @property
    def counters(self) -> np.ndarray:
        """(ports, vcs) credit counters (read-only view)."""
        view = self._credits.view()
        view.flags.writeable = False
        return view

    def counters_for(self, port: int) -> np.ndarray:
        """Writable-free view of one port's credit row (hot path)."""
        return self._credits[port]

    def available(self, port: int, vc: int) -> int:
        return int(self._credits[port, vc])

    @property
    def in_flight(self) -> int:
        """Credits currently travelling back to the NICs."""
        return self._in_flight

    def mask_for(self, port: int) -> int:
        """Bitmask of this port's VCs holding at least one credit."""
        return self._mask[port]

    def consume(self, port: int, vc: int) -> None:
        """NIC forwards a flit: spend one credit."""
        remaining = self._credits[port, vc] - 1
        if remaining < 0:
            raise RuntimeError(
                f"credit underflow at port {port} vc {vc}: the NIC link "
                "controller must not forward without a credit"
            )
        self._credits[port, vc] = remaining
        if remaining == 0:
            self._mask[port] &= ~(1 << vc)

    def schedule_return(self, port: int, vc: int, now: int) -> None:
        """A flit left the router: send a credit back to the NIC."""
        land = now + self._delay
        self._pending.setdefault(land, []).append((port, vc))
        self._in_flight += 1

    def deliver(self, now: int) -> None:
        """Land all credits whose return delay has elapsed.

        Call once per cycle *before* the NIC link controllers run, so a
        credit sent ``credit_return_delay`` cycles ago is usable this
        cycle.
        """
        landed = self._pending.pop(now, None)
        if not landed:
            return
        for port, vc in landed:
            new = self._credits[port, vc] + 1
            if new > self._depth:
                raise RuntimeError(
                    f"credit overflow at port {port} vc {vc}: more credits "
                    "returned than buffer slots exist"
                )
            self._credits[port, vc] = new
            if new == 1:
                self._mask[port] |= 1 << vc
        self._in_flight -= len(landed)
