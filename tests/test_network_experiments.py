"""Tests for repro.network.experiments (N1 harness)."""

import pytest

from repro.network.experiments import network_load_experiment, run_network_load
from repro.network.topology import ring
from repro.router import RouterConfig


def tiny_config():
    return RouterConfig(num_ports=4, vcs_per_link=16, candidate_levels=4,
                        vc_buffer_depth=4)


class TestRunNetworkLoad:
    def test_loss_free_below_saturation(self):
        result = run_network_load(ring(4), tiny_config(), "coa",
                                  target_load=0.4, cycles=1_500, seed=3)
        assert result.delivered == result.injected
        assert result.residue == 0
        assert result.delivered_fraction == 1.0
        assert result.mean_delay_cycles >= 2  # at least two routers deep

    def test_load_validation(self):
        with pytest.raises(ValueError):
            run_network_load(ring(4), tiny_config(), "coa", 0.0, 100)
        with pytest.raises(ValueError):
            run_network_load(ring(4), tiny_config(), "coa", 1.0, 100)

    def test_same_seed_same_injections(self):
        a = run_network_load(ring(4), tiny_config(), "coa", 0.5, 1_000, seed=9)
        b = run_network_load(ring(4), tiny_config(), "wfa", 0.5, 1_000, seed=9)
        assert a.injected == b.injected
        assert a.connections == b.connections

    def test_injected_tracks_target(self):
        result = run_network_load(ring(4), tiny_config(), "coa",
                                  target_load=0.5, cycles=2_000, seed=1)
        # 4 source routers at 0.5 flits/cycle each over 2000 cycles.
        assert result.injected == pytest.approx(4 * 0.5 * 2_000, rel=0.05)


class TestExperiment:
    def test_experiment_structure(self):
        results = network_load_experiment(
            arbiters=("coa",), loads=(0.3, 0.5), num_routers=3,
            config=tiny_config(), cycles=800, seed=2,
        )
        assert set(results) == {"coa"}
        runs = results["coa"]
        assert [r.target_load for r in runs] == [0.3, 0.5]
        assert all(r.arbiter == "coa" for r in runs)
        # Delay grows (weakly) with load.
        assert runs[1].mean_delay_cycles >= runs[0].mean_delay_cycles * 0.8


class TestNamedTopologyExperiment:
    """The campaign-executed, any-topology rework of the N1 harness."""

    def config6(self):
        return RouterConfig(num_ports=6, vcs_per_link=16,
                            candidate_levels=4, vc_buffer_depth=4)

    def test_named_topologies_run(self):
        for name in ("torus:2x3", "mesh:2x2", "fat-tree:4"):
            results = network_load_experiment(
                arbiters=("coa",), loads=(0.3,), config=self.config6(),
                cycles=600, seed=1, topology=name,
            )
            run = results["coa"][0]
            assert run.injected > 0
            assert run.delivered == run.injected
            assert run.residue == 0

    def test_unknown_topology_is_loud(self):
        with pytest.raises(ValueError, match="known:"):
            network_load_experiment(arbiters=("coa",), loads=(0.3,),
                                    config=self.config6(), cycles=400,
                                    topology="hypercube:3")

    def test_store_serves_repeat_sweeps(self, tmp_path):
        from repro.campaign import ResultStore

        store = ResultStore(tmp_path / "store")
        kwargs = dict(arbiters=("coa",), loads=(0.3, 0.5), num_routers=3,
                      config=tiny_config(), cycles=600, seed=4,
                      store=store)
        first = network_load_experiment(**kwargs)
        second = network_load_experiment(**kwargs)
        assert first == second
