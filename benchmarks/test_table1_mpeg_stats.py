"""T1 — Table 1: MPEG-2 video sequence statistics.

The paper's Table 1 lists max / min / average image size (bits) for seven
MPEG-2 sequences.  The real traces are unavailable (and the OCR lost the
numerals), so DESIGN.md §2 substitutes a synthetic generator calibrated
to reconstructed per-sequence statistics.  This bench regenerates the
table from synthesized traces and asserts the calibration: measured
statistics must respect the recorded bounds and hit the recorded means.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.traffic.mpeg import SEQUENCE_STATS, generate_trace, trace_statistics

NUM_GOPS = 40  # enough frames for tight mean estimates


def _build_table(seed: int):
    rows = []
    measured = {}
    for name, stats in SEQUENCE_STATS.items():
        trace = generate_trace(stats, NUM_GOPS, np.random.default_rng(seed))
        got = trace_statistics(trace)
        measured[name] = got
        rows.append(
            [name, got.max_bits, got.min_bits, got.avg_bits,
             stats.max_bits, stats.min_bits, stats.avg_bits]
        )
    return rows, measured


@pytest.mark.benchmark(group="table1")
def test_table1_sequence_statistics(benchmark, bench_seed):
    rows, measured = benchmark.pedantic(
        lambda: _build_table(bench_seed), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["sequence", "max", "min", "avg",
             "target max", "target min", "target avg"],
            rows,
            title="Table 1 — MPEG-2 video sequence statistics "
                  "(bits per frame; measured over synthetic traces vs "
                  "calibration targets)",
        )
    )
    for name, got in measured.items():
        target = SEQUENCE_STATS[name]
        # Bounds are hard (the generator clips into them) ...
        assert target.min_bits <= got.min_bits
        assert got.max_bits <= target.max_bits
        # ... the mean is calibrated.
        assert got.avg_bits == pytest.approx(target.avg_bits, rel=0.03), name
    # Orderings the paper's table exhibits: high-motion sequences produce
    # the biggest frames.
    assert measured["mobile_calendar"].avg_bits > measured["hook"].avg_bits
    assert measured["flower_garden"].avg_bits > measured["martin"].avg_bits
