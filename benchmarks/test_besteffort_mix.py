"""B1 — extension: QoS protection under best-effort background traffic.

The paper's architecture statement (§1): the MMR "should satisfy the QoS
requirements of a large number of multimedia connections while allocating
the remaining bandwidth to best-effort traffic".  The MediaWorm study
(the paper's ref [18]) evaluates exactly such traffic mixes.  This bench
reproduces the claim on our router: a CBR workload at moderate load plus
aggressive best-effort background, across both arbiters.

Shape claims:
  * under COA, adding the background leaves reserved-class delays within
    a small factor of the clean run (reserved tier + priorities);
  * best-effort throughput fills a substantial part of the leftover
    bandwidth (work conservation);
  * the best-effort flits see (much) higher delay than the reserved
    classes — they are, by design, second-class.
"""

import pytest

from conftest import BENCH_SEED
from repro.analysis import render_table
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config, get_scale
from repro.sim.simulation import SingleRouterSim
from repro.traffic.mixes import build_besteffort_workload, build_cbr_workload

CBR_LOAD = 0.6
BE_LOAD = 0.35


def _run():
    scale = get_scale("ci")
    control = RunControl(scale.cbr_cycles, scale.cbr_warmup)
    out = {}
    for arbiter in ("coa", "wfa"):
        for background in (False, True):
            sim = SingleRouterSim(default_config(), arbiter=arbiter,
                                  seed=BENCH_SEED)
            workload = build_cbr_workload(sim.router, CBR_LOAD,
                                          sim.rng.workload)
            if background:
                extra = build_besteffort_workload(sim.router, BE_LOAD,
                                                  sim.rng.workload)
                for item in extra.loads:
                    workload.add(item)
            out[(arbiter, background)] = sim.run(workload, control)
    return out


@pytest.mark.benchmark(group="besteffort")
def test_besteffort_background_mix(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    rows = []
    for (arbiter, background), r in results.items():
        rows.append([
            arbiter,
            "CBR+BE" if background else "CBR",
            r.offered_load * 100,
            r.throughput * 100,
            r.flit_delay_us.get("medium", float("nan")),
            r.flit_delay_us.get("high", float("nan")),
            r.flit_delay_us.get("best-effort", float("nan")),
        ])
    print(render_table(
        ["arbiter", "mix", "offered %", "thr %", "medium us", "high us",
         "best-effort us"],
        rows,
        title=f"B1 — CBR at {CBR_LOAD:.0%} with {BE_LOAD:.0%} best-effort "
              "background",
    ))

    clean = results[("coa", False)]
    mixed = results[("coa", True)]
    # Reserved classes are protected under COA.
    for label in ("medium", "high"):
        assert mixed.flit_delay_us[label] <= \
            3.0 * clean.flit_delay_us[label] + 2.0, label
    # Best-effort fills leftover bandwidth: total throughput rises by at
    # least half the background load.
    assert mixed.throughput >= clean.throughput + BE_LOAD / 2
    # Best-effort is second-class: its delay exceeds the high class's.
    assert mixed.flit_delay_us["best-effort"] > \
        mixed.flit_delay_us["high"]
