"""Property test: per-VC credit conservation holds cycle by cycle.

The flow-control ledger invariant — for every (port, vc),

    credits + in_flight - extra_flight - extra_landed + occupancy + lost
        == vc_buffer_depth

— must hold after *every* cycle of any interleaving of NIC forwards,
crossbar departures, credit landings, and the fault paths (lost credits,
duplicated credits, watchdog resyncs).  The model here mirrors exactly
how the router uses :class:`~repro.router.credits.CreditState`: a flit
consumes a credit when forwarded (occupancy +1), departs later
(occupancy -1, credit return scheduled / lost / duplicated), and credits
land after the wire delay.  A full fault-injection simulation run is
also checked end to end.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.faults import FaultConfig, FaultySingleRouterSim
from repro.router.config import RouterConfig
from repro.router.credits import CreditState, CreditWatchdog
from repro.sim.engine import RunControl
from repro.sim.experiments import default_config
from repro.traffic.mixes import build_besteffort_workload, build_cbr_workload

PORTS, VCS, DEPTH, DELAY = 2, 4, 3, 2


def make_state() -> CreditState:
    cfg = RouterConfig(
        num_ports=PORTS,
        vcs_per_link=VCS,
        vc_buffer_depth=DEPTH,
        credit_return_delay=DELAY,
        candidate_levels=1,
    )
    return CreditState(cfg)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    cycles=st.integers(20, 200),
    loss_rate=st.floats(0.0, 0.3),
    dup_rate=st.floats(0.0, 0.3),
    resync_every=st.integers(5, 40),
)
def test_ledger_invariant_every_cycle(seed, cycles, loss_rate, dup_rate, resync_every):
    rng = np.random.default_rng(seed)
    state = make_state()
    watchdog = CreditWatchdog(state, timeout=4, max_retries=3)
    occupancy = np.zeros((PORTS, VCS), dtype=np.int64)

    for now in range(cycles):
        state.deliver(now)
        # The watchdog repairs drift exactly as the harness does: surplus
        # immediately, deficits after their timeout.
        watchdog.scan(now, occupancy)
        for port in range(PORTS):
            for vc in range(VCS):
                # Crossbar side: an occupied VC may send its head flit.
                if occupancy[port, vc] > 0 and rng.random() < 0.4:
                    occupancy[port, vc] -= 1
                    u = rng.random()
                    if u < loss_rate:
                        state.fault_lose(port, vc)
                    else:
                        state.schedule_return(port, vc, now)
                        if u < loss_rate + dup_rate:
                            state.fault_duplicate(port, vc, now)
                # NIC side: forward when a credit is available.
                if state.available(port, vc) > 0 and rng.random() < 0.5:
                    state.consume(port, vc)
                    occupancy[port, vc] += 1
        # Occasional explicit resync must never break the ledger either.
        if now % resync_every == resync_every - 1:
            port = int(rng.integers(PORTS))
            vc = int(rng.integers(VCS))
            state.resync(port, vc, int(occupancy[port, vc]))
        state.check_conservation(occupancy)
        assert 0 <= int(occupancy.max()) <= DEPTH


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_reset_vc_restores_pristine_ledger(seed):
    rng = np.random.default_rng(seed)
    state = make_state()
    occupancy = np.zeros((PORTS, VCS), dtype=np.int64)
    for now in range(30):
        state.deliver(now)
        for port in range(PORTS):
            for vc in range(VCS):
                if occupancy[port, vc] > 0 and rng.random() < 0.5:
                    occupancy[port, vc] -= 1
                    if rng.random() < 0.3:
                        state.fault_lose(port, vc)
                    else:
                        state.schedule_return(port, vc, now)
                if state.available(port, vc) > 0 and rng.random() < 0.5:
                    state.consume(port, vc)
                    occupancy[port, vc] += 1
    # Teardown path: buffers drain, then the VC resets to pristine.
    port, vc = 1, 2
    occupancy[port, vc] = 0
    state.reset_vc(port, vc)
    assert state.available(port, vc) == DEPTH
    assert state.in_flight_for(port, vc) == 0
    state.check_conservation(occupancy)


class CheckedFaultySim(FaultySingleRouterSim):
    """Harness subclass asserting the ledger before every NIC transfer."""

    checks = 0

    def _accept_with_faults(self, now, level):
        self.router.credits.check_conservation(self.router.vc_memory.occupancy)
        CheckedFaultySim.checks += 1
        super()._accept_with_faults(now, level)


def test_full_simulation_conserves_credits_under_faults():
    faults = FaultConfig(
        credit_loss_rate=0.01,
        credit_dup_rate=0.01,
        corruption_rate=0.005,
        dead_port=2,
        dead_port_cycle=500,
        resync_timeout=8,
    )
    config = default_config(num_ports=4, vcs_per_link=8)
    CheckedFaultySim.checks = 0
    sim = CheckedFaultySim(config, seed=13, faults=faults)
    workload = build_cbr_workload(sim.router, 0.5, sim.rng.workload)
    for item in build_besteffort_workload(
        sim.router, 0.15, sim.rng.workload
    ).loads:
        workload.add(item)
    result = sim.run(workload, RunControl(cycles=2000))
    assert CheckedFaultySim.checks == 2000  # the invariant ran every cycle
    assert result.fault["injected_credit_loss"] > 0
    assert result.fault["injected_credit_dup"] > 0
    sim.router.credits.check_conservation(sim.router.vc_memory.occupancy)
