"""Edge cases of :func:`readmit_elsewhere` and the teardown/readmit race.

Three families the fault-recovery and dead-port-retry paths depend on:

* every alternate output saturated — the probe sweep must reject without
  perturbing the reservation ledgers (``check`` is side-effect free);
* degenerate routers — a single-port router whose only output is the
  avoided (dead) one, and requests no port can ever fit;
* a re-admission racing an in-flight teardown — the stale ``_TEARDOWN``
  completion must not double-release a reservation or touch a connection
  the fault path already tore down.
"""

import numpy as np

from repro.router import MMRouter, RouterConfig
from repro.router.connection import Connection, TrafficClass
from repro.sessions import ChurnConfig, SessionSpec
from repro.sessions.signaling import (
    SessionEngine,
    SessionsSpec,
    readmit_elsewhere,
)
from repro.sim import RunControl

# Tiny admission arithmetic: 4 ports, 4 VCs per link, 8 avg slots per
# round on every link (flit_cycles_per_round must be a multiple of
# vcs_per_link).
CFG = RouterConfig(
    num_ports=4, vcs_per_link=4, candidate_levels=1, flit_cycles_per_round=8
)


def conn_request(in_port=0, out_port=0, avg=4):
    """A CBR connection shape for readmit_elsewhere (ledger-free probe)."""
    return Connection(
        conn_id=999,
        in_port=in_port,
        vc=0,
        out_port=out_port,
        traffic_class=TrafficClass.CBR,
        avg_slots=avg,
        peak_slots=avg,
    )


def establish_cbr(router, in_port, out_port, avg):
    result = router.establish(in_port, out_port, TrafficClass.CBR, avg, avg)
    assert result.accepted, result.reason
    return result.connection


class TestAllAlternatesSaturated:
    def saturated_router(self):
        """Every output port at 5/8 average slots; in-port 0 untouched."""
        router = MMRouter(CFG)
        establish_cbr(router, 1, 0, 5)
        establish_cbr(router, 1, 1, 3)
        establish_cbr(router, 2, 1, 2)
        establish_cbr(router, 2, 2, 5)
        establish_cbr(router, 2, 3, 1)
        establish_cbr(router, 3, 3, 4)
        assert list(router.admission.reservation_vectors()["avg_out"]) == [
            5, 5, 5, 5,
        ]
        return router

    def test_probe_sweep_rejects_everywhere(self):
        router = self.saturated_router()
        result = readmit_elsewhere(router, conn_request(in_port=0, avg=4))
        assert not result.accepted
        assert result.connection is None
        assert "output link" in result.reason

    def test_failed_probes_leave_ledgers_untouched(self):
        router = self.saturated_router()
        before = router.admission.reservation_vectors()
        readmit_elsewhere(router, conn_request(in_port=0, avg=4))
        assert router.admission.reservation_vectors() == before
        router.admission.audit(router.table)

    def test_single_free_port_found_after_wrapping(self):
        # Outputs 0..2 full, output 1 has room; original target is 2 so
        # the deterministic order probes 2, 3, 0, 1 and lands on 1.
        router = MMRouter(CFG)
        establish_cbr(router, 1, 0, 8)
        establish_cbr(router, 2, 2, 8)
        establish_cbr(router, 3, 3, 8)
        result = readmit_elsewhere(
            router, conn_request(in_port=0, out_port=2, avg=4)
        )
        assert result.accepted
        assert result.connection.out_port == 1
        router.admission.audit(router.table)

    def test_room_only_on_avoided_port_is_a_rejection(self):
        router = MMRouter(CFG)
        establish_cbr(router, 1, 0, 8)
        establish_cbr(router, 2, 2, 8)
        establish_cbr(router, 3, 3, 8)
        before = router.admission.reservation_vectors()
        result = readmit_elsewhere(
            router, conn_request(in_port=0, out_port=2, avg=4),
            avoid_out_port=1,
        )
        assert not result.accepted
        assert router.admission.reservation_vectors() == before

    def test_input_side_saturation_also_rejects(self):
        # The requester's own input link is the bottleneck: every output
        # has room, but in-port 0 is full, so all probes fail on input.
        router = MMRouter(CFG)
        establish_cbr(router, 0, 1, 8)
        before = router.admission.reservation_vectors()
        result = readmit_elsewhere(router, conn_request(in_port=0, avg=1))
        assert not result.accepted
        assert "input link 0" in result.reason
        assert router.admission.reservation_vectors() == before


class TestDegenerateRouters:
    def test_single_port_router_with_avoided_output(self):
        cfg = RouterConfig(
            num_ports=1, vcs_per_link=4, candidate_levels=1,
            flit_cycles_per_round=8,
        )
        router = MMRouter(cfg)
        result = readmit_elsewhere(
            router, conn_request(avg=1), avoid_out_port=0
        )
        assert result == type(result)(
            False, None, "no eligible output port", 0
        )
        assert not router.admission.reservation_vectors()["avg_out"][0]

    def test_single_port_router_without_avoidance_still_admits(self):
        cfg = RouterConfig(
            num_ports=1, vcs_per_link=4, candidate_levels=1,
            flit_cycles_per_round=8,
        )
        router = MMRouter(cfg)
        result = readmit_elsewhere(router, conn_request(avg=1))
        assert result.accepted and result.connection.out_port == 0

    def test_oversized_request_rejected_on_every_port(self):
        # avg_slots exceeds the round budget itself: no output can ever
        # fit it, empty router or not.
        router = MMRouter(CFG)
        before = router.admission.reservation_vectors()
        result = readmit_elsewhere(
            router, conn_request(avg=CFG.round_cycles + 1)
        )
        assert not result.accepted
        assert router.admission.reservation_vectors() == before
        router.admission.audit(router.table)


# ----------------------------------------------------------------------
# Re-admission racing an in-flight teardown
# ----------------------------------------------------------------------


class _NullWorkload:
    loads = ()


class _NullMetrics:
    def register_connection(self, *args):
        pass


def session_spec(sid=0, in_port=0, out_port=0, hold=50, arrival=0):
    """A CBR session with an empty injection schedule (pure signaling)."""
    empty = np.empty(0, dtype=np.int64)
    return SessionSpec(
        sid=sid,
        in_port=in_port,
        out_port=out_port,
        cls_name="cbr-low",
        traffic_class=TrafficClass.CBR,
        avg_slots=2,
        peak_slots=2,
        arrival_cycle=arrival,
        hold_cycles=hold,
        mean_load=0.25,
        cycles=empty,
        frame_ids=empty,
        frame_last=empty,
    )


def engine_with(router, timeline, cycles=200):
    engine = SessionEngine(
        config=router.config,
        spec=SessionsSpec(churn=ChurnConfig()),
        timeline=timeline,
    )
    engine.begin(
        router,
        _NullWorkload(),
        _NullMetrics(),
        RunControl(cycles=cycles, warmup_cycles=0),
    )
    return engine


def released(engine):
    return sum(c.released for c in engine.stats.by_class.values())


def drive_to_closing(router, engine, live):
    """Step cycles until the session's teardown completion is pending."""
    now = 0
    while live.state != "closing":
        engine.on_cycle(now)
        now += 1
        assert now < 200, f"never reached closing (state={live.state})"
    return now  # teardown is queued teardown_latency_cycles ahead


class TestTeardownReadmitRace:
    def test_fault_drop_during_closing_is_not_double_released(self):
        router = MMRouter(CFG)
        engine = engine_with(router, [session_spec()])
        live = engine._live[0]
        now = drive_to_closing(router, engine, live)
        conn = live.conn
        # The fault path wins the race: it force-tears the connection
        # down and reports no replacement before the engine's own
        # teardown completion fires.
        router.force_teardown(conn.conn_id)
        engine.on_conn_recovered(now, conn, None)
        assert live.state == "dropped"
        # The stale _TEARDOWN must now be a no-op — a second
        # router.teardown would raise, a second release would trip the
        # negative-accounting guard.
        for t in range(now, now + 10):
            engine.on_cycle(t)
        assert live.state == "dropped"
        assert engine.stats.dropped == 1
        assert released(engine) == 0
        router.admission.audit(router.table)
        vectors = router.admission.reservation_vectors()
        assert not any(vectors["avg_in"]) and not any(vectors["avg_out"])

    def test_migration_during_closing_releases_exactly_once(self):
        router = MMRouter(CFG)
        engine = engine_with(router, [session_spec(out_port=1)])
        live = engine._live[0]
        now = drive_to_closing(router, engine, live)
        old = live.conn
        # The fault path re-admits the drained connection on another
        # output while the teardown completion is still in flight.
        router.force_teardown(old.conn_id)
        result = readmit_elsewhere(router, old, avoid_out_port=1)
        assert result.accepted and result.connection.out_port != 1
        engine.on_conn_recovered(now, old, result.connection)
        assert live.state == "closing"
        assert live.conn is result.connection
        assert engine.owns(result.connection.conn_id)
        assert not engine.owns(old.conn_id)
        # The pending teardown now lands on the *migrated* connection:
        # one release, ledgers back to zero, table consistent.
        for t in range(now, now + 10):
            engine.on_cycle(t)
        assert live.state == "closed"
        assert released(engine) == 1
        assert engine.stats.dropped == 0
        assert not engine.owns(result.connection.conn_id)
        router.admission.audit(router.table)
        vectors = router.admission.reservation_vectors()
        assert not any(vectors["avg_in"]) and not any(vectors["avg_out"])

    def test_fault_drop_while_draining_cancels_teardown_path(self):
        # Same race one state earlier: the session is draining (teardown
        # not yet queued) when the fault kills its connection.
        router = MMRouter(CFG)
        engine = engine_with(router, [session_spec(hold=60)])
        live = engine._live[0]
        now = 0
        while live.state != "active":
            engine.on_cycle(now)
            now += 1
            assert now < 100
        conn = live.conn
        # Park one flit in the NIC queue so the drain cannot complete
        # (nothing services the queue in this manually-driven test) and
        # the session is observable in the "draining" state.
        router.nics[conn.in_port].inject(conn.vc, now, 0, True)
        while live.state != "draining":
            engine.on_cycle(now)
            now += 1
            assert now < 100
        router.force_teardown(conn.conn_id)
        engine.on_conn_recovered(now, conn, None)
        assert live.state == "dropped"
        assert live not in engine._draining
        for t in range(now, now + 10):
            engine.on_cycle(t)
        assert released(engine) == 0 and engine.stats.dropped == 1
        router.admission.audit(router.table)

    def test_finish_audits_after_race(self):
        router = MMRouter(CFG)
        engine = engine_with(router, [session_spec(), session_spec(sid=1,
                                      in_port=1, out_port=2, hold=80)])
        live = engine._live[0]
        now = drive_to_closing(router, engine, live)
        conn = live.conn
        router.force_teardown(conn.conn_id)
        engine.on_conn_recovered(now, conn, None)
        for t in range(now, 150):
            engine.on_cycle(t)
        engine.stats.cycles = 150
        engine.finish()  # audits the ledgers; raises on any drift
        assert engine.stats.admitted == 2
        assert engine.stats.dropped == 1
        assert released(engine) == 1
